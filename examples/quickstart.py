#!/usr/bin/env python3
"""Quickstart: model, solve, simulate.

Walks through the library's core loop on the paper's own motivating
example (Section 2, Figure 1):

1. build two pipelined applications and a platform of multi-modal
   processors;
2. evaluate hand-written mappings (period / latency / energy);
3. let the solvers find optimal mappings, including an energy-aware
   trade-off;
4. validate the analytic numbers with the discrete-event simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    Application,
    CommunicationModel,
    Criterion,
    Platform,
    ProblemInstance,
    Processor,
    Thresholds,
    evaluate,
)
from repro.algorithms.exact import exact_minimize
from repro.analysis import render_table
from repro.simulation import simulate


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The applicative framework: linear pipelines.
    #    App1 reads a size-1 input, runs stages of 3/2/1 operations.
    # ------------------------------------------------------------------
    app1 = Application.from_lists(
        works=[3, 2, 1],
        output_sizes=[3, 2, 0],
        input_data_size=1,
        name="App1",
    )
    app2 = Application.from_lists(
        works=[2, 6, 4, 2],
        output_sizes=[3, 1, 1, 1],
        input_data_size=0,
        name="App2",
    )

    # ------------------------------------------------------------------
    # 2. The platform: three bi-modal (DVFS) processors, links of
    #    bandwidth 1, energy = E_stat + speed^2 per enrolled processor.
    # ------------------------------------------------------------------
    platform = Platform(
        processors=(
            Processor(speeds=(3.0, 6.0), name="P1"),
            Processor(speeds=(6.0, 8.0), name="P2"),
            Processor(speeds=(1.0, 6.0), name="P3"),
        ),
        default_bandwidth=1.0,
    )
    problem = ProblemInstance(
        apps=(app1, app2),
        platform=platform,
        model=CommunicationModel.OVERLAP,
    )

    # ------------------------------------------------------------------
    # 3. Solve: each criterion alone, then the energy/period trade-off.
    # ------------------------------------------------------------------
    best_period = exact_minimize(problem, Criterion.PERIOD)
    best_latency = exact_minimize(problem, Criterion.LATENCY)
    best_energy = exact_minimize(problem, Criterion.ENERGY)
    compromise = exact_minimize(
        problem, Criterion.ENERGY, Thresholds(period=2.0)
    )

    rows = []
    for name, s in (
        ("min period", best_period),
        ("min latency", best_latency),
        ("min energy", best_energy),
        ("min energy s.t. period <= 2", compromise),
    ):
        rows.append(
            (name, s.values.period, s.values.latency, s.values.energy)
        )
    print("Optimal mappings found by the solvers:")
    print(render_table(["problem", "period", "latency", "energy"], rows))
    print()
    print("The period-optimal mapping:")
    mapping_rows = [
        (
            problem.apps[x.app].name,
            f"stages {x.interval[0] + 1}..{x.interval[1] + 1}",
            platform.processor(x.proc).name,
            x.speed,
        )
        for x in best_period.mapping.assignments
    ]
    print(render_table(["application", "stages", "processor", "speed"], mapping_rows))

    # ------------------------------------------------------------------
    # 4. Simulate: stream 1000 data sets through the period-optimal
    #    mapping and compare with the analytic model.
    # ------------------------------------------------------------------
    result = simulate(
        problem.apps, platform, best_period.mapping, n_datasets=1000
    )
    print()
    print("Simulation of the period-optimal mapping (1000 data sets):")
    sim_rows = []
    for a in sorted(result.completions):
        sim_rows.append(
            (
                problem.apps[a].name,
                best_period.values.periods[a],
                result.measured_period(a),
                best_period.values.latencies[a],
                result.measured_latency(a),
            )
        )
    print(
        render_table(
            [
                "application",
                "analytic period",
                "measured period",
                "analytic latency",
                "measured latency",
            ],
            sim_rows,
        )
    )


if __name__ == "__main__":
    main()
