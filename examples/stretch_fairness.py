#!/usr/bin/env python3
"""Fair scheduling with the max-stretch objective (Section 3.4).

When concurrent applications are "of completely different nature and/or
economic value", the paper proposes weighting each application's criterion
by ``1/X*_a`` -- its solo optimum -- so the objective becomes the *maximum
stretch*: the worst slowdown any user suffers relative to having the
platform alone.

This example contrasts three schedulers on an asymmetric workload (one
heavy batch pipeline, two light interactive ones):

* plain max (W = 1): the heavy application monopolizes processors;
* manual priorities: better, but requires hand-tuning;
* max-stretch: fairness by construction, no tuning knobs.

Run:  python examples/stretch_fairness.py
"""

import numpy as np

from repro import Criterion, Platform, ProblemInstance
from repro.algorithms import minimize_period_interval
from repro.analysis import render_table, stretch_problem
from repro.core.objectives import with_weights
from repro.generators import streaming_application


def allocation_row(problem, solution, optima, label):
    """One scheduler's outcome: per-app processors, periods, stretches."""
    cells = [label]
    worst = 0.0
    for a in range(problem.n_apps):
        procs = len(solution.mapping.for_app(a))
        period = solution.values.periods[a]
        stretch = period / optima[a]
        worst = max(worst, stretch)
        cells.append(f"{procs}p T={period:.3g} s={stretch:.2f}")
    cells.append(worst)
    return cells


def main() -> None:
    rng = np.random.default_rng(42)
    heavy = streaming_application(rng, 10, profile="encode", name="batch")
    light1 = streaming_application(rng, 3, profile="filter", name="chat-asr")
    light2 = streaming_application(rng, 3, profile="analytics", name="alerts")
    apps = (heavy, light1, light2)
    platform = Platform.fully_homogeneous(9, speeds=[2.0], bandwidth=4.0)
    base = ProblemInstance(apps=apps, platform=platform)

    # Solo optima: what each user would get alone (the stretch reference).
    _, optima = stretch_problem(base, Criterion.PERIOD)
    print("Solo optimal periods (each application alone on the platform):")
    print(
        render_table(
            ["application", "T*"],
            [(app.name, opt) for app, opt in zip(apps, optima)],
        )
    )
    print()

    rows = []

    # Scheduler 1: plain max.
    s_plain = minimize_period_interval(base)
    rows.append(allocation_row(base, s_plain, optima, "plain max (W=1)"))

    # Scheduler 2: hand-tuned priorities favouring the light apps.
    manual = ProblemInstance(
        apps=with_weights(apps, [1.0, 6.0, 6.0]), platform=platform
    )
    s_manual = minimize_period_interval(manual)
    rows.append(allocation_row(manual, s_manual, optima, "manual priorities"))

    # Scheduler 3: max-stretch (W_a = 1 / T*_a).
    stretched, _ = stretch_problem(base, Criterion.PERIOD)
    s_stretch = minimize_period_interval(stretched)
    rows.append(allocation_row(stretched, s_stretch, optima, "max-stretch"))

    print("Scheduler comparison (per app: processors, period, stretch):")
    print(
        render_table(
            ["scheduler", heavy.name, light1.name, light2.name,
             "worst stretch"],
            rows,
        )
    )
    print()
    worst_plain = rows[0][-1]
    worst_stretch = rows[2][-1]
    print(
        f"max-stretch reduces the worst user slowdown from "
        f"{worst_plain:.2f}x (plain max) to {worst_stretch:.2f}x, "
        "with no hand-tuned weights."
    )


if __name__ == "__main__":
    main()
