#!/usr/bin/env python3
"""Exploring the period/energy trade-off space of the paper's example.

Section 2 closes on the observation that "trade-offs must be found when
considering several antagonistic optimization criteria" and exhibits one
compromise point (period 2, energy 46).  This example computes the *whole*
exact Pareto front of the Figure 1 instance, locates the paper's worked
points on it, renders the front as ASCII art, and contrasts the overlap
and no-overlap communication models.

Run:  python examples/pareto_explorer.py
"""

from repro import CommunicationModel
from repro.analysis import period_energy_front_exact, render_table
from repro.paper import FIGURE1_EXPECTED, figure1_problem


def ascii_front(front, width: int = 56, height: int = 14) -> str:
    """A tiny scatter plot of (period, energy) points."""
    ts = [t for t, _ in front]
    es = [e for _, e in front]
    t_lo, t_hi = min(ts), max(ts)
    e_lo, e_hi = min(es), max(es)
    grid = [[" "] * width for _ in range(height)]
    for t, e in front:
        x = int((t - t_lo) / (t_hi - t_lo or 1) * (width - 1))
        y = int((e - e_lo) / (e_hi - e_lo or 1) * (height - 1))
        grid[height - 1 - y][x] = "*"
    lines = [f"energy {e_hi:>8.4g} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 15 + "|" + "".join(row))
    lines.append(f"energy {e_lo:>8.4g} +" + "".join(grid[-1]))
    lines.append(
        " " * 16 + f"period {t_lo:.4g}" + " " * (width - 20) + f"{t_hi:.4g}"
    )
    return "\n".join(lines)


def main() -> None:
    for model in (CommunicationModel.OVERLAP, CommunicationModel.NO_OVERLAP):
        problem = figure1_problem(model)
        front = period_energy_front_exact(problem)
        print(f"Exact period/energy Pareto front ({model.value} model), "
              f"{len(front)} points:")
        print(render_table(["period", "energy"], front))
        print()
        print(ascii_front(front))
        print()
        if model is CommunicationModel.OVERLAP:
            as_dict = dict(front)
            checks = [
                ("optimal period 1 at energy 136", as_dict.get(1.0) == 136.0),
                ("paper compromise: period 2 at energy 46",
                 as_dict.get(2.0) == 46.0),
                ("energy floor 10",
                 min(e for _, e in front) == FIGURE1_EXPECTED["min_energy"]),
            ]
            print("Paper worked points on the front:")
            for label, ok in checks:
                print(f"  [{'x' if ok else ' '}] {label}")
            print()


if __name__ == "__main__":
    main()
