#!/usr/bin/env python3
"""Concurrent video transcoding on a homogeneous farm.

The paper's introduction motivates the model with streaming applications
(video/audio encoding, DSP, image processing).  This example maps three
concurrent transcoding pipelines -- a high-priority live stream, a batch
re-encode and a thumbnail extractor -- onto a fully homogeneous cluster,
exercising the polynomial machinery end to end:

* Theorem 3 (Algorithm 2 + DP): throughput-optimal interval mapping with
  priority weights;
* Theorem 16: latency optimization under per-stream period guarantees;
* Theorems 18/21: cheapest DVFS configuration meeting the guarantees
  ("the server problem");
* the discrete-event simulator confirms the deployed configuration.

Run:  python examples/video_transcoding_farm.py
"""

import numpy as np

from repro import (
    CommunicationModel,
    Platform,
    ProblemInstance,
    Thresholds,
)
from repro.algorithms import (
    minimize_energy_given_period_interval,
    minimize_latency_given_period,
    minimize_period_interval,
)
from repro.analysis import render_table
from repro.generators import dvfs_speed_ladder, streaming_application
from repro.simulation import simulate


def main() -> None:
    rng = np.random.default_rng(7)

    # Three pipelines; the live stream carries a 4x priority weight
    # (Equation (6): the scheduler minimizes max_a W_a * T_a).
    live = streaming_application(
        rng, 6, profile="encode", weight=4.0, name="live-stream"
    )
    batch = streaming_application(
        rng, 8, profile="encode", weight=1.0, name="batch-reencode"
    )
    thumbs = streaming_application(
        rng, 4, profile="filter", weight=1.0, name="thumbnails"
    )
    apps = (live, batch, thumbs)

    # A 10-node homogeneous cluster; each node has a 4-step DVFS ladder
    # from 2.0 to 5.0 operations per time unit.
    platform = Platform.fully_homogeneous(
        10,
        speeds=dvfs_speed_ladder(2.0, 4, top_ratio=2.5),
        bandwidth=6.0,
        static_energy=1.0,
    )
    problem = ProblemInstance(
        apps=apps, platform=platform, model=CommunicationModel.OVERLAP
    )

    # ------------------------------------------------------------------
    # Step 1 -- throughput: the best achievable weighted period.
    # ------------------------------------------------------------------
    best = minimize_period_interval(problem)
    print("Step 1: throughput-optimal mapping (Theorem 3)")
    rows = [
        (
            apps[a].name,
            len(best.mapping.for_app(a)),
            best.values.periods[a],
            apps[a].weight * best.values.periods[a],
        )
        for a in range(len(apps))
    ]
    print(
        render_table(
            ["pipeline", "processors", "period", "weighted period"], rows
        )
    )
    print(f"global weighted period: {best.objective:.4g}\n")

    # ------------------------------------------------------------------
    # Step 2 -- response time: tighten latency while honouring a 25%
    # relaxed period guarantee per pipeline.
    # ------------------------------------------------------------------
    guarantees = tuple(best.values.periods[a] * 1.25 for a in range(len(apps)))
    low_latency = minimize_latency_given_period(
        problem, Thresholds(per_app_period=guarantees)
    )
    print("Step 2: min latency under per-pipeline period guarantees "
          "(Theorem 16)")
    rows = [
        (
            apps[a].name,
            guarantees[a],
            low_latency.values.periods[a],
            low_latency.values.latencies[a],
        )
        for a in range(len(apps))
    ]
    print(
        render_table(
            ["pipeline", "period guarantee", "achieved period", "latency"],
            rows,
        )
    )
    print()

    # ------------------------------------------------------------------
    # Step 3 -- energy: cheapest DVFS configuration meeting the same
    # guarantees (the paper's "server problem").
    # ------------------------------------------------------------------
    frugal = minimize_energy_given_period_interval(
        problem, Thresholds(per_app_period=guarantees)
    )
    peak_energy = best.values.energy
    print("Step 3: cheapest configuration meeting the guarantees "
          "(Theorems 18/21)")
    rows = [
        ("all processors flat out", peak_energy),
        ("energy-optimal DVFS configuration", frugal.values.energy),
        ("saving", f"{(1 - frugal.values.energy / peak_energy) * 100:.1f} %"),
    ]
    print(render_table(["configuration", "energy (per time unit)"], rows))
    speeds = sorted(x.speed for x in frugal.mapping.assignments)
    print(f"chosen mode speeds: {['%.3g' % s for s in speeds]}\n")

    # ------------------------------------------------------------------
    # Step 4 -- deploy: simulate 2000 frames through the frugal mapping.
    # ------------------------------------------------------------------
    sim = simulate(apps, platform, frugal.mapping, n_datasets=2000)
    print("Step 4: simulated steady state of the deployed configuration")
    rows = [
        (
            apps[a].name,
            frugal.values.periods[a],
            sim.measured_period(a),
            guarantees[a],
            "yes" if sim.measured_period(a) <= guarantees[a] * (1 + 1e-9)
            else "NO",
        )
        for a in sorted(sim.completions)
    ]
    print(
        render_table(
            [
                "pipeline",
                "analytic period",
                "measured period",
                "guarantee",
                "met",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
