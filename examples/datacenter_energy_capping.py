#!/usr/bin/env python3
"""Energy capping in a heterogeneous computing centre.

The paper frames energy-aware scheduling through two dual questions: the
"laptop problem" (best schedule within an energy budget) and the "server
problem" (least energy at a required service level).  This example plays
both on a *communication-homogeneous* centre -- heterogeneous DVFS nodes
behind a uniform interconnect -- hosting two concurrent analytics
pipelines under the one-to-one rule:

* Theorem 1 finds the throughput-optimal one-to-one mapping;
* Theorem 19 (Hungarian matching) answers the server problem exactly;
* a sweep over energy caps answers the laptop problem, exposing the
  period/energy trade-off curve;
* the NP-hard tri-criteria side is handled by the future-work heuristic
  (greedy mode downgrade) under an additional latency bound.

Run:  python examples/datacenter_energy_capping.py
"""

import math

import numpy as np

from repro import (
    Criterion,
    EnergyModel,
    MappingRule,
    Platform,
    ProblemInstance,
    Thresholds,
)
from repro.algorithms import (
    minimize_energy_given_period_one_to_one,
    minimize_period_one_to_one,
)
from repro.algorithms.heuristics import greedy_mode_downgrade
from repro.analysis import pareto_filter, render_table
from repro.generators import dvfs_speed_ladder, streaming_application


def main() -> None:
    rng = np.random.default_rng(11)

    fraud = streaming_application(
        rng, 5, profile="analytics", weight=1.0, name="fraud-detection"
    )
    metrics = streaming_application(
        rng, 4, profile="filter", weight=1.0, name="metrics-rollup"
    )
    apps = (fraud, metrics)

    # Twelve heterogeneous nodes: three hardware generations with
    # different base speeds and DVFS ladders, uniform interconnect.
    speed_sets = (
        [dvfs_speed_ladder(1.5, 3, top_ratio=2.0)] * 4
        + [dvfs_speed_ladder(2.5, 4, top_ratio=2.0)] * 4
        + [dvfs_speed_ladder(4.0, 2, top_ratio=1.5)] * 4
    )
    platform = Platform.comm_homogeneous(
        speed_sets, bandwidth=8.0, static_energies=[2.0] * 12
    )
    problem = ProblemInstance(
        apps=apps,
        platform=platform,
        rule=MappingRule.ONE_TO_ONE,
        energy_model=EnergyModel(alpha=2.0),
    )

    # ------------------------------------------------------------------
    # Peak performance: Theorem 1.
    # ------------------------------------------------------------------
    peak = minimize_period_one_to_one(problem)
    print("Peak throughput (Theorem 1, all nodes flat out):")
    print(
        render_table(
            ["global period", "energy"],
            [(peak.objective, peak.values.energy)],
        )
    )
    print()

    # ------------------------------------------------------------------
    # The server problem: least energy at a relaxed service level.
    # ------------------------------------------------------------------
    service_level = peak.objective * 1.4
    frugal = minimize_energy_given_period_one_to_one(
        problem, Thresholds(period=service_level)
    )
    print(
        f"Server problem (Theorem 19): least energy with period <= "
        f"{service_level:.4g}"
    )
    print(
        render_table(
            ["achieved period", "energy", "saving vs peak"],
            [
                (
                    frugal.values.period,
                    frugal.values.energy,
                    f"{(1 - frugal.values.energy / peak.values.energy) * 100:.1f} %",
                )
            ],
        )
    )
    print()

    # ------------------------------------------------------------------
    # The laptop problem: best period within each energy cap.
    # ------------------------------------------------------------------
    floor = frugal.values.energy
    caps = [floor * f for f in (1.0, 1.2, 1.5, 2.0, 3.0)]
    points = []
    for cap in caps:
        # Sweep candidate periods; keep the best whose matching fits the cap.
        lo, hi = peak.objective, service_level * 3
        best_period = None
        for _ in range(24):  # bisection on the period
            mid = 0.5 * (lo + hi)
            try:
                s = minimize_energy_given_period_one_to_one(
                    problem, Thresholds(period=mid)
                )
                if s.values.energy <= cap:
                    best_period, hi = s.values.period, mid
                else:
                    lo = mid
            except Exception:
                lo = mid
        if best_period is not None:
            points.append((cap, best_period))
    print("Laptop problem: best period under each energy cap")
    print(render_table(["energy cap", "best period"], points))
    front = pareto_filter([(t, c) for c, t in points])
    print(f"({len(front)} non-dominated operating points)\n")

    # ------------------------------------------------------------------
    # Tri-criteria (NP-hard with multi-modal nodes, Theorem 26):
    # the future-work heuristic under period AND latency bounds.
    # ------------------------------------------------------------------
    thresholds = Thresholds(
        period=service_level, latency=peak.values.latency * 1.5
    )
    heur = greedy_mode_downgrade(problem, peak.mapping, thresholds)
    print("Tri-criteria heuristic (greedy mode downgrade; the problem is "
          "NP-hard, Theorem 26):")
    print(
        render_table(
            ["period", "latency", "energy", "modes downgraded"],
            [
                (
                    heur.values.period,
                    heur.values.latency,
                    heur.values.energy,
                    int(heur.stats["n_moves"]),
                )
            ],
        )
    )


if __name__ == "__main__":
    main()
