"""Compatibility shim: lets ``pip install -e .`` use the legacy editable
path on environments whose setuptools predates PEP 660 / lacks ``wheel``.
All metadata lives in ``pyproject.toml``."""

from setuptools import setup

setup()
