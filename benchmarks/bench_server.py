"""Solve-service daemon benchmark: jobs/sec and warm-cache hit latency.

Run as a script to (re)record the performance baseline::

    PYTHONPATH=src python benchmarks/bench_server.py [output.json] [--tiny]

It starts the daemon in-process (``ServerThread``), drives it over real
HTTP with :class:`repro.client.SolveClient` and writes
``BENCH_server.json`` next to this file with:

* ``cold_jobs_per_sec`` -- throughput of a fleet of *distinct*
  instances submitted at once and drained (submit + queue + solve +
  fetch, everything over HTTP);
* ``warm_jobs_per_sec`` -- throughput of resubmitting the *same* fleet:
  every job must be answered from the content-addressed cache with zero
  additional solver evaluations;
* ``warm_hit_latency_ms`` -- mean per-job latency of a sequential
  submit→result round trip on warm cache (the interactive case);
* ``warm_speedup`` -- warm vs cold throughput; the asserted bars are
  **zero** warm-pass solves and ``warm_speedup >= 2``;
* ``cache_lookup_disk_us`` / ``cache_lookup_memo_us`` -- mean
  :meth:`ResultsCache.get` latency with the in-process LRU memo
  disabled vs enabled, over the record files the daemon run just
  produced (the memo skips the JSON re-parse on every warm dedup hit).

``--tiny`` shrinks the fleet for CI smoke runs (same assertions).
"""

from __future__ import annotations

import json
import platform as _platform
import sys
import tempfile
import time
from pathlib import Path

from repro.client import SolveClient
from repro.experiments.cache import ResultsCache
from repro.generators import small_random_problem
from repro.server import ServerThread
from repro.strategies import SolveBudget


def _bench_cache_lookups(cache_dir: str, *, tiny: bool) -> dict:
    """Mean ``get`` latency over a populated cache dir, memo off vs on."""
    keys = list(ResultsCache(cache_dir).keys())
    assert keys, "daemon run left no cache entries to benchmark"
    n_lookups = 200 if tiny else 2000

    disk = ResultsCache(cache_dir, memo_entries=0)
    t0 = time.perf_counter()
    for i in range(n_lookups):
        disk.get(keys[i % len(keys)])
    disk_s = time.perf_counter() - t0

    memo = ResultsCache(cache_dir)
    for key in keys:  # prime the memo once (the daemon's steady state)
        memo.get(key)
    t0 = time.perf_counter()
    for i in range(n_lookups):
        memo.get(keys[i % len(keys)])
    memo_s = time.perf_counter() - t0

    assert memo.memo_hits >= n_lookups, "primed lookups must hit the memo"
    return {
        "cache_entries": len(keys),
        "cache_lookups": n_lookups,
        "cache_lookup_disk_us": round(1e6 * disk_s / n_lookups, 2),
        "cache_lookup_memo_us": round(1e6 * memo_s / n_lookups, 2),
        "cache_memo_speedup": round(disk_s / memo_s, 2) if memo_s > 0 else None,
    }


def run(output: Path, *, tiny: bool = False) -> dict:
    n_jobs = 8 if tiny else 40
    concurrency = 2 if tiny else 4
    problems = [small_random_problem(7000 + i) for i in range(n_jobs)]
    solver_kwargs = dict(
        strategy="greedy",
        budget=SolveBudget(max_evaluations=500_000, seed=0),
    )

    with tempfile.TemporaryDirectory(prefix="bench-server-cache-") as tmp:
        with ServerThread(
            executor="thread", concurrency=concurrency, cache=tmp
        ) as server:
            client = SolveClient(server.url, timeout=60.0)

            t0 = time.perf_counter()
            ids = client.submit_many(problems, **solver_kwargs)
            cold_results = list(client.iter_results(ids, timeout=600))
            cold_s = time.perf_counter() - t0
            metrics_cold = client.metrics()

            t0 = time.perf_counter()
            ids = client.submit_many(problems, **solver_kwargs)
            warm_results = list(client.iter_results(ids, timeout=600))
            warm_s = time.perf_counter() - t0
            metrics_warm = client.metrics()

            # Interactive warm-hit latency: sequential submit→result loops.
            latencies = []
            for problem in problems[: min(10, n_jobs)]:
                t0 = time.perf_counter()
                result = client.solve(problem, timeout=60, **solver_kwargs)
                latencies.append(time.perf_counter() - t0)
                assert result.source == "cache"

        cache_stats = _bench_cache_lookups(tmp, tiny=tiny)

    n_ok_cold = sum(1 for r in cold_results if r.ok)
    n_ok_warm = sum(1 for r in warm_results if r.ok)
    warm_sources = {r.source for r in warm_results}
    payload = {
        "bench": "server",
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "tiny": tiny,
        "n_jobs": n_jobs,
        "concurrency": concurrency,
        "cold_run_s": round(cold_s, 4),
        "warm_run_s": round(warm_s, 4),
        "cold_jobs_per_sec": round(n_jobs / cold_s, 2),
        "warm_jobs_per_sec": round(n_jobs / warm_s, 2),
        "warm_speedup": round(cold_s / warm_s, 2) if warm_s > 0 else None,
        "warm_hit_latency_ms": round(
            1000 * sum(latencies) / len(latencies), 3
        ),
        "cold_ok": n_ok_cold,
        "warm_ok": n_ok_warm,
        "warm_sources": sorted(s for s in warm_sources if s),
        "solved_after_cold": metrics_cold["jobs"]["solved"],
        "solved_after_warm": metrics_warm["jobs"]["solved"],
        "evaluations_after_cold": metrics_cold["solver"]["evaluations"],
        "evaluations_after_warm": metrics_warm["solver"]["evaluations"],
        **cache_stats,
    }
    output.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))
    return payload


def main() -> int:
    argv = [a for a in sys.argv[1:]]
    tiny = "--tiny" in argv
    argv = [a for a in argv if a != "--tiny"]
    output = (
        Path(argv[0])
        if argv
        else Path(__file__).parent / "BENCH_server.json"
    )
    payload = run(output, tiny=tiny)
    assert payload["cold_ok"] == payload["n_jobs"], "cold pass must solve all"
    assert payload["warm_ok"] == payload["n_jobs"], "warm pass must serve all"
    assert payload["solved_after_warm"] == payload["solved_after_cold"], (
        "warm pass must not re-solve anything"
    )
    assert (
        payload["evaluations_after_warm"] == payload["evaluations_after_cold"]
    ), "warm pass must add zero solver evaluations"
    assert payload["warm_sources"] == ["cache"], (
        f"warm jobs must come from the cache, got {payload['warm_sources']}"
    )
    assert payload["warm_speedup"] and payload["warm_speedup"] >= 2, (
        f"warm speedup {payload['warm_speedup']} below 2x"
    )
    assert (
        payload["cache_lookup_memo_us"] <= payload["cache_lookup_disk_us"]
    ), "memoized cache lookups must not be slower than disk lookups"
    print(
        f"ok: {payload['cold_jobs_per_sec']} cold jobs/s, "
        f"{payload['warm_jobs_per_sec']} warm jobs/s "
        f"({payload['warm_speedup']}x), "
        f"warm hit latency {payload['warm_hit_latency_ms']} ms, "
        f"cache get {payload['cache_lookup_disk_us']} us disk / "
        f"{payload['cache_lookup_memo_us']} us memo"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
