"""Parallel solve-path benchmark: jobs/s-vs-workers scaling for both
instance transports.

Run as a script to (re)record the baseline::

    PYTHONPATH=src python benchmarks/bench_parallel.py [output.json] [--tiny]

It drives :func:`repro.service.solve_batch` over a mixed fleet of random
instances — sequentially, then across a sweep of worker counts under
both the shared-memory and the pickle transports — and writes
``BENCH_parallel.json`` next to this file with:

* ``curve`` -- one point per (workers, transport): jobs/s, speedup over
  sequential, bytes pickled per job, parallel efficiency;
* ``bytes_per_job`` -- per-transport job-payload sizes and their ratio
  (the shm transport ships bare indices; the acceptance bar is shm
  <= 10% of pickle);
* ``identical_solutions`` -- byte-identity verdict: every (mapping,
  objective, criteria) triple must match exactly across sequential,
  shm and pickle runs;
* ``speedup_assertion`` -- the >= 1.5x-at->=4-workers acceptance check,
  or a recorded skip with reason on machines without enough cores
  (``cpu_count`` is always included so a 1-CPU runner's flat curve is
  not misread as a regression).

``--tiny`` shrinks the fleet and the sweep for CI smoke runs; the
correctness assertions (byte identity, bytes ratio, no failures) are
identical, only the speedup bar degrades to the skip path on small
machines.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import sys
import time
from pathlib import Path
from typing import Dict, List

from repro.core.types import MappingRule, PlatformClass
from repro.generators import small_random_problem
from repro.service import solve_batch, shm_available

#: The acceptance bar: pooled speedup over sequential at >= 4 workers.
MIN_POOL_SPEEDUP = 1.5
#: Acceptance bar on shm job-payload bytes relative to pickle.
MAX_SHM_BYTES_RATIO = 0.10


def _fleet(count: int) -> list:
    """A mixed fleet across platform classes (NP-hard cells included),
    sized so one solve costs tens of milliseconds."""
    classes = list(PlatformClass)
    return [
        small_random_problem(
            1000 + seed,
            platform_class=classes[seed % len(classes)],
            rule=MappingRule.INTERVAL,
            n_apps=2,
            n_modes=2,
            stage_range=(4, 6),
        )
        for seed in range(count)
    ]


def _solutions_key(result) -> List[tuple]:
    """Canonical per-item view used for the byte-identity check."""
    out = []
    for item in result.items:
        if item.solution is None:
            out.append((item.index, item.status, None))
        else:
            s = item.solution
            out.append(
                (
                    item.index,
                    item.status,
                    s.mapping,
                    s.objective,
                    (s.values.period, s.values.latency, s.values.energy),
                )
            )
    return out


def run(output: Path, *, tiny: bool = False) -> dict:
    cpu_count = os.cpu_count() or 1
    count = 24 if tiny else 96
    sweep = sorted(
        {w for w in (1, 2, 4, 8) if w <= max(2, cpu_count)} | {2}
    )
    problems = _fleet(count)

    t0 = time.perf_counter()
    sequential = solve_batch(problems, objective="period", workers=None)
    sequential_s = time.perf_counter() - t0
    assert sequential.n_failed == 0, "sequential pass must not fail"

    curve = []
    runs: Dict[tuple, object] = {}
    for workers in sweep:
        for transport in ("shm", "pickle"):
            t0 = time.perf_counter()
            result = solve_batch(
                problems,
                objective="period",
                workers=workers,
                transport=transport,
            )
            elapsed = time.perf_counter() - t0
            assert result.n_failed == 0, (
                f"workers={workers} transport={transport} had failures"
            )
            runs[(workers, transport)] = result
            curve.append(
                {
                    "workers": workers,
                    "transport_requested": transport,
                    "transport": result.transport,
                    "run_s": round(elapsed, 4),
                    "jobs_per_sec": round(count / elapsed, 2),
                    "speedup_vs_sequential": round(sequential_s / elapsed, 3),
                    "bytes_pickled_per_job": result.stats.get(
                        "bytes_pickled_per_job"
                    ),
                    "parallel_efficiency": round(
                        result.stats.get("parallel_efficiency", 0.0), 3
                    ),
                }
            )

    # Byte identity: sequential vs shm vs pickle, on the same fleet.
    reference = _solutions_key(sequential)
    identical = all(
        _solutions_key(result) == reference for result in runs.values()
    )
    assert identical, "transports must produce byte-identical solutions"

    # Job-payload accounting at the widest sweep point.
    w = max(sweep)
    shm_run, pickle_run = runs[(w, "shm")], runs[(w, "pickle")]
    shm_bytes = shm_run.stats["bytes_pickled_per_job"]
    pickle_bytes = pickle_run.stats["bytes_pickled_per_job"]
    bytes_per_job = {
        "workers": w,
        "shm": round(shm_bytes, 2),
        "pickle": round(pickle_bytes, 2),
        "ratio": round(shm_bytes / pickle_bytes, 4) if pickle_bytes else None,
        "shm_resolved": shm_run.transport,
    }
    if shm_run.transport == "shm":
        assert shm_bytes <= MAX_SHM_BYTES_RATIO * pickle_bytes, (
            f"shm job payload {shm_bytes:.0f} B/job exceeds "
            f"{MAX_SHM_BYTES_RATIO:.0%} of pickle's {pickle_bytes:.0f} B/job"
        )

    # Scaling assertion — or a recorded skip on small machines.
    best_at_4 = max(
        (
            point["speedup_vs_sequential"]
            for point in curve
            if point["workers"] >= 4
        ),
        default=None,
    )
    if cpu_count >= 4 and best_at_4 is not None:
        speedup_assertion = {
            "skipped": False,
            "required": MIN_POOL_SPEEDUP,
            "measured": best_at_4,
            "passed": best_at_4 >= MIN_POOL_SPEEDUP,
        }
        assert best_at_4 >= MIN_POOL_SPEEDUP, (
            f"pooled speedup {best_at_4:.2f}x at >=4 workers is below the "
            f"{MIN_POOL_SPEEDUP}x bar on a {cpu_count}-CPU machine"
        )
    else:
        speedup_assertion = {
            "skipped": True,
            "required": MIN_POOL_SPEEDUP,
            "reason": (
                f"machine has {cpu_count} CPU(s); the >= {MIN_POOL_SPEEDUP}x "
                "at >= 4 workers bar needs >= 4 cores. The flat curve "
                "reflects the runner, not a regression — re-run on a "
                "multi-core machine."
            ),
        }

    payload = {
        "bench": "parallel",
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "cpu_count": cpu_count,
        "shm_available": shm_available(),
        "tiny": tiny,
        "n_jobs": count,
        "worker_sweep": sweep,
        "sequential_s": round(sequential_s, 4),
        "sequential_jobs_per_sec": round(count / sequential_s, 2),
        "curve": curve,
        "bytes_per_job": bytes_per_job,
        "identical_solutions": identical,
        "speedup_assertion": speedup_assertion,
    }
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    return payload


def main() -> int:
    argv = list(sys.argv[1:])
    tiny = "--tiny" in argv
    argv = [a for a in argv if a != "--tiny"]
    output = (
        Path(argv[0])
        if argv
        else Path(__file__).parent / "BENCH_parallel.json"
    )
    payload = run(output, tiny=tiny)
    best = max(p["speedup_vs_sequential"] for p in payload["curve"])
    print(
        f"ok: {payload['sequential_jobs_per_sec']} jobs/s sequential, "
        f"best pooled {best}x, shm/pickle bytes ratio "
        f"{payload['bytes_per_job']['ratio']}, "
        f"speedup assertion "
        + (
            "SKIPPED ("
            + payload["speedup_assertion"]["reason"].split(";")[0]
            + ")"
            if payload["speedup_assertion"]["skipped"]
            else "passed"
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
