"""Experiments T1.P11 / T1.P12 -- Table 1, row "Period / one-to-one".

Paper claims:

* polynomial (binary search + greedy assignment, Theorem 1) for identical
  links, up to heterogeneous processors -- reproduced by (i) optimality of
  Algorithm 1 against the exact solver on random instances and (ii) a
  runtime power-law fit across instance sizes (the bound is
  ``O((n_max A p)^2 log(n_max A p))``, so the measured exponent must stay
  far below any exponential and near the quadratic regime);
* NP-complete with heterogeneous links (Theorem 2) -- reproduced by the
  exponential node growth of the exact branch-and-bound against the flat
  polynomial heuristic, which stays within a small factor of the optimum.
"""

import math
import time

import pytest

from repro import (
    Criterion,
    MappingRule,
    Platform,
    ProblemInstance,
)
from repro.algorithms import minimize_period_one_to_one
from repro.algorithms.exact import exact_minimize
from repro.algorithms.heuristics import greedy_one_to_one_period, hill_climb
from repro.analysis import fit_power_law, render_table
from repro.generators import (
    random_applications,
    random_fully_heterogeneous_platform,
    rng_from,
)


def make_comm_hom_problem(seed, n_apps, stages_per_app):
    rng = rng_from(seed)
    apps = random_applications(
        rng, n_apps, stage_range=(stages_per_app, stages_per_app)
    )
    total = sum(a.n_stages for a in apps)
    platform = Platform.comm_homogeneous(
        [[float(rng.uniform(1, 5))] for _ in range(total)],
        bandwidth=2.0,
    )
    return ProblemInstance(
        apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE
    )


def make_het_problem(seed, n_apps=2, stages_per_app=2):
    rng = rng_from(seed)
    apps = random_applications(
        rng, n_apps, stage_range=(stages_per_app, stages_per_app)
    )
    total = sum(a.n_stages for a in apps)
    platform = random_fully_heterogeneous_platform(rng, total, n_apps)
    return ProblemInstance(
        apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE
    )


def test_t1p11_theorem1_optimality(benchmark, report):
    """Theorem 1 equals the exact optimum on every sampled instance."""
    problems = [make_comm_hom_problem(seed, 2, 2) for seed in range(10)]

    def solve_batch():
        return [minimize_period_one_to_one(p).objective for p in problems]

    fast_values = benchmark(solve_batch)
    rows = []
    for seed, (p, fast) in enumerate(zip(problems, fast_values)):
        exact = exact_minimize(p, Criterion.PERIOD).objective
        rows.append((seed, fast, exact, "yes" if math.isclose(fast, exact) else "NO"))
        assert fast == pytest.approx(exact)
    report(
        "T1.P11: Theorem 1 (binary search + greedy) vs exact optimum "
        "(paper: polynomial AND optimal)",
        render_table(["seed", "theorem 1", "exact", "match"], rows),
    )


def test_t1p11_theorem1_scaling(benchmark, report):
    """Runtime grows polynomially with the instance size."""
    sizes = [2, 4, 8, 16, 24]
    rows = []
    samples = []
    for n in sizes:
        problem = make_comm_hom_problem(7, 2, n)
        t0 = time.perf_counter()
        minimize_period_one_to_one(problem)
        elapsed = time.perf_counter() - t0
        samples.append((2 * n, elapsed))
        rows.append((2 * n, 2 * n, elapsed * 1e3))
    fit = fit_power_law([s for s, _ in samples], [t for _, t in samples])
    rows.append(("fit", "-", f"t ~ N^{fit.exponent:.2f}"))
    report(
        "T1.P11: Theorem 1 runtime scaling "
        "(paper bound O((n_max A p)^2 log .); polynomial expected)",
        render_table(["N stages", "p procs", "time (ms)"], rows),
    )
    # Far from exponential: doubling N must not square the runtime 2^N-style.
    assert fit.exponent < 5.0
    benchmark(lambda: minimize_period_one_to_one(make_comm_hom_problem(7, 2, 8)))


def test_t1p12_np_hard_cell(benchmark, report):
    """Theorem 2 cell: exact blowup vs polynomial heuristic on fully
    heterogeneous platforms."""
    rows = []
    for stages_per_app in (2, 3, 4):
        problem = make_het_problem(3, n_apps=2, stages_per_app=stages_per_app)
        t0 = time.perf_counter()
        exact = exact_minimize(problem, Criterion.PERIOD)
        t_exact = time.perf_counter() - t0
        t0 = time.perf_counter()
        heur = hill_climb(
            problem,
            greedy_one_to_one_period(problem).mapping,
            Criterion.PERIOD,
        )
        t_heur = time.perf_counter() - t0
        ratio = heur.objective / exact.objective
        rows.append(
            (
                2 * stages_per_app,
                int(exact.stats["nodes"]),
                t_exact * 1e3,
                t_heur * 1e3,
                ratio,
            )
        )
        assert ratio >= 1.0 - 1e-9
        assert ratio <= 2.0  # heuristic stays in the right ballpark
    report(
        "T1.P12: period/one-to-one on com-het (paper: NP-complete, Thm 2) -- "
        "exact B&B nodes grow combinatorially; heuristic stays fast & close",
        render_table(
            ["N stages", "B&B nodes", "exact (ms)", "heuristic (ms)", "heur/opt"],
            rows,
        ),
    )
    # Node counts must grow with size (the hardness signature).
    assert rows[-1][1] > rows[0][1]
    problem = make_het_problem(3, n_apps=2, stages_per_app=2)
    benchmark(
        lambda: hill_climb(
            problem,
            greedy_one_to_one_period(problem).mapping,
            Criterion.PERIOD,
        )
    )
