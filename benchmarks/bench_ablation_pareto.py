"""Experiment ABL3 -- the period/energy trade-off (Section 2's discussion
made quantitative).

The paper's worked example is three points of one trade-off curve; this
bench regenerates the *entire exact Pareto front* of the Figure 1 instance
(the three paper points must lie on it) and a heuristic front for a larger
instance beyond exact reach.
"""

import math

import pytest

from repro import EnergyModel, Platform, ProblemInstance, Thresholds
from repro.algorithms import minimize_period_interval
from repro.algorithms.heuristics import greedy_mode_downgrade
from repro.analysis import (
    pareto_filter,
    period_energy_front_exact,
    period_energy_front_heuristic,
    render_table,
)
from repro.generators import dvfs_speed_ladder, random_applications, rng_from
from repro.paper import FIGURE1_EXPECTED, figure1_problem


def test_abl3_figure1_exact_front(benchmark, report):
    """The exact period/energy Pareto front of the Figure 1 instance."""
    problem = figure1_problem()

    front = benchmark.pedantic(
        lambda: period_energy_front_exact(problem), rounds=1, iterations=1
    )
    report(
        "ABL3: exact period/energy Pareto front of the Figure 1 instance "
        "(paper's points: T=1/E=136, T=2/E=46, E_min=10)",
        render_table(["period", "energy"], front),
    )
    as_dict = dict(front)
    assert as_dict.get(1.0) == pytest.approx(136.0)
    assert as_dict.get(2.0) == pytest.approx(46.0)
    assert min(e for _, e in front) == pytest.approx(10.0)
    # A front is strictly decreasing in energy as period grows.
    energies = [e for _, e in front]
    assert all(a > b for a, b in zip(energies, energies[1:]))


def test_abl3_heuristic_front_large_instance(benchmark, report):
    """A heuristic front on an instance far beyond exhaustive reach
    (3 applications, 18 stages, 8 processors, 4 modes)."""
    rng = rng_from(23)
    apps = random_applications(rng, 3, stage_range=(5, 7))
    platform = Platform.fully_homogeneous(
        8, speeds=dvfs_speed_ladder(1.0, 4, top_ratio=3.0), bandwidth=4.0
    )
    problem = ProblemInstance(
        apps=apps, platform=platform, energy_model=EnergyModel(alpha=2.0)
    )
    start = minimize_period_interval(problem)

    front = benchmark.pedantic(
        lambda: period_energy_front_heuristic(problem, start, n_points=10),
        rounds=1,
        iterations=1,
    )
    report(
        "ABL3: heuristic period/energy front, 18-stage instance "
        "(greedy mode-downgrade sweep)",
        render_table(["period", "energy"], front),
    )
    assert len(front) >= 3
    energies = [e for _, e in front]
    assert all(a > b for a, b in zip(energies, energies[1:]))
    # Relaxing period by >3x must save a solid fraction of the energy with
    # a 3x DVFS ladder (quadratic dynamic energy).
    assert energies[-1] <= 0.6 * energies[0]


def test_abl3_alpha_sensitivity(benchmark, report):
    """Ablation over the energy exponent alpha (Section 3.5 allows any
    alpha > 1): higher alpha makes slowing down more valuable."""
    problem_base = figure1_problem()

    def sweep():
        rows = []
        for alpha in (1.5, 2.0, 3.0):
            problem = ProblemInstance(
                apps=problem_base.apps,
                platform=problem_base.platform,
                rule=problem_base.rule,
                model=problem_base.model,
                energy_model=EnergyModel(alpha=alpha),
            )
            from repro.algorithms.exact import exact_minimize
            from repro import Criterion

            e_fast = exact_minimize(
                problem, Criterion.ENERGY, Thresholds(period=1.0)
            ).objective
            e_slow = exact_minimize(
                problem, Criterion.ENERGY, Thresholds(period=2.0)
            ).objective
            rows.append((alpha, e_fast, e_slow, e_fast / e_slow))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ABL3: energy savings of relaxing the period 1 -> 2 as a function "
        "of the exponent alpha",
        render_table(
            ["alpha", "E | T<=1", "E | T<=2", "savings factor"], rows
        ),
    )
    factors = [r[3] for r in rows]
    # Higher alpha -> relaxing the period saves a larger factor.
    assert all(a <= b + 1e-9 for a, b in zip(factors, factors[1:]))
