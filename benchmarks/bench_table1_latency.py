"""Experiments T1.L11 / T1.L12 / T1.L21 / T1.L22 -- Table 1, latency rows.

Paper claims:

* latency / one-to-one: polynomial on proc-hom (Theorem 8, all mappings
  equivalent), NP-complete from the ``special-app`` column on (Theorems
  9-11, 3-PARTITION) -- the second starred entry;
* latency / interval: polynomial up to com-hom links (Theorem 12, binary
  search over whole-application placements), NP-complete on com-het
  (Theorem 13).
"""

import math
import time

import numpy as np
import pytest

from repro import Criterion, MappingRule, Platform, ProblemInstance
from repro.algorithms import (
    minimize_latency_interval,
    minimize_latency_one_to_one_fully_hom,
)
from repro.algorithms.exact import exact_minimize
from repro.algorithms.heuristics import greedy_interval_period, hill_climb
from repro.algorithms.reductions import (
    LatencyOneToOneReduction,
    random_three_partition_yes_instance,
)
from repro.analysis import fit_power_law, render_table
from repro.generators import (
    random_applications,
    random_fully_heterogeneous_platform,
    rng_from,
)


def test_t1l11_theorem8(benchmark, report):
    """All one-to-one mappings coincide on proc-hom: the canonical mapping
    equals the exact optimum."""
    rows = []
    problems = []
    for seed in range(6):
        rng = rng_from(seed)
        apps = random_applications(rng, 2, stage_range=(1, 3))
        total = sum(a.n_stages for a in apps)
        platform = Platform.fully_homogeneous(total, speeds=[2.0])
        problems.append(
            ProblemInstance(
                apps=apps, platform=platform, rule=MappingRule.ONE_TO_ONE
            )
        )
    values = benchmark(
        lambda: [
            minimize_latency_one_to_one_fully_hom(p).objective
            for p in problems
        ]
    )
    for seed, (p, fast) in enumerate(zip(problems, values)):
        exact = exact_minimize(p, Criterion.LATENCY).objective
        rows.append((seed, fast, exact))
        assert fast == pytest.approx(exact)
    report(
        "T1.L11: Theorem 8 canonical one-to-one latency vs exact "
        "(paper: polynomial, all mappings equivalent)",
        render_table(["seed", "canonical", "exact"], rows),
    )


def test_t1l12_starred_entry_gadget(benchmark, report):
    """Theorem 9 gadget: exact nodes grow with m; the optimum equals the
    3-PARTITION bound B on yes-instances."""
    rng = np.random.default_rng(2)
    rows = []
    for m in (1, 2, 3):
        source = random_three_partition_yes_instance(rng, m=m, bound=12)
        red = LatencyOneToOneReduction.build(source)
        t0 = time.perf_counter()
        exact = exact_minimize(red.problem, Criterion.LATENCY)
        elapsed = time.perf_counter() - t0
        rows.append(
            (m, 3 * m, int(exact.stats["nodes"]), elapsed * 1e3, exact.objective)
        )
        assert exact.objective == pytest.approx(red.target_latency)
    report(
        "T1.L12: Theorem 9 gadget (latency/one-to-one, special-app) -- "
        "optimum pinned at B, exact cost grows with m "
        "(paper: NP-complete(*), polynomial for A=1 [5])",
        render_table(
            ["m apps", "p procs", "B&B nodes", "time (ms)", "latency found"],
            rows,
        ),
    )
    assert rows[-1][2] > rows[0][2]
    source = random_three_partition_yes_instance(rng, m=2, bound=12)
    red = LatencyOneToOneReduction.build(source)
    benchmark.pedantic(
        lambda: exact_minimize(red.problem, Criterion.LATENCY),
        rounds=1,
        iterations=1,
    )


def test_t1l21_theorem12_optimality_and_scaling(benchmark, report):
    """Theorem 12: optimal on com-hom, polynomial runtime."""
    rows = []
    problems = []
    for seed in range(6):
        rng = rng_from(seed + 10)
        apps = random_applications(rng, 2, stage_range=(2, 3))
        platform = Platform.comm_homogeneous(
            [[float(rng.uniform(1, 5))] for _ in range(4)], bandwidth=2.0
        )
        problems.append(ProblemInstance(apps=apps, platform=platform))
    values = benchmark(
        lambda: [minimize_latency_interval(p).objective for p in problems]
    )
    for seed, (p, fast) in enumerate(zip(problems, values)):
        exact = exact_minimize(p, Criterion.LATENCY).objective
        rows.append((seed, fast, exact))
        assert fast == pytest.approx(exact)
    report(
        "T1.L21: Theorem 12 (whole app per processor, binary search) vs "
        "exact (paper: polynomial O(Ap log Ap))",
        render_table(["seed", "theorem 12", "exact"], rows),
    )

    # Scaling sweep over A and p together.
    sizes = [2, 4, 8, 16, 32]
    samples = []
    scale_rows = []
    for n_apps in sizes:
        rng = rng_from(99)
        apps = random_applications(rng, n_apps, stage_range=(2, 2))
        platform = Platform.comm_homogeneous(
            [[float(rng.uniform(1, 5))] for _ in range(n_apps + 2)]
        )
        problem = ProblemInstance(apps=apps, platform=platform)
        t0 = time.perf_counter()
        minimize_latency_interval(problem)
        elapsed = time.perf_counter() - t0
        samples.append((n_apps, elapsed))
        scale_rows.append((n_apps, n_apps + 2, elapsed * 1e3))
    fit = fit_power_law([a for a, _ in samples], [t for _, t in samples])
    scale_rows.append(("fit", "-", f"t ~ A^{fit.exponent:.2f}"))
    report(
        "T1.L21: Theorem 12 runtime scaling with the application count",
        render_table(["A apps", "p procs", "time (ms)"], scale_rows),
    )
    assert fit.exponent < 4.0


def test_t1l22_np_hard_cell(benchmark, report):
    """Theorem 13 cell: exact vs heuristic on fully heterogeneous links."""
    rows = []
    for seed, n_stages in ((0, 2), (1, 3), (2, 4)):
        rng = rng_from(seed)
        apps = random_applications(rng, 2, stage_range=(n_stages, n_stages))
        platform = random_fully_heterogeneous_platform(
            rng, 2 * n_stages, 2
        )
        problem = ProblemInstance(apps=apps, platform=platform)
        t0 = time.perf_counter()
        exact = exact_minimize(problem, Criterion.LATENCY)
        t_exact = time.perf_counter() - t0
        t0 = time.perf_counter()
        heur = hill_climb(
            problem,
            greedy_interval_period(problem).mapping,
            Criterion.LATENCY,
        )
        t_heur = time.perf_counter() - t0
        ratio = heur.objective / exact.objective
        rows.append(
            (
                2 * n_stages,
                int(exact.stats["nodes"]),
                t_exact * 1e3,
                t_heur * 1e3,
                ratio,
            )
        )
        assert 1.0 - 1e-9 <= ratio <= 2.0
    report(
        "T1.L22: latency/interval on com-het (paper: NP-complete, Thm 13) "
        "-- exact nodes grow, heuristic close and fast",
        render_table(
            ["N stages", "B&B nodes", "exact (ms)", "heuristic (ms)", "heur/opt"],
            rows,
        ),
    )
    rng = rng_from(1)
    apps = random_applications(rng, 2, stage_range=(3, 3))
    platform = random_fully_heterogeneous_platform(rng, 6, 2)
    problem = ProblemInstance(apps=apps, platform=platform)
    benchmark.pedantic(
        lambda: hill_climb(
            problem,
            greedy_interval_period(problem).mapping,
            Criterion.LATENCY,
        ),
        rounds=2,
        iterations=1,
    )
