"""Kernel speedup micro-benchmark: scalar vs vectorized evaluation, and
sequential vs pooled batch solving.

Run as a script to (re)record the performance baseline::

    PYTHONPATH=src python benchmarks/bench_kernel_speedup.py

It writes ``BENCH_kernel.json`` next to this file with four series:

* ``evaluate_scalar`` / ``evaluate_kernel`` -- microseconds per full
  mapping evaluation of a 200-stage application split over 50 processors
  (the ISSUE's reference size), for both communication models;
* ``solve_batch_sequential`` / ``solve_batch_pooled`` -- seconds to solve
  100 random instances across >= 3 registry cells, sequentially and over
  a process pool.

The acceptance bar (asserted when run as a script): the
:class:`repro.kernel.EvaluationContext` path is at least 5x faster than
the scalar reference on the 200/50 instance.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import sys
import time
from pathlib import Path
from typing import Dict

from repro import (
    Application,
    Assignment,
    CommunicationModel,
    EvaluationContext,
    Mapping,
    MappingRule,
    Platform,
    PlatformClass,
)
from repro.core.evaluation import evaluate_scalar
from repro.generators import small_random_problem
from repro.service import solve_batch

#: Reference instance size from the ISSUE acceptance criteria.
N_STAGES = 200
N_PROCS = 50
#: Required kernel speedup over the scalar path.
MIN_SPEEDUP = 5.0


def reference_instance():
    """A deterministic 200-stage application mapped over 50 processors."""
    works = [1.0 + ((7 * i) % 13) for i in range(N_STAGES)]
    sizes = [float((3 * i) % 5) for i in range(N_STAGES)]
    app = Application.from_lists(
        works, sizes, input_data_size=2.0, name="bench-200"
    )
    platform = Platform.fully_homogeneous(
        N_PROCS, speeds=[1.0, 2.0], bandwidth=4.0, static_energy=0.5
    )
    per_proc = N_STAGES // N_PROCS
    assignments = []
    for u in range(N_PROCS):
        lo = u * per_proc
        hi = lo + per_proc - 1
        assignments.append(
            Assignment(app=0, interval=(lo, hi), proc=u, speed=2.0)
        )
    return (app,), platform, Mapping.from_assignments(assignments)


def _time_per_call(fn, *, min_seconds: float = 0.3) -> float:
    """Average seconds per call over enough repetitions to be stable."""
    fn()  # warm-up (also populates per-app caches on both paths)
    n = 1
    while True:
        t0 = time.perf_counter()
        for _ in range(n):
            fn()
        elapsed = time.perf_counter() - t0
        if elapsed >= min_seconds:
            return elapsed / n
        n = max(n + 1, int(n * min_seconds / max(elapsed, 1e-9)) + 1)


def bench_evaluate() -> Dict[str, Dict[str, float]]:
    """Scalar vs kernel evaluation times (microseconds per call)."""
    apps, platform, mapping = reference_instance()
    out: Dict[str, Dict[str, float]] = {}
    for model in CommunicationModel:
        context = EvaluationContext(apps, platform, model=model)
        scalar = _time_per_call(
            lambda: evaluate_scalar(apps, platform, mapping, model=model)
        )
        kernel = _time_per_call(lambda: context.evaluate(mapping))
        out[model.value] = {
            "evaluate_scalar_us": scalar * 1e6,
            "evaluate_kernel_us": kernel * 1e6,
            "speedup": scalar / kernel,
        }
    return out


def bench_batch(count: int = 100, workers: int = 4) -> Dict[str, object]:
    """Sequential vs pooled solve_batch on random instances across cells.

    Instances are sized so one solve takes tens of milliseconds (heuristic
    search on the NP-hard cells) -- large enough for the process pool to
    amortize its startup, small enough to keep the bench under a minute.
    The pooled pass runs through the work-stealing pool with the
    shared-memory transport (``transport="auto"``; the JSON records what
    it resolved to).  ``pool_speedup`` is only meaningful on multi-core
    machines — see the ``caveats`` field and ``cpu_count`` in the JSON,
    and :mod:`benchmarks.bench_parallel` for the full scaling curve.
    """
    workers = max(2, min(workers, os.cpu_count() or 1))
    classes = list(PlatformClass)
    problems = [
        small_random_problem(
            seed,
            platform_class=classes[seed % len(classes)],
            rule=MappingRule.INTERVAL,
            n_apps=2,
            n_modes=2,
            stage_range=(4, 6),
        )
        for seed in range(count)
    ]
    sequential = solve_batch(problems, objective="period", workers=None)
    pooled = solve_batch(
        problems, objective="period", workers=workers, transport="auto"
    )
    assert sequential.n_failed == 0 and pooled.n_failed == 0
    return {
        "count": float(count),
        "workers": float(workers),
        "sequential_s": sequential.total_time,
        "pooled_s": pooled.total_time,
        "pool_speedup": sequential.total_time / pooled.total_time,
        "n_ok_sequential": float(sequential.n_ok),
        "n_ok_pooled": float(pooled.n_ok),
        "transport": pooled.transport,
        "bytes_pickled_per_job": pooled.stats.get("bytes_pickled_per_job"),
    }


def main(output: str = "") -> int:
    """Run both benches, print the numbers, write ``BENCH_kernel.json``."""
    evaluate_series = bench_evaluate()
    batch_series = bench_batch()
    cpu_count = os.cpu_count() or 1
    caveats = []
    if cpu_count < int(batch_series["workers"]):
        caveats.append(
            f"pool_speedup was measured with {int(batch_series['workers'])} "
            f"workers on a {cpu_count}-CPU machine: values near (or below) "
            "1.0x reflect the runner's core count, not a regression. "
            "Re-run on a multi-core machine before comparing; "
            "benchmarks/bench_parallel.py records the full scaling curve."
        )
    record = {
        "instance": {"n_stages": N_STAGES, "n_processors": N_PROCS},
        "python": sys.version.split()[0],
        "machine": _platform.machine(),
        "cpu_count": cpu_count,
        "caveats": caveats,
        "evaluate": evaluate_series,
        "solve_batch": batch_series,
    }
    path = Path(output) if output else Path(__file__).with_name(
        "BENCH_kernel.json"
    )
    path.write_text(json.dumps(record, indent=2) + "\n")

    print(f"reference instance: {N_STAGES} stages / {N_PROCS} processors")
    worst = float("inf")
    for model, series in evaluate_series.items():
        print(
            f"  {model:<11} scalar {series['evaluate_scalar_us']:8.1f} us"
            f"  kernel {series['evaluate_kernel_us']:8.1f} us"
            f"  speedup {series['speedup']:5.1f}x"
        )
        worst = min(worst, series["speedup"])
    b = batch_series
    print(
        f"solve_batch: {int(b['count'])} instances, sequential "
        f"{b['sequential_s']:.2f}s vs {int(b['workers'])} workers "
        f"{b['pooled_s']:.2f}s ({b['pool_speedup']:.2f}x)"
    )
    print(f"baseline written to {path}")
    assert worst >= MIN_SPEEDUP, (
        f"kernel speedup {worst:.2f}x below the {MIN_SPEEDUP}x bar"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(*sys.argv[1:]))
