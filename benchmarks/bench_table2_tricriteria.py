"""Experiments T2.PLE1 / T2.PLE2 -- Table 2, row "Period/Latency/Energy".

Paper claims:

* with *uni-modal* processors on fully homogeneous platforms all three
  threshold variants are polynomial (Theorems 23-24) -- reproduced by
  optimality against the exact solver;
* with *multi-modal* processors the problem is NP-hard even for a single
  application without communications (Theorem 26 one-to-one, Theorem 27
  interval, both by reduction from 2-PARTITION) -- reproduced by running
  the actual reduction gadgets: yes-instances admit threshold-meeting
  mappings that decode back to balanced partitions, no-instances do not,
  and the exact solving cost grows with the instance size while the greedy
  mode-downgrade heuristic stays polynomial.
"""

import math
import time

import numpy as np
import pytest

from repro import (
    Criterion,
    EnergyModel,
    InfeasibleProblemError,
    Platform,
    ProblemInstance,
    Thresholds,
)
from repro.algorithms import (
    minimize_energy_tri,
    minimize_latency_interval,
    minimize_latency_tri,
    minimize_period_interval,
    minimize_period_tri,
)
from repro.algorithms.exact import exact_minimize
from repro.algorithms.heuristics import greedy_mode_downgrade
from repro.algorithms.reductions import (
    TriCriteriaIntervalReduction,
    TriCriteriaOneToOneReduction,
    TwoPartitionInstance,
    random_two_partition_instance,
)
from repro.analysis import render_table
from repro.generators import random_applications, rng_from

EM = EnergyModel(alpha=2.0)


def uni_modal_problem(seed):
    rng = rng_from(seed)
    apps = random_applications(rng, 2, stage_range=(2, 3))
    platform = Platform.fully_homogeneous(
        5, speeds=[2.0], bandwidth=1.5
    )
    return ProblemInstance(apps=apps, platform=platform, energy_model=EM)


def test_t2ple1_uni_modal_polynomial(benchmark, report):
    """Theorem 24: all three threshold variants match the exact solver."""
    rows = []
    problems = []
    for seed in range(4):
        p = uni_modal_problem(seed)
        base_t = minimize_period_interval(p).objective
        base_l = minimize_latency_interval(p).objective
        e0 = EM.dynamic(2.0)
        problems.append((p, base_t * 1.5, base_l * 1.5, 4 * e0))

    def solve_all():
        out = []
        for p, t, l, e in problems:
            out.append(
                (
                    minimize_period_tri(
                        p, Thresholds(latency=l, energy=e)
                    ).objective,
                    minimize_latency_tri(
                        p, Thresholds(period=t, energy=e)
                    ).objective,
                    minimize_energy_tri(
                        p, Thresholds(period=t, latency=l)
                    ).objective,
                )
            )
        return out

    values = benchmark(solve_all)
    for seed, ((p, t, l, e), (v_t, v_l, v_e)) in enumerate(
        zip(problems, values)
    ):
        e_t = exact_minimize(
            p, Criterion.PERIOD, Thresholds(latency=l, energy=e)
        ).objective
        e_l = exact_minimize(
            p, Criterion.LATENCY, Thresholds(period=t, energy=e)
        ).objective
        e_e = exact_minimize(
            p, Criterion.ENERGY, Thresholds(period=t, latency=l)
        ).objective
        rows.append((seed, v_t, e_t, v_l, e_l, v_e, e_e))
        assert v_t == pytest.approx(e_t)
        assert v_l == pytest.approx(e_l)
        assert v_e == pytest.approx(e_e)
    report(
        "T2.PLE1: Theorem 24 uni-modal tri-criteria, all three variants vs "
        "exact (paper: polynomial on proc-hom)",
        render_table(
            ["seed", "T|L,E", "exact", "L|T,E", "exact", "E|T,L", "exact"],
            rows,
        ),
    )


def test_t2ple2_theorem26_gadget(benchmark, report):
    """Theorem 26: the 2-PARTITION gadget decides correctly both ways."""
    rows = []
    cases = [
        ((1, 2, 3), True),
        ((1, 1, 2), True),
        ((1, 2), False),
        ((3, 1, 1), False),
        ((1, 1, 2, 2), True),
        ((5, 1, 1, 1), False),
    ]
    for values, expected_yes in cases:
        source = TwoPartitionInstance(values=values)
        red = TriCriteriaOneToOneReduction.build(source)
        t0 = time.perf_counter()
        try:
            solution = exact_minimize(
                red.problem,
                Criterion.ENERGY,
                red.thresholds,
                fix_max_speed=False,
            )
            decided_yes = True
            detail = f"E={solution.objective:.6g}"
        except InfeasibleProblemError:
            decided_yes = False
            detail = "infeasible"
        elapsed = time.perf_counter() - t0
        rows.append(
            (
                str(values),
                "yes" if expected_yes else "no",
                "yes" if decided_yes else "no",
                elapsed * 1e3,
                detail,
            )
        )
        assert decided_yes == expected_yes
        if decided_yes:
            subset = red.subset_from_mapping(solution.mapping)
            assert source.check(subset)
    report(
        "T2.PLE2: Theorem 26 gadget (tri-criteria, one-to-one, multi-modal) "
        "-- decision matches 2-PARTITION on every instance",
        render_table(
            ["values", "2-partition", "gadget decision", "time (ms)", "detail"],
            rows,
        ),
    )
    source = TwoPartitionInstance(values=(1, 2, 3))
    red = TriCriteriaOneToOneReduction.build(source)
    benchmark.pedantic(
        lambda: exact_minimize(
            red.problem, Criterion.ENERGY, red.thresholds, fix_max_speed=False
        ),
        rounds=1,
        iterations=1,
    )


def test_t2ple2_theorem27_gadget(benchmark, report):
    """Theorem 27: the interval gadget with big separator stages."""
    rows = []
    for values, expected_yes in (((1, 2, 3), True), ((3, 1, 1), False)):
        source = TwoPartitionInstance(values=values)
        red = TriCriteriaIntervalReduction.build(source)
        t0 = time.perf_counter()
        try:
            exact_minimize(
                red.problem,
                Criterion.ENERGY,
                red.thresholds,
                fix_max_speed=False,
            )
            decided_yes = True
        except InfeasibleProblemError:
            decided_yes = False
        elapsed = time.perf_counter() - t0
        rows.append(
            (
                str(values),
                "yes" if expected_yes else "no",
                "yes" if decided_yes else "no",
                elapsed * 1e3,
            )
        )
        assert decided_yes == expected_yes
    report(
        "T2.PLE2: Theorem 27 gadget (interval rule, big separator stages)",
        render_table(
            ["values", "2-partition", "gadget decision", "time (ms)"], rows
        ),
    )
    source = TwoPartitionInstance(values=(1, 2, 3))
    red = TriCriteriaIntervalReduction.build(source)
    benchmark.pedantic(
        lambda: exact_minimize(
            red.problem, Criterion.ENERGY, red.thresholds, fix_max_speed=False
        ),
        rounds=1,
        iterations=1,
    )


def test_t2ple2_exact_growth_vs_heuristic(benchmark, report):
    """Exact cost on the Theorem 26 gadget grows with n; the future-work
    heuristic (greedy mode downgrade) runs in polynomial time on multi-modal
    tri-criteria instances of any size, at a measured quality gap."""
    rng = np.random.default_rng(4)
    rows = []
    for n in (2, 3, 4):
        source = random_two_partition_instance(rng, n, max_value=3, force_yes=True)
        red = TriCriteriaOneToOneReduction.build(source)
        t0 = time.perf_counter()
        exact = exact_minimize(
            red.problem, Criterion.ENERGY, red.thresholds, fix_max_speed=False
        )
        elapsed = time.perf_counter() - t0
        rows.append(
            (len(source.values), int(exact.stats["nodes"]), elapsed * 1e3)
        )
    report(
        "T2.PLE2: exact nodes on growing Theorem 26 gadgets "
        "(paper: NP-hard with multi-modal processors)",
        render_table(["n values", "B&B nodes", "time (ms)"], rows),
    )
    assert rows[-1][1] > rows[0][1]

    # Heuristic arm on a realistic multi-modal tri-criteria instance.
    rng2 = rng_from(9)
    apps = random_applications(rng2, 3, stage_range=(4, 6))
    platform = Platform.fully_homogeneous(
        8, speeds=[1.0, 1.5, 2.0, 3.0], bandwidth=2.0
    )
    problem = ProblemInstance(apps=apps, platform=platform, energy_model=EM)
    start = minimize_period_interval(problem)
    thresholds = Thresholds(
        period=start.objective * 1.5, latency=start.values.latency * 2.0
    )
    heur = benchmark.pedantic(
        lambda: greedy_mode_downgrade(problem, start.mapping, thresholds),
        rounds=2,
        iterations=1,
    )
    assert heur.values.energy <= start.values.energy
