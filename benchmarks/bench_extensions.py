"""Experiments EXT1 / EXT2 -- the paper's future work, implemented and
measured (Section 6 and Section 3.3).

EXT1 -- replication: "a stage could be mapped onto several processors, each
in charge of different data sets, in order to improve the period" [4].
Measured: the period speedup of the replication-aware DP over the plain
interval DP as processors are added (replication keeps improving after the
interval rule saturates at one processor per stage), and the round-robin
simulator confirming the ``cycle / k`` law.

EXT2 -- general mappings: the Section 3.3 justification for forbidding
them.  Measured: the exact general-mapping optimum vs the interval-rule
optimum (the "price of tractability") across random instances, plus the
2-PARTITION gadget decisions.
"""

import math

import numpy as np
import pytest

from repro import Application, CommunicationModel, Platform
from repro.algorithms.interval_period import single_app_period_table
from repro.analysis import render_table
from repro.extensions import (
    GeneralMappingPeriodReduction,
    ReplicatedAssignment,
    ReplicatedMapping,
    evaluate_replicated,
    min_period_general_mapping,
    replicated_period_table,
    simulate_replicated,
)
from repro.extensions.general_mappings import best_interval_period_no_comm
from repro.generators import random_application, rng_from

OVERLAP = CommunicationModel.OVERLAP


def test_ext1_replication_speedup(benchmark, report):
    """Period vs processor count: interval rule saturates, replication
    keeps scaling (compute-bound pipeline)."""
    app = Application.from_lists([10, 2], [0.5, 0.5], input_data_size=0.5)

    def sweep():
        rows = []
        plain = single_app_period_table(app, 8, 1.0, 1.0, OVERLAP)
        repl = replicated_period_table(app, 8, 1.0, 1.0, OVERLAP)
        for q in (1, 2, 4, 8):
            rows.append((q, plain.period(q), repl.period(q)))
        return rows

    rows = benchmark(sweep)
    report(
        "EXT1: interval-rule vs replicated period as processors grow "
        "(paper future work / [4]; the interval rule saturates at n=2 "
        "processors, replication keeps improving)",
        render_table(
            ["processors", "interval period", "replicated period"], rows
        ),
    )
    # Interval saturates at q=2 (two stages); replication keeps gaining.
    assert rows[1][1] == rows[3][1]
    assert rows[3][2] < rows[1][2]
    for _, plain_t, repl_t in rows:
        assert repl_t <= plain_t + 1e-12


def test_ext1_round_robin_law(benchmark, report):
    """Simulated steady state matches cycle/k for k = 1..4 replicas."""
    app = Application.from_lists([12], [0.0])
    platform = Platform.fully_homogeneous(4, [1.0])

    def sweep():
        rows = []
        for k in (1, 2, 3, 4):
            mapping = ReplicatedMapping(
                assignments=(
                    ReplicatedAssignment(
                        app=0,
                        interval=(0, 0),
                        procs=tuple(range(k)),
                        speeds=(1.0,) * k,
                    ),
                )
            )
            analytic = evaluate_replicated(
                [app], platform, mapping
            ).periods[0]
            completions = simulate_replicated(
                [app], platform, mapping, 200
            )[0]
            # Completions arrive in bursts of k (round-robin), so the
            # steady-state window must span whole rounds.
            window = 120  # divisible by every k in 1..4
            measured = (completions[-1] - completions[-1 - window]) / window
            rows.append((k, 12.0 / k, analytic, measured))
        return rows

    rows = benchmark(sweep)
    report(
        "EXT1: the cycle/k round-robin law, analytic vs simulated",
        render_table(
            ["replicas k", "cycle/k", "analytic period", "simulated period"],
            rows,
        ),
    )
    for k, law, analytic, measured in rows:
        assert analytic == pytest.approx(law)
        assert measured == pytest.approx(law)


def test_ext2_general_mapping_gap(benchmark, report):
    """The interval rule's optimality gap vs general mappings on random
    no-communication instances (2 processors)."""
    rng = np.random.default_rng(3)
    instances = [
        [float(rng.integers(1, 9)) for _ in range(int(rng.integers(4, 8)))]
        for _ in range(12)
    ]

    def sweep():
        gaps = []
        for works in instances:
            general, _ = min_period_general_mapping(works, 2)
            interval = best_interval_period_no_comm(works, 2)
            gaps.append(interval / general)
        return gaps

    gaps = benchmark(sweep)
    rows = [
        ("min", min(gaps)),
        ("mean", sum(gaps) / len(gaps)),
        ("max", max(gaps)),
        ("instances with a strict gap", sum(1 for g in gaps if g > 1 + 1e-12)),
    ]
    report(
        "EXT2: interval-rule period / general-mapping period on random "
        "chains (the price of the restriction that keeps Table 1 polynomial)",
        render_table(["statistic", "value"], rows),
    )
    assert all(g >= 1.0 - 1e-12 for g in gaps)
    assert max(gaps) < 2.0  # chain cuts are never catastrophically bad here


def test_ext2_two_partition_gadget(benchmark, report):
    """Section 3.3's 'straightforward reduction from 2-partition'."""
    cases = [
        ([3, 1, 1, 2, 2, 1], True),
        ([1, 2, 3], True),
        ([2, 2, 1], False),
        ([8, 1, 1, 1], False),
    ]

    def decide_all():
        return [
            GeneralMappingPeriodReduction.build(values).decide()
            for values, _ in cases
        ]

    decisions = benchmark(decide_all)
    rows = [
        (str(values), "yes" if expected else "no", "yes" if got else "no")
        for (values, expected), got in zip(cases, decisions)
    ]
    report(
        "EXT2: general-mapping period decision == 2-PARTITION "
        "(Section 3.3's hardness argument, executable)",
        render_table(["values", "2-partition", "gadget"], rows),
    )
    for (values, expected), got in zip(cases, decisions):
        assert got == expected
