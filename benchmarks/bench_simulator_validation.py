"""Experiment SIM -- Equations (3), (4), (5) vs the discrete-event
simulator.

The paper's criteria are purely analytic; this bench closes the loop by
streaming data sets through randomly generated mapped instances under both
communication models and comparing the measured steady-state period and
first-data-set latency with the formulas.  Agreement must be exact (the
simulator is deterministic); the bench reports the largest relative error
observed across the sweep, plus simulator throughput.
"""

import math

import pytest

from repro import CommunicationModel, Criterion
from repro.algorithms.exact import exact_minimize
from repro.analysis import render_table
from repro.core.evaluation import application_latency, application_period
from repro.generators import small_random_problem
from repro.simulation import resource_utilization, simulate

BOTH_MODELS = [CommunicationModel.OVERLAP, CommunicationModel.NO_OVERLAP]


def test_sim_agreement_sweep(benchmark, report):
    """Max relative deviation simulator-vs-formula over a 20-instance sweep
    (both models)."""
    cases = []
    for seed in range(10):
        for model in BOTH_MODELS:
            problem = small_random_problem(
                seed, model=model, stage_range=(1, 4)
            )
            mapping = exact_minimize(problem, Criterion.PERIOD).mapping
            cases.append((problem, mapping, model))

    def sweep():
        worst_t, worst_l = 0.0, 0.0
        for problem, mapping, model in cases:
            result = simulate(
                problem.apps, problem.platform, mapping, 150, model=model
            )
            for a in mapping.applications:
                t_ana = application_period(
                    problem.apps, problem.platform, mapping, a, model
                )
                l_ana = application_latency(
                    problem.apps, problem.platform, mapping, a
                )
                if t_ana > 0:
                    worst_t = max(
                        worst_t,
                        abs(result.measured_period(a) - t_ana) / t_ana,
                    )
                if l_ana > 0:
                    worst_l = max(
                        worst_l,
                        abs(result.measured_latency(a) - l_ana) / l_ana,
                    )
        return worst_t, worst_l

    worst_t, worst_l = benchmark(sweep)
    report(
        "SIM: simulator vs Equations (3)/(4)/(5) over 20 random mapped "
        "instances x both models",
        render_table(
            ["metric", "max relative error"],
            [("period (Eq. 3/4)", worst_t), ("latency (Eq. 5)", worst_l)],
        ),
    )
    assert worst_t < 1e-9
    assert worst_l < 1e-9


def test_sim_throughput(benchmark, report):
    """Raw simulator speed on the Figure 1 instance (activities/second)."""
    from repro.paper import (
        figure1_applications,
        figure1_platform,
        mapping_optimal_period,
    )

    apps = figure1_applications()
    platform = figure1_platform()
    mapping = mapping_optimal_period()
    n = 2000

    result = benchmark(lambda: simulate(apps, platform, mapping, n))
    activities = n * (3 + 5)
    report(
        "SIM: simulator scale (Figure 1 instance)",
        render_table(
            ["data sets", "activities simulated"], [(n, activities)]
        ),
    )
    assert result.n_datasets == n


def test_sim_bottleneck_utilization(benchmark, report):
    """The paper's 'no idle time' argument for the period-1 mapping:
    every cycle-time-1 processor is fully utilized in steady state."""
    from repro.paper import (
        figure1_applications,
        figure1_platform,
        mapping_optimal_period,
    )

    apps = figure1_applications()
    platform = figure1_platform()
    mapping = mapping_optimal_period()

    def run():
        result = simulate(
            apps, platform, mapping, 500, keep_trace=True
        )
        return resource_utilization(result.trace)

    util = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = sorted(
        (str(res), u) for res, u in util.items() if res[0] == "cpu"
    )
    report(
        "SIM: processor utilization under the period-optimal mapping "
        "(paper: 'no idle time on computation')",
        render_table(["cpu", "utilization"], rows),
    )
    for _, u in rows:
        assert u > 0.95


def test_sim_jitter_robustness(benchmark, report):
    """Beyond the paper: duration jitter degrades the measured period
    smoothly (5-20% noise => bounded period inflation), something the
    analytic model cannot express."""
    from repro.paper import (
        figure1_applications,
        figure1_platform,
        mapping_optimal_period,
    )

    apps = figure1_applications()
    platform = figure1_platform()
    mapping = mapping_optimal_period()
    clean = simulate(apps, platform, mapping, 400)

    def sweep():
        out = []
        for jitter in (0.05, 0.1, 0.2):
            noisy = simulate(
                apps, platform, mapping, 400, jitter=jitter, seed=11
            )
            worst = max(
                noisy.measured_period(a) / clean.measured_period(a)
                for a in mapping.applications
            )
            out.append((jitter, worst))
        return out

    curve = benchmark(sweep)
    report(
        "SIM: period inflation under activity-duration jitter",
        render_table(["jitter", "worst period ratio"], curve),
    )
    for jitter, ratio in curve:
        assert 0.9 <= ratio <= 1.0 + 3 * jitter
