"""Campaign-engine benchmark: cold run vs cache-resumed rerun.

Run as a script to (re)record the performance baseline::

    PYTHONPATH=src python benchmarks/bench_campaign.py [output.json]

It writes ``BENCH_campaign.json`` next to this file with:

* ``cold_run_s`` -- wall-clock of a full campaign (2 platform classes x
  2 communication models x seeds, 2 solver configurations) on an empty
  cache;
* ``warm_run_s`` -- wall-clock of the identical rerun, which must be
  served entirely from the content-addressed results cache;
* ``resume_run_s`` -- wall-clock after deleting half the cache entries,
  measuring the partial-recompute path interrupted campaigns take;
* ``warm_speedup`` -- ``cold / warm``; the acceptance bar (asserted when
  run as a script) is a warm rerun with **zero** re-solves and >= 5x
  speedup.
"""

from __future__ import annotations

import json
import platform as _platform
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments import ResultsCache, load_spec, run_campaign

SPEC = {
    "name": "bench-campaign",
    "scenarios": {
        "platforms": ["fully-homogeneous", "comm-homogeneous"],
        "models": ["overlap", "no-overlap"],
        "rules": ["interval"],
        "apps": [2],
        "modes": [2],
        "seeds": 8,
    },
    "solvers": [
        {"name": "registry", "objective": "period"},
        {"name": "greedy", "objective": "period", "method": "heuristic"},
    ],
}


def run(output: Path) -> dict:
    spec = load_spec(SPEC)
    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        cold = run_campaign(spec, tmp)
        cold_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = run_campaign(spec, tmp)
        warm_s = time.perf_counter() - t0

        # Simulate an interrupted campaign: drop half the entries.
        cache = ResultsCache(tmp)
        keys = list(cache.keys())
        for key in keys[: len(keys) // 2]:
            cache.path(key).unlink()
        t0 = time.perf_counter()
        resumed = run_campaign(spec, tmp)
        resume_s = time.perf_counter() - t0

    payload = {
        "bench": "campaign",
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "n_cells": cold.n_cells,
        "cold_run_s": round(cold_s, 4),
        "warm_run_s": round(warm_s, 4),
        "resume_run_s": round(resume_s, 4),
        "warm_speedup": round(cold_s / warm_s, 2) if warm_s > 0 else None,
        "cold_solved": cold.n_solved,
        "warm_solved": warm.n_solved,
        "resume_solved": resumed.n_solved,
        "resume_cached": resumed.n_cached,
    }
    output.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))
    return payload


def main() -> int:
    output = (
        Path(sys.argv[1])
        if len(sys.argv) > 1
        else Path(__file__).parent / "BENCH_campaign.json"
    )
    payload = run(output)
    assert payload["warm_solved"] == 0, "warm rerun must be pure cache hits"
    assert payload["resume_solved"] == payload["n_cells"] - payload["resume_cached"], (
        "resume must recompute exactly the missing cells"
    )
    assert payload["warm_speedup"] and payload["warm_speedup"] >= 5, (
        f"warm rerun speedup {payload['warm_speedup']} below 5x"
    )
    print(f"ok: warm rerun {payload['warm_speedup']}x faster, zero re-solves")
    return 0


if __name__ == "__main__":
    sys.exit(main())
