"""Experiment T2.PL -- Table 2, row "Period/Latency".

Paper claims: polynomial on fully homogeneous platforms (Theorem 14 for
one-to-one, Theorems 15-16 for interval: minimize latency under a period
bound by dynamic programming, the dual by binary search, multi-application
via Algorithm 2), NP-complete everywhere else (Theorem 17).

Reproduced by: optimality of both DP directions against the exact solver;
the latency-vs-period trade-off curve of a representative instance (the
curve the DP sweeps); and the exact-vs-heuristic contrast on the
``special-app`` hard cell.
"""

import math
import time

import numpy as np
import pytest

from repro import (
    Criterion,
    Platform,
    ProblemInstance,
    Thresholds,
)
from repro.algorithms import (
    minimize_latency_given_period,
    minimize_period_given_latency,
    minimize_period_interval,
)
from repro.algorithms.exact import exact_minimize
from repro.algorithms.heuristics import greedy_interval_period, hill_climb
from repro.analysis import fit_power_law, render_table
from repro.generators import (
    random_applications,
    rng_from,
    special_app_family,
)


def make_problem(seed, n_apps=2, stages=3, n_procs=5):
    rng = rng_from(seed)
    apps = random_applications(rng, n_apps, stage_range=(stages, stages))
    platform = Platform.fully_homogeneous(
        n_procs, speeds=[2.0], bandwidth=1.5
    )
    return ProblemInstance(apps=apps, platform=platform)


def test_t2pl_latency_given_period_optimality(benchmark, report):
    problems = []
    bounds = []
    for seed in range(6):
        p = make_problem(seed)
        base = minimize_period_interval(p).objective
        problems.append(p)
        bounds.append(base * 1.5)

    def solve_batch():
        return [
            minimize_latency_given_period(p, Thresholds(period=b)).objective
            for p, b in zip(problems, bounds)
        ]

    values = benchmark(solve_batch)
    rows = []
    for seed, (p, b, fast) in enumerate(zip(problems, bounds, values)):
        exact = exact_minimize(
            p, Criterion.LATENCY, Thresholds(period=b)
        ).objective
        rows.append((seed, b, fast, exact))
        assert fast == pytest.approx(exact)
    report(
        "T2.PL: Theorem 16 min latency under a period bound vs exact "
        "(paper: polynomial, dyn. prog.)",
        render_table(["seed", "period bound", "DP latency", "exact"], rows),
    )


def test_t2pl_period_given_latency_optimality(benchmark, report):
    from repro.algorithms import minimize_latency_interval

    problems, bounds = [], []
    for seed in range(5):
        p = make_problem(seed + 20)
        base = minimize_latency_interval(p).objective
        problems.append(p)
        bounds.append(base * 1.3)

    def solve_batch():
        return [
            minimize_period_given_latency(p, Thresholds(latency=b)).objective
            for p, b in zip(problems, bounds)
        ]

    values = benchmark(solve_batch)
    rows = []
    for seed, (p, b, fast) in enumerate(zip(problems, bounds, values)):
        exact = exact_minimize(
            p, Criterion.PERIOD, Thresholds(latency=b)
        ).objective
        rows.append((seed, b, fast, exact))
        assert fast == pytest.approx(exact)
    report(
        "T2.PL: Theorem 16 min period under a latency bound vs exact "
        "(paper: polynomial, binary search over the DP)",
        render_table(["seed", "latency bound", "DP period", "exact"], rows),
    )


def test_t2pl_tradeoff_curve(benchmark, report):
    """The latency/period trade-off the DP navigates: tighter period bounds
    force more intervals and hence more communication, raising latency."""
    problem = make_problem(42, n_apps=1, stages=6, n_procs=6)
    base = minimize_period_interval(problem).objective
    factors = [1.0, 1.25, 1.5, 2.0, 3.0, 5.0]

    def sweep():
        out = []
        for f in factors:
            s = minimize_latency_given_period(
                problem, Thresholds(period=base * f)
            )
            out.append(
                (f, base * f, s.objective, len(s.mapping.assignments))
            )
        return out

    curve = benchmark(sweep)
    report(
        "T2.PL: latency vs period-bound trade-off (tight period bound -> "
        "more intervals -> higher latency)",
        render_table(
            ["bound factor", "period bound", "min latency", "intervals"],
            curve,
        ),
    )
    latencies = [l for _, _, l, _ in curve]
    assert all(a >= b - 1e-9 for a, b in zip(latencies, latencies[1:]))
    # The tightest bound needs at least as many intervals as the loosest.
    assert curve[0][3] >= curve[-1][3]


def test_t2pl_scaling(benchmark, report):
    sizes = [4, 8, 16, 32]
    samples, rows = [], []
    for n in sizes:
        problem = make_problem(7, n_apps=2, stages=n, n_procs=n)
        base = minimize_period_interval(problem).objective
        t0 = time.perf_counter()
        minimize_latency_given_period(problem, Thresholds(period=base * 1.5))
        elapsed = time.perf_counter() - t0
        samples.append((2 * n, elapsed))
        rows.append((2 * n, n, elapsed * 1e3))
    fit = fit_power_law([s for s, _ in samples], [t for _, t in samples])
    rows.append(("fit", "-", f"t ~ N^{fit.exponent:.2f}"))
    report(
        "T2.PL: Theorem 15/16 DP runtime scaling (paper: O((np)^2))",
        render_table(["N stages", "p procs", "time (ms)"], rows),
    )
    assert fit.exponent < 5.0
    problem = make_problem(7, n_apps=2, stages=8, n_procs=8)
    base = minimize_period_interval(problem).objective
    benchmark(
        lambda: minimize_latency_given_period(
            problem, Thresholds(period=base * 1.5)
        )
    )


def test_t2pl_hard_cell_contrast(benchmark, report):
    """Theorem 17: the bi-criteria problem is NP-complete on special-app
    (heterogeneous processors); exact nodes grow, the heuristic holds."""
    rows = []
    for m in (2, 3):
        apps = special_app_family(m, 4)
        rng = rng_from(m)
        platform = Platform.comm_homogeneous(
            [[float(rng.uniform(1, 4))] for _ in range(3 * m)]
        )
        problem = ProblemInstance(apps=apps, platform=platform)
        latency_bound = max(
            app.total_work for app in apps
        )  # generous per the slowest reasonable mapping
        t0 = time.perf_counter()
        exact = exact_minimize(
            problem, Criterion.PERIOD, Thresholds(latency=latency_bound)
        )
        t_exact = time.perf_counter() - t0
        t0 = time.perf_counter()
        heur = hill_climb(
            problem,
            greedy_interval_period(problem).mapping,
            Criterion.PERIOD,
            Thresholds(latency=latency_bound),
        )
        t_heur = time.perf_counter() - t0
        rows.append(
            (
                m,
                int(exact.stats["nodes"]),
                t_exact * 1e3,
                t_heur * 1e3,
                heur.objective / exact.objective,
            )
        )
    report(
        "T2.PL: bi-criteria on special-app (paper: NP-complete, Thm 17) -- "
        "exact nodes vs heuristic quality",
        render_table(
            ["m apps", "B&B nodes", "exact (ms)", "heuristic (ms)", "heur/opt"],
            rows,
        ),
    )
    assert rows[-1][1] > rows[0][1]
    problem = ProblemInstance(
        apps=special_app_family(2, 4),
        platform=Platform.comm_homogeneous([[1.0], [2.0], [3.0], [1.5], [2.5], [0.5]]),
    )
    benchmark.pedantic(
        lambda: exact_minimize(problem, Criterion.PERIOD),
        rounds=1,
        iterations=1,
    )
