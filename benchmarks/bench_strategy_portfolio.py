"""Strategy-portfolio benchmark: racing beats every single heuristic.

Run as a script to (re)record the performance baseline::

    PYTHONPATH=src python benchmarks/bench_strategy_portfolio.py [output.json] [--tiny]

It solves a mixed NP-hard campaign grid (heterogeneous platform cells,
where Tables 1-2 offer no polynomial algorithm) with each atomic
heuristic — ``greedy``, ``local_search``, ``annealing`` — and with the
composite ``portfolio(greedy,local_search,annealing)``, every solve
under the *same* per-solve budget (wall-clock deadline + evaluation cap,
seeded so the run is reproducible).  It writes ``BENCH_strategies.json``
next to this file with, per strategy: the geometric-mean period
objective, win counts, metered evaluations, budget-exhaustion counts and
mean wall time.

The acceptance bar (asserted when run as a script) is that the
portfolio's geomean objective is no worse than the best single member's
— i.e. racing under a split budget still dominates committing to any one
heuristic — and strictly better on at least one instance.

``--tiny`` shrinks the grid and budget for the CI smoke job.
"""

from __future__ import annotations

import json
import math
import platform as _platform
import sys
import time
from pathlib import Path

from repro.core.types import MappingRule, PlatformClass
from repro.generators import small_random_problem
from repro.service import solve_batch
from repro.strategies import SolveBudget

MEMBERS = ("greedy", "local_search", "annealing")
PORTFOLIO = f"portfolio({','.join(MEMBERS)})"


def build_grid(tiny: bool):
    """Mixed NP-hard instances: heterogeneous cells under both rules."""
    seeds = range(4) if tiny else range(12)
    combos = [
        (PlatformClass.FULLY_HETEROGENEOUS, MappingRule.INTERVAL),
        (PlatformClass.COMM_HOMOGENEOUS, MappingRule.INTERVAL),
        (PlatformClass.FULLY_HETEROGENEOUS, MappingRule.ONE_TO_ONE),
    ]
    problems = []
    for seed in seeds:
        for platform_class, rule in combos:
            problems.append(
                small_random_problem(
                    seed,
                    platform_class=platform_class,
                    rule=rule,
                    n_apps=2,
                    n_modes=2,
                )
            )
    return problems


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run(output: Path, tiny: bool = False) -> dict:
    problems = build_grid(tiny)
    # The evaluation cap binds first (reproducible results even on slow
    # CI machines); the wall-clock deadline is the safety net that keeps
    # any one solve from stalling the bench.
    budget = SolveBudget(
        time_limit=5.0 if tiny else 10.0,
        max_evaluations=2000 if tiny else 6000,
        seed=0,
    )
    per_strategy = {}
    objectives = {}
    for spec in (*MEMBERS, PORTFOLIO):
        t0 = time.perf_counter()
        batch = solve_batch(
            problems, objective="period", strategy=spec, budget=budget
        )
        wall = time.perf_counter() - t0
        assert batch.n_ok == len(problems), (
            f"{spec}: {batch.n_failed} failures on the bench grid"
        )
        objectives[spec] = [item.objective for item in batch.items]
        telemetries = [item.telemetry for item in batch.items]
        per_strategy[spec] = {
            "geomean_period": round(geomean(objectives[spec]), 6),
            "mean_ms": round(wall / len(problems) * 1000, 3),
            "evaluations": sum(t.evaluations for t in telemetries),
            "budget_exhausted": sum(
                1 for t in telemetries if t.budget_exhausted
            ),
        }

    best_member = min(MEMBERS, key=lambda s: per_strategy[s]["geomean_period"])
    wins = {
        spec: sum(
            1
            for i, value in enumerate(objectives[spec])
            if value
            <= min(objectives[other][i] for other in (*MEMBERS, PORTFOLIO))
            * (1 + 1e-12)
        )
        for spec in (*MEMBERS, PORTFOLIO)
    }
    strict_improvements = sum(
        1
        for i in range(len(problems))
        if objectives[PORTFOLIO][i]
        < objectives[best_member][i] * (1 - 1e-12)
    )
    payload = {
        "bench": "strategy-portfolio",
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "tiny": tiny,
        "n_instances": len(problems),
        "budget": budget.to_dict(),
        "strategies": per_strategy,
        "wins": wins,
        "best_single_member": best_member,
        "best_single_geomean": per_strategy[best_member]["geomean_period"],
        "portfolio_geomean": per_strategy[PORTFOLIO]["geomean_period"],
        "portfolio_improvement_pct": round(
            (
                1
                - per_strategy[PORTFOLIO]["geomean_period"]
                / per_strategy[best_member]["geomean_period"]
            )
            * 100,
            3,
        ),
        "strict_improvements": strict_improvements,
    }
    output.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))
    return payload


def main() -> int:
    argv = [a for a in sys.argv[1:]]
    tiny = "--tiny" in argv
    argv = [a for a in argv if a != "--tiny"]
    output = (
        Path(argv[0])
        if argv
        else Path(__file__).parent / "BENCH_strategies.json"
    )
    payload = run(output, tiny=tiny)
    assert payload["portfolio_geomean"] <= payload["best_single_geomean"] * (
        1 + 1e-9
    ), (
        f"portfolio geomean {payload['portfolio_geomean']} worse than best "
        f"single member {payload['best_single_member']} "
        f"({payload['best_single_geomean']})"
    )
    assert payload["strict_improvements"] >= 1, (
        "portfolio never strictly beat the best single member"
    )
    print(
        f"ok: portfolio geomean {payload['portfolio_geomean']} vs best "
        f"single ({payload['best_single_member']}) "
        f"{payload['best_single_geomean']} "
        f"({payload['portfolio_improvement_pct']}% better, "
        f"{payload['strict_improvements']} strict per-instance wins)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
