"""Experiments ABL1 / ABL2 -- design-choice ablations named in DESIGN.md.

ABL1 (Section 3.2): the overlap vs no-overlap communication models.  The
paper proves every result for both; the ablation quantifies how much the
serialized model actually costs across instance families (the gap vanishes
when communications are negligible and approaches 3x when the three
activity times are balanced).

ABL2 (Section 3.4): the objective weights ``W_a``.  The same instance is
solved with plain max (W=1), a priority ratio, and max-stretch weights
(``W_a = 1/T*_a``); the ablation shows how the Algorithm 2 processor
allocation shifts.
"""

import math

import pytest

from repro import (
    Application,
    CommunicationModel,
    Criterion,
    Platform,
    ProblemInstance,
)
from repro.algorithms import minimize_period_interval
from repro.algorithms.exact import exact_minimize
from repro.analysis import render_table
from repro.core.objectives import stretch_weights, with_weights
from repro.generators import random_applications, rng_from

OVERLAP = CommunicationModel.OVERLAP
NO_OVERLAP = CommunicationModel.NO_OVERLAP


def test_abl1_overlap_vs_no_overlap(benchmark, report):
    """Optimal-period gap between the two models across three families."""
    families = {
        "compute-bound (data ~ 0)": dict(data_range=(0.0, 0.2)),
        "balanced": dict(data_range=(2.0, 6.0)),
        "comm-bound (data >> work)": dict(
            data_range=(10.0, 20.0), work_range=(0.5, 2.0)
        ),
    }

    def sweep():
        out = []
        for name, kwargs in families.items():
            ratios = []
            for seed in range(4):
                rng = rng_from(seed)
                apps = random_applications(
                    rng, 2, stage_range=(2, 3), **kwargs
                )
                platform = Platform.fully_homogeneous(
                    5, speeds=[2.0], bandwidth=1.5
                )
                t_o = minimize_period_interval(
                    ProblemInstance(apps=apps, platform=platform, model=OVERLAP)
                ).objective
                t_n = minimize_period_interval(
                    ProblemInstance(
                        apps=apps, platform=platform, model=NO_OVERLAP
                    )
                ).objective
                ratios.append(t_n / t_o)
            out.append((name, min(ratios), sum(ratios) / len(ratios), max(ratios)))
        return out

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ABL1: no-overlap / overlap optimal-period ratio by workload family "
        "(1 <= ratio <= 3 by construction of Eqs. (3)-(4))",
        render_table(["family", "min", "mean", "max"], table),
    )
    for name, lo, mean, hi in table:
        assert lo >= 1.0 - 1e-9
        assert hi <= 3.0 + 1e-9
    # Compute-bound workloads are model-insensitive; comm-bound are not.
    by_name = {row[0]: row[2] for row in table}
    assert (
        by_name["compute-bound (data ~ 0)"]
        <= by_name["comm-bound (data >> work)"] + 1e-9
    )


def test_abl2_objective_weights(benchmark, report):
    """Weight schemes reallocate processors (Equation (6))."""
    # One heavy and one light application on a tight platform.
    heavy = Application.from_lists(
        [8, 8, 8, 8], [1, 1, 1, 1], input_data_size=1, name="heavy"
    )
    light = Application.from_lists([2, 2], [1, 1], name="light")
    platform = Platform.fully_homogeneous(6, speeds=[2.0], bandwidth=2.0)

    def solve_with(weights, label):
        apps = with_weights((heavy, light), weights)
        problem = ProblemInstance(apps=apps, platform=platform)
        s = minimize_period_interval(problem)
        counts = {
            a: len(s.mapping.for_app(a)) for a in s.mapping.applications
        }
        return (
            label,
            f"{weights[0]:.3g}/{weights[1]:.3g}",
            counts[0],
            counts[1],
            s.values.periods[0],
            s.values.periods[1],
        )

    def sweep():
        rows = [solve_with((1.0, 1.0), "plain max")]
        rows.append(solve_with((1.0, 8.0), "priority on light"))
        # Max-stretch: weights from solo optima.
        solo = []
        for app in (heavy, light):
            p = ProblemInstance(apps=(app,), platform=platform)
            solo.append(minimize_period_interval(p).objective)
        rows.append(solve_with(stretch_weights(solo), "max-stretch"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "ABL2: processor allocation under the three weight schemes of "
        "Section 3.4 (plain max / priority / max-stretch)",
        render_table(
            ["scheme", "W_heavy/W_light", "procs heavy", "procs light",
             "T_heavy", "T_light"],
            rows,
        ),
    )
    plain, priority = rows[0], rows[1]
    # Plain max funnels processors to the heavy app; prioritizing the light
    # app must strictly shift allocation towards it.
    assert plain[2] > plain[3]
    assert priority[3] >= plain[3]


def test_abl2_weighted_optimum_consistency(benchmark, report):
    """Algorithm 2 with weights still matches the exact solver (spot check
    of Equation (6)'s plumbing end to end)."""
    rng = rng_from(17)
    apps = random_applications(
        rng, 2, stage_range=(2, 3), weights=[1.0, 3.0]
    )
    platform = Platform.fully_homogeneous(5, speeds=[2.0])
    problem = ProblemInstance(apps=apps, platform=platform)

    fast = benchmark(lambda: minimize_period_interval(problem))
    exact = exact_minimize(problem, Criterion.PERIOD)
    report(
        "ABL2: weighted optimum, Algorithm 2 vs exact",
        render_table(
            ["algorithm 2", "exact"], [(fast.objective, exact.objective)]
        ),
    )
    assert fast.objective == pytest.approx(exact.objective)
