"""Experiment FIG1 -- the Section 2 motivating example (Figure 1).

Regenerates, number for number, everything the paper reports about the
example: the optimal period 1 (Equation (1)) with the per-processor
cycle-times all equal to 1, the optimal latency 2.75 (Equation (2)), the
minimal energy 10 (at the paper's mapping of period 14), the period-2
compromise at energy 46, and the 136 energy of the period-optimal mapping.
Every number is *discovered* by the exact solver, not just evaluated.

Also records the one deviation found: at the energy-10 budget the paper's
stated mapping (period 14) is not period-optimal -- swapping the two
applications achieves period 6 at the same energy (see EXPERIMENTS.md).
"""

import pytest

from repro import Criterion, Thresholds, evaluate
from repro.algorithms.exact import exact_minimize
from repro.analysis import render_table
from repro.core.evaluation import interval_costs
from repro.core.types import CommunicationModel
from repro.paper import (
    FIGURE1_EXPECTED,
    figure1_applications,
    figure1_platform,
    figure1_problem,
    mapping_compromise_energy_46,
    mapping_min_energy,
    mapping_optimal_latency,
    mapping_optimal_period,
)


def test_fig1_worked_mappings(benchmark, report):
    """Evaluate the four worked mappings (benchmarks the evaluator)."""
    apps = figure1_applications()
    platform = figure1_platform()
    mappings = {
        "optimal period (Eq. 1)": mapping_optimal_period(),
        "optimal latency (Eq. 2)": mapping_optimal_latency(),
        "minimal energy": mapping_min_energy(),
        "compromise (T <= 2)": mapping_compromise_energy_46(),
    }

    def evaluate_all():
        return {
            name: evaluate(apps, platform, m) for name, m in mappings.items()
        }

    values = benchmark(evaluate_all)
    rows = [
        (name, v.period, v.latency, v.energy) for name, v in values.items()
    ]
    report(
        "FIG1: Section 2 worked mappings (paper: T=1/E=136, L=2.75, "
        "E=10/T=14, T=2/E=46)",
        render_table(["mapping", "period", "latency", "energy"], rows),
    )
    assert values["optimal period (Eq. 1)"].period == pytest.approx(1.0)
    assert values["optimal period (Eq. 1)"].energy == pytest.approx(136.0)
    assert values["optimal latency (Eq. 2)"].latency == pytest.approx(2.75)
    assert values["minimal energy"].energy == pytest.approx(10.0)
    assert values["minimal energy"].period == pytest.approx(14.0)
    assert values["compromise (T <= 2)"].period == pytest.approx(2.0)
    assert values["compromise (T <= 2)"].energy == pytest.approx(46.0)


def test_fig1_optima_discovered(benchmark, report):
    """The exact solver rediscovers every reported optimum."""
    problem = figure1_problem()

    def solve_all():
        return {
            "min period": exact_minimize(problem, Criterion.PERIOD).objective,
            "min latency": exact_minimize(
                problem, Criterion.LATENCY
            ).objective,
            "min energy": exact_minimize(problem, Criterion.ENERGY).objective,
            "min energy | T<=2": exact_minimize(
                problem, Criterion.ENERGY, Thresholds(period=2.0)
            ).objective,
            "min energy | T<=1": exact_minimize(
                problem, Criterion.ENERGY, Thresholds(period=1.0)
            ).objective,
            "min period | E<=10": exact_minimize(
                problem,
                Criterion.PERIOD,
                Thresholds(energy=10.0),
                fix_max_speed=False,
            ).objective,
        }

    found = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    rows = [
        ("min period", 1.0, found["min period"]),
        ("min latency", 2.75, found["min latency"]),
        ("min energy", 10.0, found["min energy"]),
        ("min energy | period<=2", 46.0, found["min energy | T<=2"]),
        ("min energy | period<=1", 136.0, found["min energy | T<=1"]),
        (
            "min period | energy<=10",
            "14 (paper's mapping; not optimal)",
            found["min period | E<=10"],
        ),
    ]
    report(
        "FIG1: optima rediscovered by the exact solver",
        render_table(["problem", "paper", "measured"], rows),
    )
    assert found["min period"] == pytest.approx(1.0)
    assert found["min latency"] == pytest.approx(2.75)
    assert found["min energy"] == pytest.approx(10.0)
    assert found["min energy | T<=2"] == pytest.approx(46.0)
    assert found["min energy | T<=1"] == pytest.approx(136.0)
    # The documented deviation: 6 < the paper's 14.
    assert found["min period | E<=10"] == pytest.approx(6.0)


def test_fig1_equation1_cycle_times(benchmark, report):
    """Equation (1)'s inner terms: every processor's cycle-time is 1."""
    apps = figure1_applications()
    platform = figure1_platform()
    mapping = mapping_optimal_period()

    costs = benchmark(lambda: interval_costs(apps, platform, mapping))
    rows = [
        (
            apps[c.app].name,
            f"[{c.interval[0] + 1}, {c.interval[1] + 1}]",
            platform.processor(c.proc).name,
            c.t_in,
            c.t_comp,
            c.t_out,
            c.cycle_time(CommunicationModel.OVERLAP),
        )
        for c in costs
    ]
    report(
        "FIG1: Equation (1) cycle-time decomposition (all cycles = 1, "
        "'no idle time on computation')",
        render_table(
            ["app", "stages", "proc", "t_in", "t_comp", "t_out", "cycle"],
            rows,
        ),
    )
    for c in costs:
        assert c.cycle_time(CommunicationModel.OVERLAP) == pytest.approx(1.0)
