"""Observability overhead benchmark: tracing + histograms vs disabled.

Run as a script to (re)record the performance baseline::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py [output.json] [--tiny]

Two workloads, each measured with observability fully active (span
recording enabled, a live trace on every request) and fully disabled
(the ``REPRO_OBS=0`` kill-switch path, untraced client):

* ``server`` -- warm-cache throughput of the in-process daemon, the
  regime where per-request obs cost is largest relative to useful work
  (no solver time to hide behind: every job is a cache hit);
* ``hill_climb`` -- a single-process batched hill-climb solve inside an
  active trace, exercising the engine's phase accumulation
  (``collect``/``track``) on the hot path.

Each configuration is repeated and the **minimum** wall-clock is kept
(interleaved runs, so machine drift hits both configurations equally);
overhead is ``(t_on - t_off) / t_off``.

Asserted when run as a script:

* tracing + histograms add **<= 3%** to warm server throughput and
  **<= 2%** to the batched hill-climb solve (``--tiny`` relaxes both
  bars to 10% -- the smoke grid is too small to resolve single-digit
  percentages above scheduler noise);
* disabling obs restores the baseline: with recording enabled but *no
  active trace* the hill-climb must sit within the same bar of the
  disabled configuration (the idle fast path is one ContextVar read);
* both configurations return byte-identical solutions.
"""

from __future__ import annotations

import json
import platform as _platform
import sys
import tempfile
import time
from pathlib import Path

from repro.algorithms.heuristics import greedy_interval_period, hill_climb
from repro.client import SolveClient
from repro.core.types import Criterion
from repro.generators import small_random_problem
from repro.obs import spans as obs_spans
from repro.server import ServerThread
from repro.strategies import SolveBudget

from bench_neighborhood import build_instance


def _min_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        best = min(best, fn())
    return best


def bench_server(*, tiny: bool) -> dict:
    """Warm-cache daemon throughput, obs on vs off (min over repeats)."""
    n_jobs = 8 if tiny else 40
    repeats = 3 if tiny else 5
    problems = [small_random_problem(7100 + i) for i in range(n_jobs)]
    solver_kwargs = dict(
        strategy="greedy",
        budget=SolveBudget(max_evaluations=500_000, seed=0),
    )

    with tempfile.TemporaryDirectory(prefix="bench-obs-cache-") as tmp:
        with ServerThread(
            executor="thread", concurrency=2, cache=tmp
        ) as server:
            traced = SolveClient(server.url, timeout=60.0, tracing=True)
            untraced = SolveClient(server.url, timeout=60.0, tracing=False)

            # Cold pass populates the cache; warm passes are what we time.
            ids = traced.submit_many(problems, **solver_kwargs)
            assert all(r.ok for r in traced.iter_results(ids, timeout=600))

            def warm_pass(client) -> float:
                t0 = time.perf_counter()
                ids = client.submit_many(problems, **solver_kwargs)
                results = list(client.iter_results(ids, timeout=600))
                elapsed = time.perf_counter() - t0
                assert all(r.source == "cache" for r in results)
                return elapsed

            def on() -> float:
                obs_spans.configure(enabled=True)
                return warm_pass(traced)

            def off() -> float:
                obs_spans.configure(enabled=False)
                try:
                    return warm_pass(untraced)
                finally:
                    obs_spans.configure(enabled=True)

            # Interleave so drift hits both configurations equally.
            t_on, t_off = float("inf"), float("inf")
            for _ in range(repeats):
                t_on = min(t_on, on())
                t_off = min(t_off, off())

    return {
        "n_jobs": n_jobs,
        "repeats": repeats,
        "warm_s_obs_on": round(t_on, 4),
        "warm_s_obs_off": round(t_off, 4),
        "warm_jobs_per_sec_obs_on": round(n_jobs / t_on, 2),
        "warm_jobs_per_sec_obs_off": round(n_jobs / t_off, 2),
        "overhead_pct": round(100.0 * (t_on - t_off) / t_off, 2),
    }


def bench_hill_climb(*, tiny: bool) -> dict:
    """One batched hill-climb solve: traced vs untraced vs disabled."""
    repeats = 8 if tiny else 12
    max_iterations = 8
    problem = build_instance(0, tiny=tiny)
    start = greedy_interval_period(problem).mapping
    problem.evaluation_context()  # build once, outside the clock

    def solve():
        return hill_climb(
            problem,
            start,
            Criterion.PERIOD,
            max_iterations=max_iterations,
            engine="batched",
        )

    solutions = {}

    def timed(config: str) -> float:
        t0 = time.perf_counter()
        solution = solve()
        elapsed = time.perf_counter() - t0
        solutions.setdefault(config, solution)
        return elapsed

    def disabled() -> float:
        obs_spans.configure(enabled=False)
        try:
            return timed("disabled")
        finally:
            obs_spans.configure(enabled=True)

    def enabled_idle() -> float:
        # Recording on but no ambient trace: the instrumentation's
        # steady-state cost for untraced work.
        return timed("enabled_idle")

    def enabled_traced() -> float:
        with obs_spans.trace_context(obs_spans.new_trace_id()):
            try:
                return timed("enabled_traced")
            finally:
                obs_spans.recorder().clear()

    for fn in (disabled, enabled_idle, enabled_traced):  # warm the paths
        fn()
    t = {"disabled": float("inf"), "enabled_idle": float("inf"),
         "enabled_traced": float("inf")}
    for _ in range(repeats):
        t["disabled"] = min(t["disabled"], disabled())
        t["enabled_idle"] = min(t["enabled_idle"], enabled_idle())
        t["enabled_traced"] = min(t["enabled_traced"], enabled_traced())

    base = t["disabled"]
    sols = list(solutions.values())
    identical = all(
        s.mapping == sols[0].mapping and s.objective == sols[0].objective
        for s in sols
    )
    return {
        "repeats": repeats,
        "max_iterations": max_iterations,
        "n_stages": problem.n_stages_total,
        "solve_s_disabled": round(t["disabled"], 6),
        "solve_s_enabled_idle": round(t["enabled_idle"], 6),
        "solve_s_enabled_traced": round(t["enabled_traced"], 6),
        "overhead_pct_traced": round(
            100.0 * (t["enabled_traced"] - base) / base, 2
        ),
        "overhead_pct_idle": round(
            100.0 * (t["enabled_idle"] - base) / base, 2
        ),
        "solutions_identical": identical,
    }


def run(output: Path, *, tiny: bool = False) -> dict:
    payload = {
        "bench": "obs_overhead",
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "tiny": tiny,
        "server": bench_server(tiny=tiny),
        "hill_climb": bench_hill_climb(tiny=tiny),
    }
    output.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))
    return payload


def main() -> int:
    argv = [a for a in sys.argv[1:]]
    tiny = "--tiny" in argv
    argv = [a for a in argv if a != "--tiny"]
    output = (
        Path(argv[0])
        if argv
        else Path(__file__).parent / "BENCH_obs.json"
    )
    payload = run(output, tiny=tiny)
    # The smoke grid cannot resolve single-digit percentages above
    # scheduler noise; relax to a sanity bar there.
    server_bar = 10.0 if tiny else 3.0
    climb_bar = 10.0 if tiny else 2.0
    server = payload["server"]
    climb = payload["hill_climb"]
    assert climb["solutions_identical"], (
        "observability must not change solver results"
    )
    assert server["overhead_pct"] <= server_bar, (
        f"tracing adds {server['overhead_pct']}% to warm server "
        f"throughput (bar: {server_bar}%)"
    )
    assert climb["overhead_pct_traced"] <= climb_bar, (
        f"tracing adds {climb['overhead_pct_traced']}% to the batched "
        f"hill-climb (bar: {climb_bar}%)"
    )
    assert climb["overhead_pct_idle"] <= climb_bar, (
        f"disabled-trace instrumentation adds {climb['overhead_pct_idle']}% "
        f"(bar: {climb_bar}%): the idle fast path must restore the baseline"
    )
    print(
        f"ok: server warm overhead {server['overhead_pct']}%, "
        f"hill-climb traced overhead {climb['overhead_pct_traced']}%, "
        f"idle overhead {climb['overhead_pct_idle']}%"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
