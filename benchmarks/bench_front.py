"""Anytime front engine benchmark: hypervolume vs wall-clock against the
sequential exact sweep.

Run as a script to (re)record the performance baseline::

    PYTHONPATH=src python benchmarks/bench_front.py [output.json] [--tiny]

Over a mixed grid of NP-hard (interval rule on a communication-homogeneous
platform, Table 2) energy/period instances it measures, per instance:

* ``sequential_s`` -- wall-clock of :func:`period_energy_front_exact`,
  the offline baseline that solves every threshold cell in ascending
  order with no work sharing;
* ``anytime_s`` -- wall-clock of :func:`compute_front_anytime` over the
  *same* cells (bisection order + warm-started bounds);
* ``t90_s`` -- elapsed time at which the anytime engine's incremental
  front first reaches 90% of its final hypervolume (reference point
  fixed post-hoc from the final front's extremes, so the trajectory is
  comparable across runs);
* byte-identity -- the anytime front must equal the offline exact front
  exactly, instance by instance.

The asserted headline bars are **byte-identical fronts everywhere** and
``sum(t90) <= 0.5 * sum(sequential)``: the engine delivers >= 90% of the
final front quality in at most half the baseline wall-clock.

``--tiny`` shrinks the grid for CI smoke runs (same assertions).
"""

from __future__ import annotations

import json
import platform as _platform
import sys
import time
from pathlib import Path

from repro.analysis import compute_front_anytime, period_energy_front_exact
from repro.core.types import MappingRule, PlatformClass
from repro.generators import small_random_problem


def _np_hard_problem(seed: int, n_apps: int):
    """Interval mapping on a comm-homogeneous platform: NP-hard for
    energy minimisation under a period threshold (Table 2)."""
    return small_random_problem(
        seed,
        platform_class=PlatformClass.COMM_HOMOGENEOUS,
        rule=MappingRule.INTERVAL,
        n_apps=n_apps,
    )


def _bench_instance(seed: int, n_apps: int, max_points: int) -> dict:
    problem = _np_hard_problem(seed, n_apps)

    t0 = time.perf_counter()
    exact = period_energy_front_exact(problem, max_points=max_points)
    sequential_s = time.perf_counter() - t0

    result = compute_front_anytime(problem, max_points=max_points)
    identical = result.front == exact

    # Fixed post-hoc reference just beyond the final front's extremes, so
    # the whole trajectory is measured against one yardstick.
    hi_p = max(p for p, _ in result.front)
    hi_e = max(e for _, e in result.front)
    ref = (hi_p * 1.01 + 1e-9, hi_e * 1.01 + 1e-9)
    curve = result.hypervolume_trajectory(ref)
    final_hv = curve[-1][1]
    t90 = next(t for t, hv in curve if hv >= 0.9 * final_hv)

    return {
        "seed": seed,
        "n_apps": n_apps,
        "cells": result.n_cells,
        "warm_started": result.n_warm,
        "front_points": len(result.front),
        "identical": identical,
        "sequential_s": round(sequential_s, 4),
        "anytime_s": round(result.wall_time, 4),
        "t90_s": round(t90, 4),
        "t90_ratio": round(t90 / sequential_s, 4) if sequential_s else None,
    }


def run(output: Path, *, tiny: bool = False) -> dict:
    if tiny:
        grid = [(0, 2, 20), (1, 2, 20)]
    else:
        grid = [(0, 2, 40), (1, 2, 40), (2, 3, 30), (3, 3, 30)]

    instances = [
        _bench_instance(seed, n_apps, pts) for seed, n_apps, pts in grid
    ]
    seq_total = sum(r["sequential_s"] for r in instances)
    t90_total = sum(r["t90_s"] for r in instances)
    payload = {
        "bench": "front",
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "tiny": tiny,
        "n_instances": len(instances),
        "sequential_total_s": round(seq_total, 4),
        "anytime_total_s": round(
            sum(r["anytime_s"] for r in instances), 4
        ),
        "t90_total_s": round(t90_total, 4),
        "t90_over_sequential": round(t90_total / seq_total, 4),
        "all_identical": all(r["identical"] for r in instances),
        "warm_started_total": sum(r["warm_started"] for r in instances),
        "instances": instances,
    }
    output.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))
    return payload


def main() -> int:
    argv = [a for a in sys.argv[1:]]
    tiny = "--tiny" in argv
    argv = [a for a in argv if a != "--tiny"]
    output = (
        Path(argv[0])
        if argv
        else Path(__file__).parent / "BENCH_front.json"
    )
    payload = run(output, tiny=tiny)
    assert payload["all_identical"], (
        "anytime front diverged from the offline exact sweep"
    )
    assert payload["warm_started_total"] > 0, (
        "no cell was warm-started; the engine is not sharing work"
    )
    assert payload["t90_over_sequential"] <= 0.5, (
        f"90% of final hypervolume took "
        f"{payload['t90_over_sequential']:.0%} of the sequential "
        f"sweep's wall-clock (bar: 50%)"
    )
    print(
        f"ok: {payload['n_instances']} instances, 90% hypervolume in "
        f"{payload['t90_over_sequential']:.0%} of sequential wall-clock "
        f"({payload['t90_total_s']}s vs {payload['sequential_total_s']}s), "
        f"{payload['warm_started_total']} warm-started cells, "
        f"fronts byte-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
