"""Experiments T2.PE1 / T2.PE2 / T2.PE3 -- Table 2, rows "Period/Energy".

Paper claims:

* one-to-one: polynomial up to com-hom links via minimum weighted bipartite
  matching (Theorem 19) -- reproduced by optimality of the Hungarian-based
  solver against the exact solver, agreement between our from-scratch
  Hungarian and scipy's assignment solver, and a polynomial scaling fit;
* interval: polynomial on proc-hom via dynamic programming (Theorems 18,
  21) -- reproduced likewise;
* NP-complete beyond (Theorems 20, 22) -- exact-vs-heuristic contrast.

Also reproduces the energy-vs-period-bound trade-off curve (the "server
problem": least energy achieving a required throughput).
"""

import math
import time

import numpy as np
import pytest

from repro import (
    Criterion,
    EnergyModel,
    MappingRule,
    Platform,
    ProblemInstance,
    Thresholds,
)
from repro.algorithms import (
    minimize_energy_given_period_interval,
    minimize_energy_given_period_one_to_one,
    minimize_period_interval,
    minimize_period_one_to_one,
)
from repro.algorithms.energy_matching import build_cost_matrix
from repro.algorithms.exact import exact_minimize
from repro.algorithms.heuristics import greedy_interval_period, greedy_mode_downgrade
from repro.analysis import fit_power_law, render_table
from repro.generators import (
    dvfs_speed_ladder,
    random_applications,
    random_fully_heterogeneous_platform,
    rng_from,
)
from repro.matching import solve_assignment

EM = EnergyModel(alpha=2.0)


def one_to_one_problem(seed, stages=2, n_modes=3):
    rng = rng_from(seed)
    apps = random_applications(rng, 2, stage_range=(stages, stages))
    total = sum(a.n_stages for a in apps)
    speed_sets = [
        dvfs_speed_ladder(float(rng.uniform(1, 3)), n_modes)
        for _ in range(total + 1)
    ]
    platform = Platform.comm_homogeneous(speed_sets, bandwidth=2.0)
    return ProblemInstance(
        apps=apps,
        platform=platform,
        rule=MappingRule.ONE_TO_ONE,
        energy_model=EM,
    )


def interval_problem(seed, stages=3, n_modes=3):
    rng = rng_from(seed)
    apps = random_applications(rng, 2, stage_range=(stages, stages))
    platform = Platform.fully_homogeneous(
        5, speeds=dvfs_speed_ladder(1.5, n_modes), bandwidth=2.0
    )
    return ProblemInstance(apps=apps, platform=platform, energy_model=EM)


def test_t2pe1_matching_optimality(benchmark, report):
    problems, bounds = [], []
    for seed in range(6):
        p = one_to_one_problem(seed)
        base = minimize_period_one_to_one(p).objective
        problems.append(p)
        bounds.append(base * 1.5)

    def solve_batch():
        return [
            minimize_energy_given_period_one_to_one(
                p, Thresholds(period=b)
            ).objective
            for p, b in zip(problems, bounds)
        ]

    values = benchmark(solve_batch)
    rows = []
    for seed, (p, b, fast) in enumerate(zip(problems, bounds, values)):
        exact = exact_minimize(
            p, Criterion.ENERGY, Thresholds(period=b)
        ).objective
        rows.append((seed, fast, exact))
        assert fast == pytest.approx(exact)
    report(
        "T2.PE1: Theorem 19 (Hungarian matching) vs exact minimum energy "
        "(paper: polynomial, minimum matching)",
        render_table(["seed", "matching energy", "exact energy"], rows),
    )


def test_t2pe1_hungarian_vs_scipy(benchmark, report):
    """The matching substrate agrees with scipy and scales polynomially."""
    scipy_opt = pytest.importorskip("scipy.optimize")
    rng = np.random.default_rng(0)
    rows = []
    samples = []
    for n in (10, 20, 40, 80):
        cost = rng.uniform(0.1, 10.0, size=(n, n + 5))
        t0 = time.perf_counter()
        ours = solve_assignment(cost.tolist())
        elapsed = time.perf_counter() - t0
        r, c = scipy_opt.linear_sum_assignment(cost)
        scipy_total = float(cost[r, c].sum())
        samples.append((n, elapsed))
        rows.append((n, elapsed * 1e3, ours.total_cost, scipy_total))
        assert ours.total_cost == pytest.approx(scipy_total)
    fit = fit_power_law([s for s, _ in samples], [t for _, t in samples])
    rows.append(("fit", f"t ~ n^{fit.exponent:.2f}", "-", "-"))
    report(
        "T2.PE1: from-scratch Hungarian vs scipy.linear_sum_assignment "
        "(identical optima; polynomial growth)",
        render_table(["n rows", "time (ms)", "ours", "scipy"], rows),
    )
    assert fit.exponent < 4.5
    cost = rng.uniform(0.1, 10.0, size=(30, 35)).tolist()
    benchmark(lambda: solve_assignment(cost))


def test_t2pe2_interval_dp_optimality(benchmark, report):
    problems, bounds = [], []
    for seed in range(6):
        p = interval_problem(seed)
        base = minimize_period_interval(p).objective
        problems.append(p)
        bounds.append(base * 1.5)

    def solve_batch():
        return [
            minimize_energy_given_period_interval(
                p, Thresholds(period=b)
            ).objective
            for p, b in zip(problems, bounds)
        ]

    values = benchmark(solve_batch)
    rows = []
    for seed, (p, b, fast) in enumerate(zip(problems, bounds, values)):
        exact = exact_minimize(
            p, Criterion.ENERGY, Thresholds(period=b)
        ).objective
        rows.append((seed, fast, exact))
        assert fast == pytest.approx(exact)
    report(
        "T2.PE2: Theorems 18+21 (interval energy DP) vs exact "
        "(paper: polynomial, dyn. prog.)",
        render_table(["seed", "DP energy", "exact energy"], rows),
    )


def test_t2pe2_server_problem_curve(benchmark, report):
    """The 'server problem': least energy at each required throughput.
    Loosening the period bound lets processors step down their modes."""
    problem = interval_problem(33, stages=4, n_modes=4)
    base = minimize_period_interval(problem).objective
    factors = [1.0, 1.3, 1.8, 2.5, 4.0, 8.0]

    def sweep():
        return [
            (
                f,
                minimize_energy_given_period_interval(
                    problem, Thresholds(period=base * f)
                ).objective,
            )
            for f in factors
        ]

    curve = benchmark(sweep)
    rows = [(f, base * f, e) for f, e in curve]
    report(
        "T2.PE2: energy vs required period ('server problem'; energy must "
        "fall monotonically as the bound loosens)",
        render_table(["bound factor", "period bound", "min energy"], rows),
    )
    energies = [e for _, e in curve]
    assert all(a >= b - 1e-9 for a, b in zip(energies, energies[1:]))
    # A generous bound must cost strictly less than the tight one.
    assert energies[-1] < energies[0]


def test_t2pe2_scaling(benchmark, report):
    sizes = [4, 8, 16, 24]
    samples, rows = [], []
    for n in sizes:
        problem = interval_problem(9, stages=n)
        base = minimize_period_interval(problem).objective
        t0 = time.perf_counter()
        minimize_energy_given_period_interval(
            problem, Thresholds(period=base * 1.5)
        )
        elapsed = time.perf_counter() - t0
        samples.append((2 * n, elapsed))
        rows.append((2 * n, elapsed * 1e3))
    fit = fit_power_law([s for s, _ in samples], [t for _, t in samples])
    rows.append(("fit", f"t ~ N^{fit.exponent:.2f}"))
    report(
        "T2.PE2: energy DP runtime scaling (paper: O(A n^3 p^2) with its "
        "oracle; polynomial expected)",
        render_table(["N stages", "time (ms)"], rows),
    )
    assert fit.exponent < 5.0
    problem = interval_problem(9, stages=6)
    base = minimize_period_interval(problem).objective
    benchmark(
        lambda: minimize_energy_given_period_interval(
            problem, Thresholds(period=base * 1.5)
        )
    )


def test_t2pe3_hard_cell_contrast(benchmark, report):
    """Theorems 20/22: period/energy beyond the polynomial columns.
    Exact nodes grow; greedy mode-downgrading stays polynomial and close."""
    rows = []
    for seed, stages in ((0, 2), (1, 3)):
        rng = rng_from(seed)
        apps = random_applications(rng, 2, stage_range=(stages, stages))
        platform = random_fully_heterogeneous_platform(
            rng, 2 * stages, 2, n_modes=2
        )
        problem = ProblemInstance(
            apps=apps, platform=platform, energy_model=EM
        )
        start = greedy_interval_period(problem)
        bound = start.values.period * 1.5
        t0 = time.perf_counter()
        exact = exact_minimize(
            problem, Criterion.ENERGY, Thresholds(period=bound)
        )
        t_exact = time.perf_counter() - t0
        t0 = time.perf_counter()
        heur = greedy_mode_downgrade(
            problem, start.mapping, Thresholds(period=bound)
        )
        t_heur = time.perf_counter() - t0
        rows.append(
            (
                2 * stages,
                int(exact.stats["nodes"]),
                t_exact * 1e3,
                t_heur * 1e3,
                heur.objective / exact.objective,
            )
        )
        assert heur.objective >= exact.objective - 1e-9
    report(
        "T2.PE3: period/energy on com-het (paper: NP-complete, Thms 20/22) "
        "-- exact nodes vs greedy mode-downgrade",
        render_table(
            ["N stages", "B&B nodes", "exact (ms)", "heuristic (ms)", "heur/opt"],
            rows,
        ),
    )
    assert rows[-1][1] > rows[0][1]
    problem = one_to_one_problem(5)
    base = minimize_period_one_to_one(problem).objective
    benchmark(
        lambda: minimize_energy_given_period_one_to_one(
            problem, Thresholds(period=base * 1.5)
        )
    )
