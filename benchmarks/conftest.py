"""Shared fixtures for the benchmark/reproduction harness.

Every bench prints the table or series it regenerates through the
``report`` fixture, which bypasses pytest's output capture so the rows land
in the terminal (and in ``bench_output.txt`` when the run is tee'd), right
next to pytest-benchmark's timing tables.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print a titled block straight to the terminal."""

    def _report(title: str, body: str) -> None:
        with capsys.disabled():
            print()
            print(f"=== {title} ===")
            print(body)

    return _report
