"""Experiments T1.P21 / T1.P22 -- Table 1, row "Period / interval".

Paper claims:

* polynomial on fully homogeneous platforms (Theorem 3: dynamic
  programming oracle + Algorithm 2 greedy allocation) -- reproduced by
  optimality against the exact solver and a polynomial runtime fit;
* NP-complete on the ``special-app`` column -- heterogeneous processors,
  homogeneous pipelines, no communication (Theorems 5-7) -- the starred
  entry: polynomial for ONE application, NP-complete for several.
  Reproduced by (i) running the Theorem 5 3-PARTITION gadget through the
  exact solver and watching nodes grow with m, while (ii) the single
  application case stays trivially easy, and (iii) the heuristic arm stays
  polynomial.
"""

import math
import time

import numpy as np
import pytest

from repro import Application, Criterion, Platform, ProblemInstance
from repro.algorithms import minimize_period_interval
from repro.algorithms.exact import exact_minimize
from repro.algorithms.heuristics import greedy_interval_period, hill_climb
from repro.algorithms.reductions import (
    PeriodIntervalReduction,
    random_three_partition_yes_instance,
)
from repro.analysis import fit_power_law, render_table
from repro.generators import random_applications, rng_from


def make_hom_problem(seed, n_apps, stages_per_app, n_procs=None):
    rng = rng_from(seed)
    apps = random_applications(
        rng, n_apps, stage_range=(stages_per_app, stages_per_app)
    )
    total = sum(a.n_stages for a in apps)
    platform = Platform.fully_homogeneous(
        n_procs or (total // 2 + n_apps), speeds=[2.0], bandwidth=1.5
    )
    return ProblemInstance(apps=apps, platform=platform)


def test_t1p21_theorem3_optimality(benchmark, report):
    problems = [make_hom_problem(seed, 2, 3) for seed in range(8)]

    def solve_batch():
        return [minimize_period_interval(p).objective for p in problems]

    fast_values = benchmark(solve_batch)
    rows = []
    for seed, (p, fast) in enumerate(zip(problems, fast_values)):
        exact = exact_minimize(p, Criterion.PERIOD).objective
        rows.append((seed, fast, exact, "yes" if math.isclose(fast, exact) else "NO"))
        assert fast == pytest.approx(exact)
    report(
        "T1.P21: Theorem 3 (DP + Algorithm 2) vs exact optimum on proc-hom "
        "(paper: polynomial AND optimal)",
        render_table(["seed", "theorem 3", "exact", "match"], rows),
    )


def test_t1p21_theorem3_scaling(benchmark, report):
    sizes = [4, 8, 16, 32, 48]
    samples, rows = [], []
    for n in sizes:
        problem = make_hom_problem(5, 2, n, n_procs=n)
        t0 = time.perf_counter()
        minimize_period_interval(problem)
        elapsed = time.perf_counter() - t0
        samples.append((2 * n, elapsed))
        rows.append((2 * n, n, elapsed * 1e3))
    fit = fit_power_law([s for s, _ in samples], [t for _, t in samples])
    rows.append(("fit", "-", f"t ~ N^{fit.exponent:.2f}"))
    report(
        "T1.P21: Theorem 3 runtime scaling (paper: O(n^2 A p) with our "
        "oracle; polynomial expected)",
        render_table(["N stages", "p procs", "time (ms)"], rows),
    )
    assert fit.exponent < 5.0
    benchmark(lambda: minimize_period_interval(make_hom_problem(5, 2, 8)))


def test_t1p22_starred_entry_gadget(benchmark, report):
    """The (*) cell: Theorem 5's 3-PARTITION gadget. Exact solving cost
    grows steeply with m while the yes-instance optimum stays pinned at the
    target period 1."""
    rng = np.random.default_rng(1)
    rows = []
    for m, bound in ((1, 12), (2, 12), (3, 12)):
        source = random_three_partition_yes_instance(rng, m=m, bound=bound)
        red = PeriodIntervalReduction.build(source)
        t0 = time.perf_counter()
        exact = exact_minimize(red.problem, Criterion.PERIOD)
        t_exact = time.perf_counter() - t0
        rows.append(
            (
                m,
                3 * m,
                int(exact.stats["nodes"]),
                t_exact * 1e3,
                exact.objective,
            )
        )
        assert exact.objective == pytest.approx(red.target_period)
    report(
        "T1.P22: Theorem 5 gadget (heterogeneous procs, homogeneous "
        "pipelines, no comm) -- exact nodes grow with m; optimum = the "
        "3-PARTITION target (paper: NP-complete(*), polynomial for A=1)",
        render_table(
            ["m apps", "p procs", "B&B nodes", "exact (ms)", "period found"],
            rows,
        ),
    )
    assert rows[-1][2] > rows[0][2]
    source = random_three_partition_yes_instance(rng, m=2, bound=12)
    red = PeriodIntervalReduction.build(source)
    benchmark.pedantic(
        lambda: exact_minimize(red.problem, Criterion.PERIOD),
        rounds=1,
        iterations=1,
    )


def test_t1p22_single_app_contrast(benchmark, report):
    """The same shape with a single application is easy (the paper cites a
    polynomial algorithm [4]; our exact solver confirms triviality)."""
    rows = []
    for n_stages in (4, 8, 12):
        app = Application.homogeneous(n_stages, work=1.0)
        platform = Platform.comm_homogeneous(
            [[1.0], [2.0], [3.0]], bandwidth=1.0
        )
        problem = ProblemInstance(apps=(app,), platform=platform)
        t0 = time.perf_counter()
        s = exact_minimize(problem, Criterion.PERIOD)
        elapsed = time.perf_counter() - t0
        rows.append((n_stages, int(s.stats["nodes"]), elapsed * 1e3, s.objective))
    report(
        "T1.P22 contrast: one application stays easy on the same platform "
        "family (the hardness needs concurrency)",
        render_table(["n stages", "B&B nodes", "time (ms)", "period"], rows),
    )
    app = Application.homogeneous(8, work=1.0)
    platform = Platform.comm_homogeneous([[1.0], [2.0], [3.0]])
    problem = ProblemInstance(apps=(app,), platform=platform)
    benchmark(lambda: exact_minimize(problem, Criterion.PERIOD))


def test_t1p22_heuristic_arm(benchmark, report):
    """The polynomial heuristic handles gadget instances far beyond exact
    reach, at bounded quality loss on the sizes where both run."""
    rng = np.random.default_rng(5)
    rows = []
    for m in (2, 3, 5, 8):
        source = random_three_partition_yes_instance(rng, m=m, bound=12)
        red = PeriodIntervalReduction.build(source)
        t0 = time.perf_counter()
        heur = hill_climb(
            red.problem,
            greedy_interval_period(red.problem).mapping,
            Criterion.PERIOD,
        )
        elapsed = time.perf_counter() - t0
        rows.append((m, 3 * m, elapsed * 1e3, heur.objective))
        assert heur.objective >= red.target_period - 1e-9
        assert heur.objective <= 2.0 * red.target_period
    report(
        "T1.P22: heuristic arm on growing gadgets (optimal = 1.0)",
        render_table(["m apps", "p procs", "time (ms)", "period found"], rows),
    )
    source = random_three_partition_yes_instance(rng, m=3, bound=12)
    red = PeriodIntervalReduction.build(source)
    benchmark.pedantic(
        lambda: greedy_interval_period(red.problem), rounds=2, iterations=1
    )
