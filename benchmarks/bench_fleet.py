"""Sharded-fleet benchmark: aggregate jobs/sec vs shard count, plus the
fleet-wide dedup guarantee.

Run as a script to (re)record the performance baseline::

    PYTHONPATH=src python benchmarks/bench_fleet.py [output.json] [--tiny]

For each shard count it spawns that many *real* daemon processes
(``repro-pipelines serve`` on ephemeral ports, one cache directory per
shard), fronts them with an in-process :class:`RouterThread`, and
drives the fleet over HTTP with :class:`repro.client.SolveClient`:

* ``cold_jobs_per_sec`` -- submit a fleet of distinct instances through
  the router and drain it (routing + solve + fetch, all over HTTP);
  separate daemon processes mean the aggregate genuinely scales with
  shard count on multi-core machines;
* ``warm_jobs_per_sec`` -- resubmit the identical fleet: every job must
  come back ``source="cache"`` with **zero** additional solves anywhere
  in the fleet (the ring maps a repeated key to the shard that already
  owns its cache entry — dedup works *across* shards);
* ``solved_total`` -- summed over shards after both passes; asserted
  equal to the number of distinct cells, i.e. the fleet as a whole
  solved each cell exactly once;
* per-shard job distribution, to show ring balance on real work;
* every solution is asserted byte-identical (mapping, objective,
  criterion values) to the 1-shard baseline.

``--tiny`` shrinks the fleet and job count for CI smoke runs (same
assertions).  Writes ``BENCH_fleet.json`` next to this file.
"""

from __future__ import annotations

import json
import platform as _platform
import sys
import tempfile
import time
from pathlib import Path

from repro.client import SolveClient
from repro.generators import small_random_problem
from repro.io import problem_to_dict
from repro.server import RouterThread, spawn_local_fleet, split_job_id
from repro.server.router import terminate_fleet
from repro.strategies import SolveBudget

SOLVER_KWARGS = dict(
    strategy="greedy",
    budget=SolveBudget(max_evaluations=200_000, seed=0),
)


def canonical(result) -> str:
    """Byte-comparable solution rendering (wall-clock fields dropped)."""
    payload = dict(result.raw["solution"])
    payload.pop("stats", None)
    if isinstance(payload.get("telemetry"), dict):
        telemetry = dict(payload["telemetry"])
        telemetry.pop("wall_time", None)
        payload["telemetry"] = telemetry
    return json.dumps(payload, sort_keys=True)


def bench_fleet(n_shards: int, problems, cache_dir: str) -> dict:
    """Cold + warm pass through a fleet of ``n_shards`` daemons."""
    shards = spawn_local_fleet(
        n_shards, cache_dir=cache_dir, executor="thread", concurrency=2
    )
    try:
        with RouterThread(
            [(s.name, s.url) for s in shards], health_interval=5.0
        ) as rt:
            client = SolveClient(rt.url, timeout=60.0)

            t0 = time.perf_counter()
            ids = client.submit_many(problems, **SOLVER_KWARGS)
            cold = {r.job_id: r for r in client.iter_results(ids, timeout=600)}
            cold_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            ids_warm = client.submit_many(problems, **SOLVER_KWARGS)
            warm = list(client.iter_results(ids_warm, timeout=600))
            warm_s = time.perf_counter() - t0

            metrics = client.metrics()

        n = len(problems)
        per_shard = {
            name: sum(
                1 for job_id in ids if split_job_id(job_id)[1] == name
            )
            for name in sorted(s.name for s in shards)
        }
        solved_total = metrics["fleet"]["jobs"]["solved"]
        # Dedup across shards: the warm pass resolved every repeated
        # submission on the shard owning its cache entry — the fleet
        # solved each distinct cell exactly once, ever.
        assert solved_total == n, (
            f"{n_shards} shard(s): fleet solved {solved_total} != {n} cells"
        )
        warm_sources = {r.source for r in warm}
        assert warm_sources == {"cache"}, (
            f"warm pass must be all cache hits, got {warm_sources}"
        )
        assert all(r.ok for r in cold.values()) and len(cold) == n
        # Key->shard assignment is identical on both passes (a warm
        # submission gets a fresh job id but the same owning shard).
        assert [split_job_id(i)[1] for i in ids] == [
            split_job_id(i)[1] for i in ids_warm
        ]
        ordered = [cold[job_id] for job_id in ids]
        return {
            "shards": n_shards,
            "cold_run_s": round(cold_s, 4),
            "warm_run_s": round(warm_s, 4),
            "cold_jobs_per_sec": round(n / cold_s, 2),
            "warm_jobs_per_sec": round(n / warm_s, 2),
            "jobs_per_shard": per_shard,
            "solved_total": solved_total,
            "results": ordered,
        }
    finally:
        terminate_fleet(shards)


def run(output: Path, *, tiny: bool = False) -> dict:
    shard_counts = [1, 2] if tiny else [1, 2, 3]
    n_jobs = 8 if tiny else 24
    problems = [small_random_problem(8000 + i) for i in range(n_jobs)]

    sweeps = []
    baseline = None
    for n_shards in shard_counts:
        with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
            sweep = bench_fleet(n_shards, problems, tmp)
        results = sweep.pop("results")
        if baseline is None:
            baseline = [canonical(r) for r in results]
        else:
            for i, result in enumerate(results):
                assert canonical(result) == baseline[i], (
                    f"{n_shards}-shard result {i} differs from the "
                    "single-daemon baseline"
                )
        sweeps.append(sweep)

    payload = {
        "bench": "fleet",
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "tiny": tiny,
        "n_jobs": n_jobs,
        "problem_payload_keys": sorted(
            problem_to_dict(problems[0]).keys()
        ),
        "sweeps": sweeps,
        "byte_identical_to_single_daemon": True,
    }
    output.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))
    return payload


def main() -> int:
    argv = list(sys.argv[1:])
    tiny = "--tiny" in argv
    argv = [a for a in argv if a != "--tiny"]
    output = (
        Path(argv[0])
        if argv
        else Path(__file__).parent / "BENCH_fleet.json"
    )
    payload = run(output, tiny=tiny)
    for sweep in payload["sweeps"]:
        assert sweep["solved_total"] == payload["n_jobs"]
        assert min(sweep["jobs_per_shard"].values()) >= 0
    multi = [s for s in payload["sweeps"] if s["shards"] > 1]
    assert all(
        len([v for v in s["jobs_per_shard"].values() if v > 0]) > 1
        for s in multi
    ), "multi-shard sweeps must spread work over more than one shard"
    summary = ", ".join(
        f"{s['shards']} shard(s): {s['cold_jobs_per_sec']} cold / "
        f"{s['warm_jobs_per_sec']} warm jobs/s"
        for s in payload["sweeps"]
    )
    print(f"ok: {summary}; fleet dedup exact, results byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
