"""Neighborhood-engine benchmark: scalar vs batched vs compiled hill climbing.

Run as a script to (re)record the performance baseline::

    PYTHONPATH=src python benchmarks/bench_neighborhood.py [output.json] [--tiny]

It builds a grid of 100-stage / 20-processor NP-hard instances (two
50-stage applications on fully heterogeneous and comm-homogeneous
multi-modal platforms), runs :func:`repro.algorithms.heuristics.hill_climb`
from the same greedy start with every registered neighborhood engine --
``"scalar"`` (the seed's one-``Mapping``-at-a-time loop with
delta-evaluation), ``"batched"`` (array-native candidate generation +
one ``evaluate_many`` kernel call per step) and, when Numba is
installed, ``"compiled"`` (:mod:`repro.kernel.compiled`: generation,
evaluation, scoring and the accept replay fused into one nopython call
per step) -- and writes ``BENCH_neighborhood.json`` next to this file.

The compiled engine is additionally measured against the batched one on
a dedicated 200-stage / 20-processor grid (the regime the JIT targets),
with the one-off JIT compilation time reported separately and excluded
from every per-instance timing (each instance's plan is prebuilt via
:func:`repro.kernel.compiled.compile_for` before the clock starts).

Asserted when run as a script:

* all engines return **byte-identical** solutions (same mapping, same
  objective, same stats) on every instance;
* the geometric-mean speedup of the batched engine over the scalar one
  is **>= 4x** (``--tiny`` relaxes the bar to >= 1.5x for the CI smoke
  grid);
* the geometric-mean speedup of the compiled engine over the batched
  one on the 200-stage grid is **>= 3x** (``--tiny``: >= 1.0x, a smoke
  bar).  *Escape hatch:* when Numba is not installed, or
  ``NUMBA_DISABLE_JIT`` forces the kernels to run interpreted, the
  compiled section records ``skipped`` + the reason instead of failing.

The JSON also records a ``guard`` block (reference-instance wall-clock
plus a machine-calibration time) consumed by
``tests/perf/test_hill_climb_guard.py``, which fails when hill climbing
on the reference instance regresses to more than 1.5x the recorded
wall-clock (after rescaling by the calibration ratio).  The block's
``compiled_seconds`` is ``null`` when the baseline was recorded without
Numba; the compiled guard test skips itself in that case.
"""

from __future__ import annotations

import json
import math
import os
import platform as _platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.algorithms.heuristics import greedy_interval_period, hill_climb
from repro.core.problem import ProblemInstance
from repro.core.types import Criterion
from repro.generators import random_applications, rng_from
from repro.generators.platforms import (
    random_comm_homogeneous_platform,
    random_fully_heterogeneous_platform,
)
from repro.kernel import compiled

#: Hill-climbing steps per instance: enough to amortize the greedy start
#: while keeping the scalar baseline affordable.
MAX_ITERATIONS = 8

#: The instance replayed by the wall-clock guard test.
GUARD_SEED = 0

#: Per-application stage count of the dedicated compiled-vs-batched grid
#: (2 apps x 100 stages = the 200-stage regime the JIT targets).
COMPILED_STAGES = 100

#: Hill-climbing steps on the compiled grid (no scalar baseline to
#: amortize, so more steps fit the budget).
COMPILED_ITERATIONS = 4


def build_instance(
    seed: int, *, tiny: bool = False, stages: int | None = None
) -> ProblemInstance:
    """One bench instance: 2 x ``stages`` stages on 20 processors
    (2 x 10 stages on 8 processors under ``--tiny``), NP-hard
    heterogeneous cells.  ``stages`` defaults to 50 (10 under tiny)."""
    rng = rng_from(seed)
    if stages is None:
        stages = 10 if tiny else 50
    procs = 8 if tiny else 20
    apps = random_applications(rng, 2, stage_range=(stages, stages))
    if seed % 2 == 0:
        platform = random_fully_heterogeneous_platform(
            rng, procs, 2, n_modes=2
        )
    else:
        platform = random_comm_homogeneous_platform(rng, procs, n_modes=2)
    return ProblemInstance(apps=apps, platform=platform)


def calibrate() -> float:
    """A fixed NumPy + Python workload timing the machine, recorded next
    to the guard wall-clock so the guard test can rescale the recorded
    baseline to the executing machine's speed."""
    rng = np.random.default_rng(0)
    data = rng.random((400, 400))
    t0 = time.perf_counter()
    acc = 0.0
    for _ in range(12):
        acc += float(np.linalg.norm(data @ data.T)) % 97.0
        acc += sum((data[0] * i).sum() for i in range(10))
    elapsed = time.perf_counter() - t0
    assert math.isfinite(acc)
    return elapsed


def geomean(values) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def compiled_skip_reason() -> str | None:
    """Why the compiled section cannot produce meaningful timings here,
    or ``None`` when it can (the bench's skip-with-reason escape hatch)."""
    if not compiled.HAVE_NUMBA:
        return "numba is not installed (pip install repro-pipelines[compiled])"
    if os.environ.get("NUMBA_DISABLE_JIT", "0") not in ("", "0"):
        return "NUMBA_DISABLE_JIT is set (kernels run interpreted)"
    return None


def _timed_hill_climb(problem, start, engine, max_iterations):
    t0 = time.perf_counter()
    solution = hill_climb(
        problem,
        start,
        Criterion.PERIOD,
        max_iterations=max_iterations,
        engine=engine,
    )
    return solution, time.perf_counter() - t0


def _same_solution(a, b) -> bool:
    return (
        a.mapping == b.mapping
        and a.objective == b.objective
        and a.values == b.values
        and a.stats == b.stats
    )


def run_compiled_grid(tiny: bool) -> dict:
    """The dedicated compiled-vs-batched grid (200-stage instances; the
    tiny smoke reuses the tiny grid).  JIT warmup and per-instance plan
    builds happen before the clock starts; the one-off compile cost is
    reported separately as ``compile_seconds``."""
    reason = compiled_skip_reason()
    section: dict = {
        "available": compiled.available(),
        "numba": compiled.NUMBA_VERSION,
        "skipped": reason is not None,
        "reason": reason,
        "n_stages": 2 * (10 if tiny else COMPILED_STAGES),
        "max_iterations": COMPILED_ITERATIONS,
    }
    if reason is not None:
        return section
    t0 = time.perf_counter()
    compiled.warmup()
    compile_seconds = time.perf_counter() - t0
    seeds = range(2) if tiny else range(4)
    per_instance = []
    identical = True
    for seed in seeds:
        stages = None if tiny else COMPILED_STAGES
        problem = build_instance(seed, tiny=tiny, stages=stages)
        start = greedy_interval_period(problem).mapping
        # Plan build (array packing) is one-off per instance; exclude it
        # from the timed run, mirroring what a warmed worker sees.
        compiled.compile_for(problem)
        problem.evaluation_context()
        batched, t_batched = _timed_hill_climb(
            problem, start, "batched", COMPILED_ITERATIONS
        )
        comp, t_compiled = _timed_hill_climb(
            problem, start, "compiled", COMPILED_ITERATIONS
        )
        same = _same_solution(batched, comp)
        identical = identical and same
        per_instance.append(
            {
                "seed": seed,
                "n_stages": problem.n_stages_total,
                "n_processors": problem.platform.n_processors,
                "batched_seconds": round(t_batched, 6),
                "compiled_seconds": round(t_compiled, 6),
                "speedup_vs_batched": round(t_batched / t_compiled, 3),
                "objective": comp.objective,
                "n_steps": comp.stats["n_steps"],
                "identical_solutions": same,
            }
        )
    section.update(
        compile_seconds=round(compile_seconds, 6),
        instances=per_instance,
        geomean_speedup_vs_batched=round(
            geomean([r["speedup_vs_batched"] for r in per_instance]), 3
        ),
        identical_solutions=identical,
    )
    return section


def run(output: Path, tiny: bool = False) -> dict:
    engines = ["scalar", "batched"]
    if compiled.available():
        engines.append("compiled")
        compiled.warmup()
    seeds = range(2) if tiny else range(6)
    per_instance = []
    identical = True
    guard = None
    for seed in seeds:
        problem = build_instance(seed, tiny=tiny)
        start = greedy_interval_period(problem).mapping
        if "compiled" in engines:
            compiled.compile_for(problem)  # plan build outside the clock
        timings = {}
        solutions = {}
        for engine in engines:
            solutions[engine], timings[engine] = _timed_hill_climb(
                problem, start, engine, MAX_ITERATIONS
            )
        same = all(
            _same_solution(solutions["batched"], solutions[e])
            for e in engines
            if e != "batched"
        )
        identical = identical and same
        record = {
            "seed": seed,
            "n_stages": problem.n_stages_total,
            "n_processors": problem.platform.n_processors,
            "scalar_seconds": round(timings["scalar"], 6),
            "batched_seconds": round(timings["batched"], 6),
            "speedup": round(timings["scalar"] / timings["batched"], 3),
            "objective": solutions["batched"].objective,
            "n_steps": solutions["batched"].stats["n_steps"],
            "identical_solutions": same,
        }
        if "compiled" in engines:
            record["compiled_seconds"] = round(timings["compiled"], 6)
            record["compiled_speedup_vs_batched"] = round(
                timings["batched"] / timings["compiled"], 3
            )
        per_instance.append(record)
        if seed == GUARD_SEED:
            guard = {
                "seed": seed,
                "batched_seconds": timings["batched"],
                "compiled_seconds": timings.get("compiled"),
                "calibration_seconds": calibrate(),
                "max_iterations": MAX_ITERATIONS,
                "tiny": tiny,
            }
    speedup = geomean([r["speedup"] for r in per_instance])
    payload = {
        "bench": "neighborhood-engine",
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "tiny": tiny,
        "engines": engines,
        "n_instances": len(per_instance),
        "max_iterations": MAX_ITERATIONS,
        "instances": per_instance,
        "geomean_speedup": round(speedup, 3),
        "identical_solutions": identical,
        "compiled": run_compiled_grid(tiny),
        "guard": guard,
    }
    output.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))
    return payload


def main() -> int:
    argv = list(sys.argv[1:])
    tiny = "--tiny" in argv
    argv = [a for a in argv if a != "--tiny"]
    output = (
        Path(argv[0])
        if argv
        else Path(__file__).parent / "BENCH_neighborhood.json"
    )
    payload = run(output, tiny=tiny)
    assert payload["identical_solutions"], (
        "the neighborhood engines returned different solutions"
    )
    bar = 1.5 if tiny else 4.0
    assert payload["geomean_speedup"] >= bar, (
        f"geomean speedup {payload['geomean_speedup']}x below the "
        f"{bar}x acceptance bar"
    )
    print(
        f"ok: batched neighborhood engine {payload['geomean_speedup']}x "
        f"geomean speedup over the scalar path "
        f"({payload['n_instances']} instances, byte-identical solutions)"
    )
    section = payload["compiled"]
    if section["skipped"]:
        print(f"compiled engine section skipped: {section['reason']}")
    else:
        assert section["identical_solutions"], (
            "compiled and batched hill_climb returned different solutions"
        )
        compiled_bar = 1.0 if tiny else 3.0
        assert section["geomean_speedup_vs_batched"] >= compiled_bar, (
            f"compiled geomean speedup "
            f"{section['geomean_speedup_vs_batched']}x below the "
            f"{compiled_bar}x acceptance bar"
        )
        print(
            f"ok: compiled engine "
            f"{section['geomean_speedup_vs_batched']}x geomean speedup "
            f"over the batched path on the {section['n_stages']}-stage "
            f"grid (compile: {section['compile_seconds']}s, excluded)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
