"""Neighborhood-engine benchmark: batched vs scalar hill climbing.

Run as a script to (re)record the performance baseline::

    PYTHONPATH=src python benchmarks/bench_neighborhood.py [output.json] [--tiny]

It builds a grid of 100-stage / 20-processor NP-hard instances (two
50-stage applications on fully heterogeneous and comm-homogeneous
multi-modal platforms), runs :func:`repro.algorithms.heuristics.hill_climb`
from the same greedy start with both neighborhood engines --
``"scalar"`` (the seed's one-``Mapping``-at-a-time loop with
delta-evaluation) and ``"batched"`` (array-native candidate generation +
one ``evaluate_many`` kernel call per step) -- and writes
``BENCH_neighborhood.json`` next to this file.

Asserted when run as a script:

* both engines return **byte-identical** solutions (same mapping, same
  objective, same stats) on every instance;
* the geometric-mean speedup of the batched engine is **>= 4x**
  (``--tiny`` relaxes the bar to >= 1.5x for the CI smoke grid).

The JSON also records a ``guard`` block (reference-instance wall-clock
plus a machine-calibration time) consumed by
``tests/perf/test_hill_climb_guard.py``, which fails when hill climbing
on the reference instance regresses to more than 1.5x the recorded
batched wall-clock (after rescaling by the calibration ratio).
"""

from __future__ import annotations

import json
import math
import platform as _platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.algorithms.heuristics import greedy_interval_period, hill_climb
from repro.core.problem import ProblemInstance
from repro.core.types import Criterion
from repro.generators import random_applications, rng_from
from repro.generators.platforms import (
    random_comm_homogeneous_platform,
    random_fully_heterogeneous_platform,
)

#: Hill-climbing steps per instance: enough to amortize the greedy start
#: while keeping the scalar baseline affordable.
MAX_ITERATIONS = 8

#: The instance replayed by the wall-clock guard test.
GUARD_SEED = 0


def build_instance(seed: int, *, tiny: bool = False) -> ProblemInstance:
    """One bench instance: 2 x 50 stages on 20 processors (2 x 10 stages
    on 8 processors under ``--tiny``), NP-hard heterogeneous cells."""
    rng = rng_from(seed)
    stages = 10 if tiny else 50
    procs = 8 if tiny else 20
    apps = random_applications(rng, 2, stage_range=(stages, stages))
    if seed % 2 == 0:
        platform = random_fully_heterogeneous_platform(
            rng, procs, 2, n_modes=2
        )
    else:
        platform = random_comm_homogeneous_platform(rng, procs, n_modes=2)
    return ProblemInstance(apps=apps, platform=platform)


def calibrate() -> float:
    """A fixed NumPy + Python workload timing the machine, recorded next
    to the guard wall-clock so the guard test can rescale the recorded
    baseline to the executing machine's speed."""
    rng = np.random.default_rng(0)
    data = rng.random((400, 400))
    t0 = time.perf_counter()
    acc = 0.0
    for _ in range(12):
        acc += float(np.linalg.norm(data @ data.T)) % 97.0
        acc += sum((data[0] * i).sum() for i in range(10))
    elapsed = time.perf_counter() - t0
    assert math.isfinite(acc)
    return elapsed


def geomean(values) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run(output: Path, tiny: bool = False) -> dict:
    seeds = range(2) if tiny else range(6)
    instances = []
    per_instance = []
    identical = True
    guard = None
    for seed in seeds:
        problem = build_instance(seed, tiny=tiny)
        start = greedy_interval_period(problem).mapping
        timings = {}
        solutions = {}
        for engine in ("scalar", "batched"):
            t0 = time.perf_counter()
            solutions[engine] = hill_climb(
                problem,
                start,
                Criterion.PERIOD,
                max_iterations=MAX_ITERATIONS,
                engine=engine,
            )
            timings[engine] = time.perf_counter() - t0
        same = (
            solutions["scalar"].mapping == solutions["batched"].mapping
            and solutions["scalar"].objective
            == solutions["batched"].objective
            and solutions["scalar"].values == solutions["batched"].values
            and solutions["scalar"].stats == solutions["batched"].stats
        )
        identical = identical and same
        record = {
            "seed": seed,
            "n_stages": problem.n_stages_total,
            "n_processors": problem.platform.n_processors,
            "scalar_seconds": round(timings["scalar"], 6),
            "batched_seconds": round(timings["batched"], 6),
            "speedup": round(timings["scalar"] / timings["batched"], 3),
            "objective": solutions["batched"].objective,
            "n_steps": solutions["batched"].stats["n_steps"],
            "identical_solutions": same,
        }
        per_instance.append(record)
        instances.append(problem)
        if seed == GUARD_SEED:
            guard = {
                "seed": seed,
                "batched_seconds": timings["batched"],
                "calibration_seconds": calibrate(),
                "max_iterations": MAX_ITERATIONS,
                "tiny": tiny,
            }
    speedup = geomean([r["speedup"] for r in per_instance])
    payload = {
        "bench": "neighborhood-engine",
        "python": _platform.python_version(),
        "machine": _platform.machine(),
        "tiny": tiny,
        "n_instances": len(per_instance),
        "max_iterations": MAX_ITERATIONS,
        "instances": per_instance,
        "geomean_speedup": round(speedup, 3),
        "identical_solutions": identical,
        "guard": guard,
    }
    output.write_text(json.dumps(payload, indent=2))
    print(json.dumps(payload, indent=2))
    return payload


def main() -> int:
    argv = list(sys.argv[1:])
    tiny = "--tiny" in argv
    argv = [a for a in argv if a != "--tiny"]
    output = (
        Path(argv[0])
        if argv
        else Path(__file__).parent / "BENCH_neighborhood.json"
    )
    payload = run(output, tiny=tiny)
    assert payload["identical_solutions"], (
        "batched and scalar hill_climb returned different solutions"
    )
    bar = 1.5 if tiny else 4.0
    assert payload["geomean_speedup"] >= bar, (
        f"geomean speedup {payload['geomean_speedup']}x below the "
        f"{bar}x acceptance bar"
    )
    print(
        f"ok: batched neighborhood engine {payload['geomean_speedup']}x "
        f"geomean speedup over the scalar path "
        f"({payload['n_instances']} instances, byte-identical solutions)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
