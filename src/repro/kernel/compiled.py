"""The compiled neighborhood engine: one nopython call per descent step.

The batched engine (:mod:`repro.kernel.neighborhood` +
:meth:`~repro.kernel.context.EvaluationContext.evaluate_many`) removed
the per-candidate Python objects, but every hill-climbing step still
re-enters Python half a dozen times: materialize the
:class:`~repro.kernel.neighborhood.CandidateBatch` columns, run the
batched criteria kernel, score, then replay the accept rule over a
Python loop.  This module fuses all of it -- candidate enumeration (all
six move kinds, in the scalar generator's order), criteria evaluation
(strict-sequential chain sums matching :func:`~repro.kernel.context.segment_sums`
bit-for-bit), penalized scoring and the sequential best-improvement
tie-break -- into Numba ``@njit`` kernels, so a full descent step (and an
annealing proposal) runs without re-entering Python.  Only the accepted
candidate is ever materialized back into a ``Mapping``.

Degradation is graceful and layered:

* Numba is detected at import (:data:`HAVE_NUMBA` / :data:`NUMBA_VERSION`);
  when absent the ``@njit`` decorator degrades to the identity, leaving the
  kernels as plain Python over NumPy arrays -- slow, but exactly the code
  the JIT would compile, so the fallback is testable line by line.  The
  standard ``NUMBA_DISABLE_JIT=1`` environment variable gives the same
  interpreted path with Numba installed.
* :func:`acquire` gates per problem: unsupported shapes (e.g. a custom
  :class:`~repro.core.energy.EnergyModel` subclass whose ``dynamic`` is not
  ``s**alpha``) return a reason instead of a plan, and the caller falls
  back to the batched engine after a once-per-process warning.
* :func:`compile_for` pre-compiles every kernel (on a tiny synthetic
  instance -- Numba specializes on dtypes, not shapes) so pool workers pay
  the JIT warmup in their initializer, not on the first solve.

Bit-identity contract: given the same problem and start, the compiled
engine visits the same candidates in the same order, computes the same
IEEE-754 doubles for every criterion and score (same operation order as
``evaluate_many`` + ``score_many``), and applies the same
``< best - 1e-15`` accept rule -- asserted three-ways against the scalar
and batched oracles by ``tests/kernel/test_neighborhood_property.py``.
"""

from __future__ import annotations

import warnings
import weakref
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.energy import EnergyModel
from ..core.mapping import Assignment, Mapping
from ..core.types import CommunicationModel, Criterion, MappingRule
from ..obs.spans import track as _track
from .context import mapping_columns

__all__ = [
    "HAVE_NUMBA",
    "NUMBA_VERSION",
    "CompiledPlan",
    "CompiledState",
    "acquire",
    "available",
    "compile_for",
    "plan_for",
    "support_reason",
    "warmup",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
    NUMBA_VERSION: Optional[str] = numba.__version__
    _jit = numba.njit(cache=True)
except ImportError:
    HAVE_NUMBA = False
    NUMBA_VERSION = None

    def _jit(fn):
        return fn


#: Test hook: force the engine to report itself available even without
#: Numba, running the kernels as plain Python.  Lets the three-way
#: equivalence suite exercise the genuine compiled code path (enumeration,
#: evaluation, accept replay) on machines where the JIT is absent.
_FORCE_PYTHON_ENGINE = False

#: Reasons already warned about (once-per-process fallback warnings).
_WARNED: set = set()

#: ``plan_for`` fallback memo for problems that refuse attribute writes,
#: mirroring :data:`repro.kernel.context._CONTEXT_CACHE`.
_PLAN_CACHE: Dict[int, Tuple["weakref.ref", "CompiledPlan"]] = {}

_PENALTY = 1e9
_NEG_INF = float("-inf")
_SPEED_MATCH_RTOL = 1e-9

_CRIT_CODES = {Criterion.PERIOD: 0, Criterion.LATENCY: 1, Criterion.ENERGY: 2}


def available() -> bool:
    """True when the compiled engine can run: Numba is importable (JIT)
    or the pure-Python test hook is enabled (interpreted kernels)."""
    return HAVE_NUMBA or _FORCE_PYTHON_ENGINE


def support_reason(problem) -> Optional[str]:
    """Why the compiled engine cannot handle ``problem`` -- or ``None``.

    The compiled kernels hard-code the paper's shapes: ``s**alpha``
    dynamic energy and the two communication models / mapping rules.
    Anything pluggable beyond that (a custom ``EnergyModel`` subclass, a
    future mapping rule) downgrades to the batched engine, which goes
    through the fully general Python tables.
    """
    if type(problem.energy_model) is not EnergyModel:
        return (
            "custom energy model "
            f"{type(problem.energy_model).__name__!r} (compiled kernels "
            "hard-code dynamic energy s**alpha)"
        )
    if problem.model not in (
        CommunicationModel.OVERLAP,
        CommunicationModel.NO_OVERLAP,
    ):
        return f"unsupported communication model {problem.model!r}"
    if problem.rule not in (MappingRule.INTERVAL, MappingRule.ONE_TO_ONE):
        return f"unsupported mapping rule {problem.rule!r}"
    return None


def _warn_fallback(reason: str) -> None:
    """Emit the once-per-process downgrade warning for ``reason``."""
    if reason in _WARNED:
        return
    _WARNED.add(reason)
    warnings.warn(
        f"compiled neighborhood engine unavailable ({reason}); "
        "falling back to the batched engine",
        RuntimeWarning,
        stacklevel=3,
    )


def acquire(problem, context=None):
    """The compiled plan for ``problem``, or the fallback reason.

    Returns
    -------
    (plan, reason)
        ``(CompiledPlan, None)`` when the compiled engine can run this
        problem; ``(None, str)`` otherwise, after a once-per-process
        :class:`RuntimeWarning` naming the reason.  Callers fall back to
        the batched engine on ``None``.
    """
    if not available():
        reason = "numba is not installed (pip install repro-pipelines[compiled])"
    else:
        reason = support_reason(problem)
    if reason is not None:
        _warn_fallback(reason)
        return None, reason
    return plan_for(problem, context), None


# ---------------------------------------------------------------------------
# nopython kernels
#
# All kernels operate on plain int64/float64 arrays; with Numba absent they
# run unchanged as Python (the graceful-degradation contract above).  The
# operation order inside each kernel deliberately mirrors evaluate_many /
# score_many / the batched accept replay so results are bit-identical.
# ---------------------------------------------------------------------------


@_jit
def _mode_pos(speeds, s0, s1, s):
    """First index (0-based within the ladder) minimizing ``|mode - s|`` --
    the scalar generator's ``min(range(...), key=...)`` rule."""
    best = 0
    best_d = abs(speeds[s0] - s)
    for q in range(s0 + 1, s1):
        d = abs(speeds[q] - s)
        if d < best_d:
            best_d = d
            best = q - s0
    return best


@_jit
def _clamp(speeds, speeds_off, u, s):
    """``clamp_speed`` over the flattened speed ladders: ``s`` itself when
    processor ``u`` has a matching mode (within the 1e-9 relative
    tolerance), else its slowest mode ``>= s``, else its fastest mode."""
    s0 = speeds_off[u]
    s1 = speeds_off[u + 1]
    for q in range(s0, s1):
        v = speeds[q]
        av = abs(v)
        if av < 1.0:
            av = 1.0
        if abs(s - v) <= _SPEED_MATCH_RTOL * av:
            return s
    for q in range(s0, s1):
        if speeds[q] >= s:
            return speeds[q]
    return speeds[s1 - 1]


@_jit
def _count_neighbors(
    app, lo, hi, proc, speed, n_free, speeds, speeds_off, interval_rule
):
    """Size of the move neighborhood, without generating it -- the cheap
    pre-pass backing ``BudgetMeter.reserve(n)``."""
    m = len(app)
    total = 0
    for r in range(m):
        s0 = speeds_off[proc[r]]
        s1 = speeds_off[proc[r] + 1]
        pos = _mode_pos(speeds, s0, s1, speed[r])
        if pos >= 1:
            total += 1
        if pos + 1 < s1 - s0:
            total += 1
    total += m * (m - 1) // 2
    total += m * n_free
    if interval_rule:
        for r in range(m - 1):
            if app[r] == app[r + 1]:
                if lo[r] < hi[r]:
                    total += 1
                if lo[r + 1] < hi[r + 1]:
                    total += 1
                total += 1
        if n_free > 0:
            for r in range(m):
                total += (hi[r] - lo[r]) * n_free
    return total


@_jit
def _copy_rows(m, app, lo, hi, proc, speed, oa, ol, oh, op, os_):
    for r in range(m):
        oa[r] = app[r]
        ol[r] = lo[r]
        oh[r] = hi[r]
        op[r] = proc[r]
        os_[r] = speed[r]


@_jit
def _gen_candidate(
    index,
    app,
    lo,
    hi,
    proc,
    speed,
    free,
    speeds,
    speeds_off,
    interval_rule,
    oa,
    ol,
    oh,
    op,
    os_,
):
    """Write candidate ``index`` (enumeration order of the scalar
    generator: mode, swap, move, then shift/merge interleaved per adjacent
    pair, then split) into the ``o*`` row buffers; returns its row count.

    The decode walks the per-kind blocks arithmetically (O(m) per call,
    never O(neighborhood)), keeping the single source of enumeration
    truth in one place for counting, stepping and materialization.
    """
    m = len(app)
    n_free = len(free)
    k = index

    # mode moves: per row, pos - 1 then pos + 1
    for r in range(m):
        s0 = speeds_off[proc[r]]
        s1 = speeds_off[proc[r] + 1]
        pos = _mode_pos(speeds, s0, s1, speed[r])
        c = 0
        if pos >= 1:
            c += 1
        if pos + 1 < s1 - s0:
            c += 1
        if k < c:
            if pos >= 1 and k == 0:
                new_pos = pos - 1
            else:
                new_pos = pos + 1
            _copy_rows(m, app, lo, hi, proc, speed, oa, ol, oh, op, os_)
            os_[r] = speeds[s0 + new_pos]
            return m
        k -= c

    # swap moves: (i, j) lexicographic, i < j
    swaps = m * (m - 1) // 2
    if k < swaps:
        i = 0
        while True:
            c = m - 1 - i
            if k < c:
                j = i + 1 + k
                break
            k -= c
            i += 1
        _copy_rows(m, app, lo, hi, proc, speed, oa, ol, oh, op, os_)
        op[i] = proc[j]
        op[j] = proc[i]
        os_[i] = _clamp(speeds, speeds_off, proc[j], speed[i])
        os_[j] = _clamp(speeds, speeds_off, proc[i], speed[j])
        return m
    k -= swaps

    # move-to-free moves: row major, free processors ascending
    moves = m * n_free
    if k < moves:
        r = k // n_free
        u = free[k % n_free]
        _copy_rows(m, app, lo, hi, proc, speed, oa, ol, oh, op, os_)
        op[r] = u
        os_[r] = _clamp(speeds, speeds_off, u, speed[r])
        return m
    k -= moves

    if interval_rule:
        # shift / merge over adjacent same-application interval pairs
        for r in range(m - 1):
            if app[r] != app[r + 1]:
                continue
            if lo[r] < hi[r]:  # give left's last stage to right
                if k == 0:
                    _copy_rows(
                        m, app, lo, hi, proc, speed, oa, ol, oh, op, os_
                    )
                    oh[r] = hi[r] - 1
                    ol[r + 1] = hi[r]
                    return m
                k -= 1
            if lo[r + 1] < hi[r + 1]:  # give right's first stage to left
                if k == 0:
                    _copy_rows(
                        m, app, lo, hi, proc, speed, oa, ol, oh, op, os_
                    )
                    oh[r] = lo[r + 1]
                    ol[r + 1] = lo[r + 1] + 1
                    return m
                k -= 1
            if k == 0:  # merge onto the left processor
                w = 0
                for q in range(m):
                    if q == r + 1:
                        continue
                    oa[w] = app[q]
                    ol[w] = lo[q]
                    oh[w] = hi[r + 1] if q == r else hi[q]
                    op[w] = proc[q]
                    os_[w] = speed[q]
                    w += 1
                return m - 1
            k -= 1

        # split moves: row major, cut ascending, free processors ascending
        if n_free > 0:
            for r in range(m):
                c = (hi[r] - lo[r]) * n_free
                if k < c:
                    cut = lo[r] + k // n_free
                    u = free[k % n_free]
                    for q in range(r + 1):
                        oa[q] = app[q]
                        ol[q] = lo[q]
                        oh[q] = hi[q]
                        op[q] = proc[q]
                        os_[q] = speed[q]
                    oh[r] = cut
                    oa[r + 1] = app[r]
                    ol[r + 1] = cut + 1
                    oh[r + 1] = hi[r]
                    op[r + 1] = u
                    os_[r + 1] = speeds[speeds_off[u + 1] - 1]
                    for q in range(r + 1, m):
                        oa[q + 1] = app[q]
                        ol[q + 1] = lo[q]
                        oh[q + 1] = hi[q]
                        op[q + 1] = proc[q]
                        os_[q + 1] = speed[q]
                    return m + 1
                k -= c

    return 0


@_jit
def _eval_candidate(
    capp,
    clo,
    chi,
    cproc,
    cspeed,
    mc,
    prefix,
    prefix_off,
    delta,
    delta_off,
    weights,
    input_sizes,
    bw_in,
    bw_out,
    bw_link,
    bw_tid,
    static,
    alpha,
    model,
    periods_out,
    latencies_out,
):
    """Criteria of one candidate's first ``mc`` rows: per-application
    periods/latencies into the ``*_out`` arrays, weighted global period
    and latency plus total energy returned.

    Operation order replicates ``evaluate_many`` exactly: per-row
    ``(prefix[hi+1] - prefix[lo]) / speed`` computation times, chain-linked
    bandwidths, max (overlap) or left-associated sum (no-overlap) cycles,
    ``input/bw + seq(t_comp) + seq(t_out)`` latencies with two separate
    left-to-right accumulators, and the energy as a stable
    processor-ascending sequential sum of ``static + speed**alpha``.
    """
    wperiod = _NEG_INF
    wlatency = _NEG_INF
    r = 0
    while r < mc:
        a = capp[r]
        e = r + 1
        while e < mc and capp[e] == a:
            e += 1
        po = prefix_off[a]
        do = delta_off[a]
        tid = bw_tid[a]
        period = _NEG_INF
        sum_comp = 0.0
        sum_out = 0.0
        first_in = 1.0
        for q in range(r, e):
            t_comp = (prefix[po + chi[q] + 1] - prefix[po + clo[q]]) / cspeed[q]
            if q == r:
                bwi = bw_in[a, cproc[q]]
                first_in = bwi
            else:
                bwi = bw_link[tid, cproc[q - 1], cproc[q]]
            t_in = delta[do + clo[q]] / bwi
            if q == e - 1:
                bwo = bw_out[a, cproc[q]]
            else:
                bwo = bw_link[tid, cproc[q], cproc[q + 1]]
            t_out = delta[do + chi[q] + 1] / bwo
            if model == 0:
                cyc = t_in
                if t_comp > cyc:
                    cyc = t_comp
                if t_out > cyc:
                    cyc = t_out
            else:
                cyc = t_in + t_comp + t_out
            if cyc > period:
                period = cyc
            sum_comp = sum_comp + t_comp
            sum_out = sum_out + t_out
        lat = input_sizes[a] / first_in + sum_comp + sum_out
        periods_out[a] = period
        latencies_out[a] = lat
        wp = weights[a] * period
        if wp > wperiod:
            wperiod = wp
        wl = weights[a] * lat
        if wl > wlatency:
            wlatency = wl
        r = e

    # Energy: stable insertion sort by processor replicates the batched
    # path's `np.lexsort((proc, cand))` ordering before the sequential sum.
    energy = 0.0
    order = np.empty(mc, np.int64)
    for q in range(mc):
        order[q] = q
    for q in range(1, mc):
        key = order[q]
        kp = cproc[key]
        w = q - 1
        while w >= 0 and cproc[order[w]] > kp:
            order[w + 1] = order[w]
            w -= 1
        order[w + 1] = key
    for q in range(mc):
        row = order[q]
        energy = energy + (static[cproc[row]] + cspeed[row] ** alpha)
    return wperiod, wlatency, energy


@_jit
def _score(
    crit,
    wperiod,
    wlatency,
    energy,
    th_global,
    pap,
    has_pap,
    pal,
    has_pal,
    periods,
    latencies,
    n_apps,
):
    """Penalized score: objective plus ``_PENALTY`` terms accumulated in
    ``score_values`` order (global period, latency, energy, then per-app
    periods and latencies, application index ascending).  ``-1.0`` in a
    threshold slot means no bound (real bounds are validated >= 0)."""
    if crit == 0:
        obj = wperiod
    elif crit == 1:
        obj = wlatency
    else:
        obj = energy
    pen = 0.0
    if th_global[0] >= 0.0 and wperiod > th_global[0]:
        pen = pen + (_PENALTY * (wperiod / th_global[0] - 1.0) + _PENALTY)
    if th_global[1] >= 0.0 and wlatency > th_global[1]:
        pen = pen + (_PENALTY * (wlatency / th_global[1] - 1.0) + _PENALTY)
    if th_global[2] >= 0.0 and energy > th_global[2]:
        pen = pen + (_PENALTY * (energy / th_global[2] - 1.0) + _PENALTY)
    if has_pap:
        for a in range(n_apps):
            if periods[a] > pap[a]:
                pen = pen + (_PENALTY * (periods[a] / pap[a] - 1.0) + _PENALTY)
    if has_pal:
        for a in range(n_apps):
            if latencies[a] > pal[a]:
                pen = pen + (
                    _PENALTY * (latencies[a] / pal[a] - 1.0) + _PENALTY
                )
    return obj + pen


@_jit
def _best_step(
    limit,
    current_score,
    app,
    lo,
    hi,
    proc,
    speed,
    free,
    speeds,
    speeds_off,
    interval_rule,
    prefix,
    prefix_off,
    delta,
    delta_off,
    weights,
    input_sizes,
    bw_in,
    bw_out,
    bw_link,
    bw_tid,
    static,
    alpha,
    model,
    crit,
    th_global,
    pap,
    has_pap,
    pal,
    has_pal,
    oa,
    ol,
    oh,
    op,
    os_,
    periods_tmp,
    latencies_tmp,
):
    """One full best-improvement scan: enumerate candidates ``0..limit-1``,
    evaluate and score each, and replay the sequential
    ``score < best - 1e-15`` accept rule.  Returns ``(best_index,
    best_score)`` with ``best_index == -1`` when no candidate improves."""
    n_apps = len(weights)
    best_index = -1
    best_score = current_score
    for i in range(limit):
        mc = _gen_candidate(
            i,
            app,
            lo,
            hi,
            proc,
            speed,
            free,
            speeds,
            speeds_off,
            interval_rule,
            oa,
            ol,
            oh,
            op,
            os_,
        )
        wp, wl, en = _eval_candidate(
            oa,
            ol,
            oh,
            op,
            os_,
            mc,
            prefix,
            prefix_off,
            delta,
            delta_off,
            weights,
            input_sizes,
            bw_in,
            bw_out,
            bw_link,
            bw_tid,
            static,
            alpha,
            model,
            periods_tmp,
            latencies_tmp,
        )
        s = _score(
            crit,
            wp,
            wl,
            en,
            th_global,
            pap,
            has_pap,
            pal,
            has_pal,
            periods_tmp,
            latencies_tmp,
            n_apps,
        )
        if s < best_score - 1e-15:
            best_score = s
            best_index = i
    return best_index, best_score


# ---------------------------------------------------------------------------
# Python-side plan and state
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompiledState:
    """One mapping as the five int64/float64 row columns the kernels eat,
    in canonical ``(app, lo)`` order."""

    app: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    proc: np.ndarray
    speed: np.ndarray

    def __len__(self) -> int:
        return len(self.app)


class CompiledPlan:
    """Flattened problem tables plus scratch buffers for the kernels.

    Built once per problem (memoized by :func:`plan_for`) from the same
    ``EvaluationContext._batch_tables()`` arrays that back
    ``evaluate_many``, so the two engines literally read the same
    numbers.  The scratch buffers make a plan single-threaded per
    process, matching how every solve path uses it (pool workers are
    processes).
    """

    __slots__ = (
        "n_apps",
        "n_procs",
        "interval_rule",
        "model",
        "alpha",
        "prefix",
        "prefix_off",
        "delta",
        "delta_off",
        "weights",
        "input_sizes",
        "bw_in",
        "bw_out",
        "bw_link",
        "bw_tid",
        "static",
        "speeds",
        "speeds_off",
        "_oa",
        "_ol",
        "_oh",
        "_op",
        "_os",
        "_periods",
        "_latencies",
        "_all_procs",
        "_last_score",
    )

    def __init__(self, problem, context=None) -> None:
        ctx = problem.evaluation_context(context)
        tables = ctx._batch_tables()
        platform = problem.platform
        self.n_apps = len(ctx.apps)
        self.n_procs = platform.n_processors
        self.interval_rule = (
            1 if problem.rule is MappingRule.INTERVAL else 0
        )
        self.model = 0 if ctx.model is CommunicationModel.OVERLAP else 1
        self.alpha = float(ctx._alpha)
        self.prefix = np.ascontiguousarray(tables["prefix"], dtype=np.float64)
        self.prefix_off = np.ascontiguousarray(
            tables["prefix_off"], dtype=np.int64
        )
        self.delta = np.ascontiguousarray(tables["delta"], dtype=np.float64)
        self.delta_off = np.ascontiguousarray(
            tables["delta_off"], dtype=np.int64
        )
        self.weights = np.ascontiguousarray(
            tables["weights"], dtype=np.float64
        )
        self.input_sizes = np.ascontiguousarray(
            tables["input_sizes"], dtype=np.float64
        )
        self.bw_in = np.ascontiguousarray(tables["bw_in"], dtype=np.float64)
        self.bw_out = np.ascontiguousarray(tables["bw_out"], dtype=np.float64)
        self.bw_link = np.ascontiguousarray(
            tables["bw_link"], dtype=np.float64
        )
        self.bw_tid = np.ascontiguousarray(
            tables["bw_link_tid"], dtype=np.int64
        )
        self.static = np.ascontiguousarray(ctx._static, dtype=np.float64)
        ladders = [platform.processor(u).speeds for u in range(self.n_procs)]
        self.speeds = np.array(
            [s for ladder in ladders for s in ladder], dtype=np.float64
        )
        self.speeds_off = np.zeros(self.n_procs + 1, dtype=np.int64)
        np.cumsum([len(ladder) for ladder in ladders], out=self.speeds_off[1:])
        # Scratch: a candidate never has more rows than processors + 1.
        size = self.n_procs + 1
        self._oa = np.empty(size, dtype=np.int64)
        self._ol = np.empty(size, dtype=np.int64)
        self._oh = np.empty(size, dtype=np.int64)
        self._op = np.empty(size, dtype=np.int64)
        self._os = np.empty(size, dtype=np.float64)
        self._periods = np.empty(self.n_apps, dtype=np.float64)
        self._latencies = np.empty(self.n_apps, dtype=np.float64)
        self._all_procs = np.arange(self.n_procs, dtype=np.int64)

    # -- state construction -------------------------------------------------
    def state_from(self, mapping: Mapping) -> CompiledState:
        """The kernel-side column state of a mapping."""
        columns = mapping_columns(mapping)
        return CompiledState(
            app=np.ascontiguousarray(
                columns.rows[:, 0].astype(np.int64)
            ),
            lo=np.ascontiguousarray(columns.lo.astype(np.int64)),
            hi=np.ascontiguousarray(columns.hi.astype(np.int64)),
            proc=np.ascontiguousarray(columns.proc.astype(np.int64)),
            speed=np.ascontiguousarray(columns.speed, dtype=np.float64),
        )

    def free_procs(self, state: CompiledState) -> np.ndarray:
        """Ascending array of processors not enrolled by ``state``."""
        return np.setdiff1d(
            self._all_procs, state.proc, assume_unique=False
        ).astype(np.int64)

    def materialize(self, state: CompiledState) -> Mapping:
        """The ``Mapping`` of a state -- only ever called for accepted
        candidates, mirroring ``CandidateBatch.materialize``."""
        return Mapping.from_assignments(
            Assignment(
                app=int(a), interval=(int(l), int(h)), proc=int(u), speed=s
            )
            for a, l, h, u, s in zip(
                state.app.tolist(),
                state.lo.tolist(),
                state.hi.tolist(),
                state.proc.tolist(),
                state.speed.tolist(),
            )
        )

    # -- thresholds ---------------------------------------------------------
    def criteria_arrays(self, criterion: Criterion, thresholds) -> tuple:
        """Kernel-shaped ``(crit, th_global, pap, has_pap, pal, has_pal)``
        for a criterion + thresholds pair (``-1.0`` = no bound)."""
        th_global = np.array(
            [
                -1.0 if thresholds.period is None else thresholds.period,
                -1.0 if thresholds.latency is None else thresholds.latency,
                -1.0 if thresholds.energy is None else thresholds.energy,
            ],
            dtype=np.float64,
        )
        if thresholds.per_app_period is not None:
            pap = np.asarray(thresholds.per_app_period, dtype=np.float64)
            has_pap = 1
        else:
            pap = np.zeros(self.n_apps, dtype=np.float64)
            has_pap = 0
        if thresholds.per_app_latency is not None:
            pal = np.asarray(thresholds.per_app_latency, dtype=np.float64)
            has_pal = 1
        else:
            pal = np.zeros(self.n_apps, dtype=np.float64)
            has_pal = 0
        return (_CRIT_CODES[criterion], th_global, pap, has_pap, pal, has_pal)

    # -- kernel drivers -----------------------------------------------------
    def count(self, state: CompiledState, free: np.ndarray) -> int:
        """Neighborhood size of ``state`` (no generation)."""
        return int(
            _count_neighbors(
                state.app,
                state.lo,
                state.hi,
                state.proc,
                state.speed,
                len(free),
                self.speeds,
                self.speeds_off,
                self.interval_rule,
            )
        )

    def best_step(
        self,
        state: CompiledState,
        free: np.ndarray,
        crit: tuple,
        current_score: float,
        limit: int,
    ) -> Tuple[int, float]:
        """One fused descent step over the first ``limit`` candidates;
        ``(-1, current_score)`` when none improves."""
        crit_code, th_global, pap, has_pap, pal, has_pal = crit
        best_index, best_score = _best_step(
            limit,
            float(current_score),
            state.app,
            state.lo,
            state.hi,
            state.proc,
            state.speed,
            free,
            self.speeds,
            self.speeds_off,
            self.interval_rule,
            self.prefix,
            self.prefix_off,
            self.delta,
            self.delta_off,
            self.weights,
            self.input_sizes,
            self.bw_in,
            self.bw_out,
            self.bw_link,
            self.bw_tid,
            self.static,
            self.alpha,
            self.model,
            crit_code,
            th_global,
            pap,
            has_pap,
            pal,
            has_pal,
            self._oa,
            self._ol,
            self._oh,
            self._op,
            self._os,
            self._periods,
            self._latencies,
        )
        return int(best_index), float(best_score)

    def _generate(self, state: CompiledState, free: np.ndarray, index: int):
        mc = int(
            _gen_candidate(
                index,
                state.app,
                state.lo,
                state.hi,
                state.proc,
                state.speed,
                free,
                self.speeds,
                self.speeds_off,
                self.interval_rule,
                self._oa,
                self._ol,
                self._oh,
                self._op,
                self._os,
            )
        )
        if mc == 0:
            raise IndexError(
                f"candidate index {index} out of range for this neighborhood"
            )
        return mc

    def take(
        self, state: CompiledState, free: np.ndarray, index: int
    ) -> CompiledState:
        """The accepted candidate ``index`` as a fresh state."""
        mc = self._generate(state, free, index)
        return CompiledState(
            app=self._oa[:mc].copy(),
            lo=self._ol[:mc].copy(),
            hi=self._oh[:mc].copy(),
            proc=self._op[:mc].copy(),
            speed=self._os[:mc].copy(),
        )

    def propose(
        self,
        state: CompiledState,
        free: np.ndarray,
        index: int,
        crit: tuple,
    ):
        """Score one sampled candidate (the annealing proposal path):
        ``(score, values)`` with ``values`` the scalar
        :class:`~repro.core.evaluation.CriteriaValues`, built exactly as
        ``BatchCriteria.select`` would."""
        from ..core.evaluation import CriteriaValues

        with _track("solve.neighborhood"):
            mc = self._generate(state, free, index)
        with _track("solve.kernel"):
            wp, wl, en = self._propose_eval(mc, crit)
        values = CriteriaValues(
            periods={a: float(t) for a, t in enumerate(self._periods)},
            latencies={a: float(v) for a, v in enumerate(self._latencies)},
            period=float(wp),
            latency=float(wl),
            energy=float(en),
        )
        return float(self._last_score), values

    def _propose_eval(self, mc: int, crit: tuple):
        """Evaluate + score the generated candidate (nopython calls)."""
        crit_code, th_global, pap, has_pap, pal, has_pal = crit
        wp, wl, en = _eval_candidate(
            self._oa,
            self._ol,
            self._oh,
            self._op,
            self._os,
            mc,
            self.prefix,
            self.prefix_off,
            self.delta,
            self.delta_off,
            self.weights,
            self.input_sizes,
            self.bw_in,
            self.bw_out,
            self.bw_link,
            self.bw_tid,
            self.static,
            self.alpha,
            self.model,
            self._periods,
            self._latencies,
        )
        self._last_score = _score(
            crit_code,
            wp,
            wl,
            en,
            th_global,
            pap,
            has_pap,
            pal,
            has_pal,
            self._periods,
            self._latencies,
            self.n_apps,
        )
        return wp, wl, en


def plan_for(problem, context=None) -> CompiledPlan:
    """The compiled plan of a problem, memoized per instance (same
    caching contract as ``EvaluationContext.for_problem``)."""
    attrs = getattr(problem, "__dict__", None)
    if attrs is not None:
        cached = attrs.get("_compiled_plan")
        if cached is not None:
            return cached
    key = id(problem)
    entry = _PLAN_CACHE.get(key)
    if entry is not None and entry[0]() is problem:
        return entry[1]
    plan = CompiledPlan(problem, context)
    try:
        object.__setattr__(problem, "_compiled_plan", plan)
    except (AttributeError, TypeError):
        pass
    try:
        ref = weakref.ref(problem)
    except TypeError:
        return plan
    _PLAN_CACHE[key] = (ref, plan)
    weakref.finalize(problem, _PLAN_CACHE.pop, key, None)
    return plan


_WARMED = False


def warmup() -> bool:
    """Trigger JIT compilation of every kernel on a tiny synthetic
    instance (Numba specializes on dtypes, which the synthetic arrays
    share with every real problem).  Idempotent; returns whether the
    compiled engine is available.  Called by pool-worker initializers so
    solves never pay the compile latency."""
    global _WARMED
    if not available():
        return False
    if _WARMED:
        return True
    app = np.array([0], dtype=np.int64)
    lo = np.array([0], dtype=np.int64)
    hi = np.array([1], dtype=np.int64)
    proc = np.array([0], dtype=np.int64)
    speed = np.array([1.0], dtype=np.float64)
    free = np.array([1], dtype=np.int64)
    speeds = np.array([1.0, 1.0], dtype=np.float64)
    speeds_off = np.array([0, 1, 2], dtype=np.int64)
    prefix = np.array([0.0, 1.0, 2.0], dtype=np.float64)
    off = np.array([0], dtype=np.int64)
    delta = np.array([1.0, 1.0, 1.0], dtype=np.float64)
    weights = np.array([1.0], dtype=np.float64)
    input_sizes = np.array([1.0], dtype=np.float64)
    bw_in = np.ones((1, 2), dtype=np.float64)
    bw_out = np.ones((1, 2), dtype=np.float64)
    bw_link = np.ones((1, 2, 2), dtype=np.float64)
    bw_tid = np.array([0], dtype=np.int64)
    static = np.zeros(2, dtype=np.float64)
    th_global = np.array([-1.0, -1.0, -1.0], dtype=np.float64)
    pap = np.zeros(1, dtype=np.float64)
    oa = np.empty(3, dtype=np.int64)
    ol = np.empty(3, dtype=np.int64)
    oh = np.empty(3, dtype=np.int64)
    op = np.empty(3, dtype=np.int64)
    os_ = np.empty(3, dtype=np.float64)
    periods = np.empty(1, dtype=np.float64)
    latencies = np.empty(1, dtype=np.float64)
    n = _count_neighbors(
        app, lo, hi, proc, speed, len(free), speeds, speeds_off, 1
    )
    _best_step(
        int(n),
        float("inf"),
        app,
        lo,
        hi,
        proc,
        speed,
        free,
        speeds,
        speeds_off,
        1,
        prefix,
        off,
        delta,
        off,
        weights,
        input_sizes,
        bw_in,
        bw_out,
        bw_link,
        bw_tid,
        static,
        2.0,
        0,
        0,
        th_global,
        pap,
        0,
        pap,
        0,
        oa,
        ol,
        oh,
        op,
        os_,
        periods,
        latencies,
    )
    _WARMED = True
    return True


def compile_for(problem, context=None) -> Optional[CompiledPlan]:
    """Build (and memoize) the plan for ``problem`` and pre-compile the
    kernels.  Returns the plan, or ``None`` -- after the once-per-process
    fallback warning -- when the compiled engine is unavailable or the
    problem shape is unsupported."""
    plan, _reason = acquire(problem, context)
    if plan is None:
        return None
    warmup()
    return plan
