"""Array-native neighborhood generation: candidate mappings as columns.

The local-search neighborhood of
:func:`repro.algorithms.heuristics.local_search.neighbors` materializes
one :class:`~repro.core.mapping.Mapping` (a tuple of frozen dataclass
rows, re-sorted on construction) per candidate -- thousands of Python
objects per hill-climbing step, each paying a full ``delta_evaluate``
call.  This module generates the *same* neighborhood, in the *same*
enumeration order, as a :class:`CandidateBatch`: compact NumPy column
arrays (per-assignment application id, interval bounds, processor id and
speed) with per-candidate row offsets, scored wholesale by
:meth:`repro.kernel.context.EvaluationContext.evaluate_many`.  Only the
one accepted candidate is ever materialized back into a ``Mapping``.

The six move kinds mirror the scalar generator exactly:

* ``mode``: one enrolled processor steps to an adjacent speed mode;
* ``swap``: two assignments exchange processors (speeds re-clamped);
* ``move``: one assignment relocates to a free processor;
* ``shift``: one stage crosses the boundary of two adjacent intervals;
* ``split``: one interval is cut in two, enrolling a free processor;
* ``merge``: two adjacent intervals fuse onto the first's processor.

``shift``/``split``/``merge`` are disabled under the one-to-one rule.
Candidate order is the scalar generator's order, so budget-truncated
scans and tie-breaking replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.mapping import Assignment, Mapping
from ..obs.spans import track as _track
from .context import mapping_columns

__all__ = [
    "CandidateBatch",
    "KIND_NAMES",
    "clamp_speed",
    "generate_neighborhood",
]

#: Candidate kind labels, indexed by the ``kinds`` codes of a batch.
KIND_NAMES: Tuple[str, ...] = (
    "mode",
    "swap",
    "move",
    "shift",
    "merge",
    "split",
)
_MODE, _SWAP, _MOVE, _SHIFT, _MERGE, _SPLIT = range(6)


@dataclass(frozen=True)
class CandidateBatch:
    """A stack of candidate mappings as column arrays.

    Candidate ``i`` owns rows ``starts[i] : starts[i + 1]`` of the five
    parallel row arrays; rows are in the canonical ``(app, lo)`` order,
    so each candidate is directly consumable by
    :meth:`~repro.kernel.context.EvaluationContext.evaluate_many`.
    """

    #: Per-row application index, shape ``(R,)``.
    app: np.ndarray
    #: Per-row inclusive interval bounds, shape ``(R,)`` each.
    lo: np.ndarray
    hi: np.ndarray
    #: Per-row processor index, shape ``(R,)``.
    proc: np.ndarray
    #: Per-row chosen speed, shape ``(R,)``.
    speed: np.ndarray
    #: Row offsets, shape ``(N + 1,)``: candidate ``i`` spans
    #: ``starts[i] : starts[i + 1]``.
    starts: np.ndarray
    #: Move-kind code of each candidate (index into :data:`KIND_NAMES`),
    #: shape ``(N,)``.
    kinds: np.ndarray

    def __len__(self) -> int:
        return len(self.starts) - 1

    def truncate(self, count: int) -> "CandidateBatch":
        """The batch of the first ``count`` candidates (enumeration
        order), as used by budget-limited scans."""
        if count >= len(self):
            return self
        end = int(self.starts[count])
        return CandidateBatch(
            app=self.app[:end],
            lo=self.lo[:end],
            hi=self.hi[:end],
            proc=self.proc[:end],
            speed=self.speed[:end],
            starts=self.starts[: count + 1],
            kinds=self.kinds[:count],
        )

    def single(self, i: int) -> "CandidateBatch":
        """A one-candidate view of candidate ``i`` (array slices, no
        copies) -- the sampling path of simulated annealing."""
        row_lo = int(self.starts[i])
        row_hi = int(self.starts[i + 1])
        rows = slice(row_lo, row_hi)
        return CandidateBatch(
            app=self.app[rows],
            lo=self.lo[rows],
            hi=self.hi[rows],
            proc=self.proc[rows],
            speed=self.speed[rows],
            starts=np.array([0, row_hi - row_lo], dtype=np.intp),
            kinds=self.kinds[i : i + 1],
        )

    def materialize(self, i: int) -> Mapping:
        """Build the one accepted candidate back into a ``Mapping``."""
        rows = slice(int(self.starts[i]), int(self.starts[i + 1]))
        return Mapping.from_assignments(
            Assignment(
                app=int(a), interval=(int(l), int(h)), proc=int(u), speed=s
            )
            for a, l, h, u, s in zip(
                self.app[rows].tolist(),
                self.lo[rows].tolist(),
                self.hi[rows].tolist(),
                self.proc[rows].tolist(),
                self.speed[rows].tolist(),
            )
        )


def clamp_speed(platform, proc: int, speed: float) -> float:
    """The processor's own mode closest to ``speed`` from above (or its
    fastest mode) -- the swap/move re-clamping rule.

    The single source of truth for both engines: the scalar generator
    (:func:`repro.algorithms.heuristics.local_search.neighbors`)
    delegates here, so the rule cannot drift between the batched and
    scalar neighborhoods.
    """
    processor = platform.processor(proc)
    if processor.has_speed(speed):
        return speed
    at_least = processor.slowest_speed_at_least(speed)
    return at_least if at_least is not None else processor.max_speed


class _Blocks:
    """Accumulator for the per-kind candidate blocks, in enumeration
    order."""

    def __init__(self) -> None:
        self.app: List[np.ndarray] = []
        self.lo: List[np.ndarray] = []
        self.hi: List[np.ndarray] = []
        self.proc: List[np.ndarray] = []
        self.speed: List[np.ndarray] = []
        self.counts: List[np.ndarray] = []
        self.kinds: List[np.ndarray] = []

    def add(self, kind, app, lo, hi, proc, speed, n_cands, rows_per) -> None:
        self.app.append(np.asarray(app, dtype=np.intp).ravel())
        self.lo.append(np.asarray(lo, dtype=np.intp).ravel())
        self.hi.append(np.asarray(hi, dtype=np.intp).ravel())
        self.proc.append(np.asarray(proc, dtype=np.intp).ravel())
        self.speed.append(np.asarray(speed, dtype=np.float64).ravel())
        self.counts.append(np.full(n_cands, rows_per, dtype=np.intp))
        self.kinds.append(np.full(n_cands, kind, dtype=np.uint8))

    def add_ragged(self, kinds, app, lo, hi, proc, speed, counts) -> None:
        self.app.append(np.array(app, dtype=np.intp))
        self.lo.append(np.array(lo, dtype=np.intp))
        self.hi.append(np.array(hi, dtype=np.intp))
        self.proc.append(np.array(proc, dtype=np.intp))
        self.speed.append(np.array(speed, dtype=np.float64))
        self.counts.append(np.array(counts, dtype=np.intp))
        self.kinds.append(np.array(kinds, dtype=np.uint8))

    def assemble(self) -> CandidateBatch:
        counts = (
            np.concatenate(self.counts)
            if self.counts
            else np.empty(0, dtype=np.intp)
        )
        starts = np.zeros(len(counts) + 1, dtype=np.intp)
        np.cumsum(counts, out=starts[1:])
        empty_i = np.empty(0, dtype=np.intp)
        return CandidateBatch(
            app=np.concatenate(self.app) if self.app else empty_i,
            lo=np.concatenate(self.lo) if self.lo else empty_i,
            hi=np.concatenate(self.hi) if self.hi else empty_i,
            proc=np.concatenate(self.proc) if self.proc else empty_i,
            speed=(
                np.concatenate(self.speed) if self.speed else np.empty(0)
            ),
            starts=starts,
            kinds=(
                np.concatenate(self.kinds)
                if self.kinds
                else np.empty(0, dtype=np.uint8)
            ),
        )


def generate_neighborhood(problem, mapping: Mapping) -> CandidateBatch:
    """All neighbors of a valid mapping, as one :class:`CandidateBatch`.

    Parameters
    ----------
    problem:
        The :class:`~repro.core.problem.ProblemInstance` supplying the
        platform (speed ladders, free processors) and the mapping rule.
    mapping:
        The current valid mapping.

    Returns
    -------
    CandidateBatch
        Every candidate of the scalar generator
        (:func:`repro.algorithms.heuristics.local_search.neighbors`), in
        the same enumeration order, each one a valid mapping.
    """
    with _track("solve.neighborhood"):
        return _generate_neighborhood(problem, mapping)


def _generate_neighborhood(problem, mapping: Mapping) -> CandidateBatch:
    from ..core.types import MappingRule

    columns = mapping_columns(mapping)
    m = len(mapping.assignments)
    base_app = columns.rows[:, 0].astype(np.intp)
    base_lo = columns.lo
    base_hi = columns.hi
    base_proc = columns.proc
    base_speed = columns.speed
    platform = problem.platform
    used = set(base_proc.tolist())
    free = [u for u in range(platform.n_processors) if u not in used]
    interval_rule = problem.rule is MappingRule.INTERVAL
    blocks = _Blocks()

    def tiled(base: np.ndarray, count: int) -> np.ndarray:
        return np.tile(base, (count, 1))

    speed_list = base_speed.tolist()
    proc_list = base_proc.tolist()

    # mode moves -------------------------------------------------------
    mode_idx: List[int] = []
    mode_speed: List[float] = []
    for idx in range(m):
        speeds = platform.processor(proc_list[idx]).speeds
        s = speed_list[idx]
        pos = min(range(len(speeds)), key=lambda i: abs(speeds[i] - s))
        for new_pos in (pos - 1, pos + 1):
            if 0 <= new_pos < len(speeds):
                mode_idx.append(idx)
                mode_speed.append(speeds[new_pos])
    if mode_idx:
        k = len(mode_idx)
        speed_rows = tiled(base_speed, k)
        speed_rows[np.arange(k), mode_idx] = mode_speed
        blocks.add(
            _MODE,
            tiled(base_app, k),
            tiled(base_lo, k),
            tiled(base_hi, k),
            tiled(base_proc, k),
            speed_rows,
            k,
            m,
        )

    # swap moves -------------------------------------------------------
    swap_i: List[int] = []
    swap_j: List[int] = []
    swap_speed_i: List[float] = []
    swap_speed_j: List[float] = []
    for i in range(m):
        for j in range(i + 1, m):
            swap_i.append(i)
            swap_j.append(j)
            swap_speed_i.append(
                clamp_speed(platform, proc_list[j], speed_list[i])
            )
            swap_speed_j.append(
                clamp_speed(platform, proc_list[i], speed_list[j])
            )
    if swap_i:
        k = len(swap_i)
        rows_k = np.arange(k)
        proc_rows = tiled(base_proc, k)
        speed_rows = tiled(base_speed, k)
        proc_rows[rows_k, swap_i] = base_proc[swap_j]
        proc_rows[rows_k, swap_j] = base_proc[swap_i]
        speed_rows[rows_k, swap_i] = swap_speed_i
        speed_rows[rows_k, swap_j] = swap_speed_j
        blocks.add(
            _SWAP,
            tiled(base_app, k),
            tiled(base_lo, k),
            tiled(base_hi, k),
            proc_rows,
            speed_rows,
            k,
            m,
        )

    # move-to-free moves -----------------------------------------------
    if free:
        move_idx: List[int] = []
        move_proc: List[int] = []
        move_speed: List[float] = []
        for idx in range(m):
            for u in free:
                move_idx.append(idx)
                move_proc.append(u)
                move_speed.append(
                    clamp_speed(platform, u, speed_list[idx])
                )
        k = len(move_idx)
        rows_k = np.arange(k)
        proc_rows = tiled(base_proc, k)
        speed_rows = tiled(base_speed, k)
        proc_rows[rows_k, move_idx] = move_proc
        speed_rows[rows_k, move_idx] = move_speed
        blocks.add(
            _MOVE,
            tiled(base_app, k),
            tiled(base_lo, k),
            tiled(base_hi, k),
            proc_rows,
            speed_rows,
            k,
            m,
        )

    if not interval_rule:
        return blocks.assemble()

    # shift / merge moves over adjacent interval pairs -----------------
    # These two kinds interleave per pair in the scalar enumeration and
    # have different row counts (m vs m - 1), so the block is assembled
    # candidate by candidate; the count is at most 3 * (m - A).
    app_l = base_app.tolist()
    lo_l = base_lo.tolist()
    hi_l = base_hi.tolist()
    sm_kinds: List[int] = []
    sm_app: List[int] = []
    sm_lo: List[int] = []
    sm_hi: List[int] = []
    sm_proc: List[int] = []
    sm_speed: List[float] = []
    sm_counts: List[int] = []

    def emit(kind: int, rows) -> None:
        sm_kinds.append(kind)
        sm_counts.append(len(rows))
        for a, l, h, u, s in rows:
            sm_app.append(a)
            sm_lo.append(l)
            sm_hi.append(h)
            sm_proc.append(u)
            sm_speed.append(s)

    base_rows = list(
        zip(app_l, lo_l, hi_l, proc_list, speed_list)
    )
    for ri in range(m - 1):
        if app_l[ri] != app_l[ri + 1]:
            continue
        l_lo, l_hi = lo_l[ri], hi_l[ri]
        r_lo, r_hi = lo_l[ri + 1], hi_l[ri + 1]
        left = base_rows[ri]
        right = base_rows[ri + 1]
        prefix = base_rows[:ri]
        suffix = base_rows[ri + 2 :]
        if l_lo < l_hi:  # give left's last stage to right
            emit(
                _SHIFT,
                prefix
                + [
                    (left[0], l_lo, l_hi - 1, left[3], left[4]),
                    (right[0], l_hi, r_hi, right[3], right[4]),
                ]
                + suffix,
            )
        if r_lo < r_hi:  # give right's first stage to left
            emit(
                _SHIFT,
                prefix
                + [
                    (left[0], l_lo, r_lo, left[3], left[4]),
                    (right[0], r_lo + 1, r_hi, right[3], right[4]),
                ]
                + suffix,
            )
        emit(  # merge onto the left processor
            _MERGE,
            prefix + [(left[0], l_lo, r_hi, left[3], left[4])] + suffix,
        )
    if sm_kinds:
        blocks.add_ragged(
            sm_kinds, sm_app, sm_lo, sm_hi, sm_proc, sm_speed, sm_counts
        )

    # split moves ------------------------------------------------------
    if free:
        split_idx: List[int] = []
        split_cut: List[int] = []
        split_proc: List[int] = []
        split_speed: List[float] = []
        for idx in range(m):
            lo_v, hi_v = lo_l[idx], hi_l[idx]
            if lo_v == hi_v:
                continue
            for cut in range(lo_v, hi_v):
                for u in free:
                    split_idx.append(idx)
                    split_cut.append(cut)
                    split_proc.append(u)
                    split_speed.append(platform.processor(u).max_speed)
        if split_idx:
            k = len(split_idx)
            idx_arr = np.asarray(split_idx, dtype=np.intp)
            # Gather map: slot t copies base row t before the insertion
            # point and base row t - 1 after it; the inserted slot
            # (idx + 1) starts as a copy of the split row and is then
            # overwritten field by field.
            slots = np.arange(m + 1)[None, :]
            take = np.where(slots <= idx_arr[:, None], slots, slots - 1)
            app_rows = base_app[take]
            lo_rows = base_lo[take]
            hi_rows = base_hi[take]
            proc_rows = base_proc[take]
            speed_rows = base_speed[take]
            flat_rows = np.arange(k)
            hi_rows[flat_rows, idx_arr] = split_cut
            lo_rows[flat_rows, idx_arr + 1] = np.asarray(split_cut) + 1
            proc_rows[flat_rows, idx_arr + 1] = split_proc
            speed_rows[flat_rows, idx_arr + 1] = split_speed
            blocks.add(
                _SPLIT,
                app_rows,
                lo_rows,
                hi_rows,
                proc_rows,
                speed_rows,
                k,
                m + 1,
            )

    return blocks.assemble()
