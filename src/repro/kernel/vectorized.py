"""Whole-table builders for the dynamic-programming solvers.

The single-application DPs of Theorems 3, 15/16 and 18/21 all start by
tabulating a quantity over every stage interval ``[j, i-1]`` (cycle-time,
latency segment cost, cheapest feasible energy).  Built stage by stage in
Python these tables are the dominant ``O(n^2)`` cost of each solver call;
here they are produced as single NumPy broadcasts over the prefix-sum and
data-size arrays of :func:`repro.kernel.context.app_arrays`.

Index convention (shared with the DP loops): tables have shape
``(n, n + 1)`` and entry ``[j, i]`` describes stages ``j .. i-1``; the
triangle ``i <= j`` is filled with ``+inf`` so an accidental read can never
look like a valid candidate.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.application import Application
from ..core.energy import EnergyModel
from ..core.objectives import threshold_ceiling
from ..core.types import CommunicationModel
from .context import app_arrays

__all__ = [
    "interval_cycle_matrix",
    "interval_energy_table",
    "latency_segment_matrix",
    "weighted_cycle_candidates",
]


def _invalid_mask(n: int) -> np.ndarray:
    """Boolean mask of the unusable ``i <= j`` triangle of a table."""
    return np.arange(n + 1)[None, :] <= np.arange(n)[:, None]


def interval_cycle_matrix(
    app: Application,
    speed: float,
    bandwidth: float,
    model: CommunicationModel,
) -> np.ndarray:
    """Cycle-times of every interval at one speed with homogeneous links.

    ``C[j, i]`` is the cycle-time of stages ``j .. i-1`` on a processor at
    ``speed`` with incoming/outgoing links of ``bandwidth`` -- exactly
    :func:`repro.algorithms.interval_period.interval_cycle` evaluated over
    the whole table at once.

    Parameters
    ----------
    app:
        The application whose intervals are tabulated.
    speed:
        Processor speed ``s`` (all intervals evaluated at this mode).
    bandwidth:
        Bandwidth of every incoming/outgoing link.
    model:
        Communication model: ``OVERLAP`` takes the max of the three
        activity times (Equation (3)), ``NO_OVERLAP`` their sum
        (Equation (4)).

    Returns
    -------
    numpy.ndarray
        Shape ``(n, n + 1)`` table; the invalid ``i <= j`` triangle is
        ``+inf``.
    """
    prefix, delta = app_arrays(app)
    n = app.n_stages
    t_comp = (prefix[None, :] - prefix[:n, None]) / speed
    t_in = (delta[:n] / bandwidth)[:, None]
    t_out = (delta / bandwidth)[None, :]
    if model is CommunicationModel.OVERLAP:
        table = np.maximum(np.maximum(t_in, t_comp), t_out)
    else:
        table = t_in + t_comp + t_out
    table[_invalid_mask(n)] = math.inf
    return table


def latency_segment_matrix(
    app: Application, speed: float, bandwidth: float
) -> np.ndarray:
    """Latency contribution of every interval (Equation (5) summand).

    ``S[j, i] = sum_{k in j..i-1} w_k / speed + delta_i / bandwidth`` --
    the term added per interval by the Theorem 15 latency DP.

    Parameters
    ----------
    app:
        The application whose intervals are tabulated.
    speed:
        Processor speed used for the computation term.
    bandwidth:
        Bandwidth of the outgoing link (the ``delta_i`` transfer).

    Returns
    -------
    numpy.ndarray
        Shape ``(n, n + 1)`` table; the invalid ``i <= j`` triangle is
        ``+inf``.
    """
    prefix, delta = app_arrays(app)
    n = app.n_stages
    table = (prefix[None, :] - prefix[:n, None]) / speed + (
        delta / bandwidth
    )[None, :]
    table[_invalid_mask(n)] = math.inf
    return table


def interval_energy_table(
    app: Application,
    speed_set: Sequence[float],
    static_energy: float,
    bandwidth: float,
    model: CommunicationModel,
    period_bound: float,
    energy_model: EnergyModel,
) -> Tuple[np.ndarray, np.ndarray]:
    """Cheapest feasible mode and energy of every interval (Theorem 18).

    For each interval the *slowest* mode whose cycle-time meets
    ``period_bound`` is selected (dynamic energy increases with speed, so
    slowest feasible = cheapest feasible), with
    ``energy = E_stat + s^alpha``.

    Parameters
    ----------
    app:
        The application whose intervals are tabulated.
    speed_set:
        The processor's available speeds (DVFS modes).
    static_energy:
        Static energy ``E_stat`` of the processor.
    bandwidth:
        Bandwidth of every incoming/outgoing link.
    model:
        Communication model used for the feasibility cycle-times.
    period_bound:
        Period threshold each interval must meet.
    energy_model:
        Dynamic-energy exponent (Section 3.5).

    Returns
    -------
    (energy, speed) : tuple of numpy.ndarray
        Two shape ``(n, n + 1)`` tables; infeasible intervals get
        ``energy = inf`` and ``speed = 0``.
    """
    n = app.n_stages
    threshold = threshold_ceiling(period_bound)
    energy = np.full((n, n + 1), math.inf)
    chosen = np.zeros((n, n + 1))
    unset = np.ones((n, n + 1), dtype=bool)
    for s in sorted(speed_set):
        cycle = interval_cycle_matrix(app, s, bandwidth, model)
        take = unset & (cycle <= threshold)
        if take.any():
            chosen[take] = s
            energy[take] = static_energy + energy_model.dynamic(s)
            unset &= ~take
            if not unset[~_invalid_mask(n)].any():
                break
    energy[_invalid_mask(n)] = math.inf
    chosen[_invalid_mask(n)] = 0.0
    return energy, chosen


def weighted_cycle_candidates(
    app: Application,
    speeds: Sequence[float],
    bandwidth: float,
    model: CommunicationModel,
    *,
    weight: Optional[float] = None,
) -> np.ndarray:
    """All weighted interval cycle-times of one application.

    For each speed in ``speeds`` and each interval ``[lo, hi]`` this is
    ``W_a * combine(delta_lo / b, work(lo, hi) / s, delta_{hi+1} / b)`` --
    the candidate-period superset swept by the Pareto-front and binary
    search drivers.

    Parameters
    ----------
    app:
        The application whose intervals are enumerated.
    speeds:
        Speeds to tabulate (typically the union of platform modes).
    bandwidth:
        Bandwidth of every link.
    model:
        Communication model combining the three activity times.
    weight:
        Priority weight ``W_a``; defaults to the application's own.

    Returns
    -------
    numpy.ndarray
        Sorted, deduplicated 1-D array of the finite, strictly positive
        weighted cycle-times.
    """
    n = app.n_stages
    w = app.weight if weight is None else weight
    chunks = []
    for s in speeds:
        cycle = interval_cycle_matrix(app, s, bandwidth, model)
        chunks.append(cycle[~_invalid_mask(n)])
    values = w * np.unique(np.concatenate(chunks))
    return values[np.isfinite(values) & (values > 0)]
