"""Vectorized evaluation kernel (NumPy-backed).

Every solver and heuristic in the library bottoms out in the same three
criteria formulas (Equations (3)-(6)): interval cycle-times, chain
latencies and enrolled-processor energies.  This package centralizes them
as a data-parallel *cost-model kernel*:

* :class:`EvaluationContext` -- precomputed per-application prefix-sum work
  arrays, data-size vectors and bandwidth tables for one ``(apps,
  platform)`` pair (memoized per problem instance via
  :meth:`~EvaluationContext.for_problem`), with O(1) ``work_sum`` /
  interval-size lookups, a vectorized
  :meth:`~EvaluationContext.evaluate` over whole mappings, incremental
  :meth:`~EvaluationContext.delta_evaluate` after local moves, and
  batched :meth:`~EvaluationContext.evaluate_many` over stacked
  candidate arrays;
* :mod:`repro.kernel.neighborhood` -- the array-native neighborhood
  engine: the whole local-search move set of a mapping generated as one
  :class:`CandidateBatch` of column arrays (scored wholesale by
  ``evaluate_many``), in the scalar generator's enumeration order;
* :mod:`repro.kernel.vectorized` -- whole-table builders (interval
  cycle-time matrices, latency segment costs, cheapest-feasible-mode energy
  tables) consumed by the dynamic-programming solvers;
* :mod:`repro.kernel.compiled` -- the optional Numba ``@njit`` backend
  fusing neighborhood generation, evaluation, scoring and the accept
  replay into one nopython call per hill-climb step, with graceful
  fallback to the batched path when Numba is absent.

The scalar reference implementations live in :mod:`repro.core.evaluation`
(``evaluate_scalar`` and friends); property tests assert the two paths
agree to within 1e-9 relative tolerance on random instances.
"""

from . import compiled
from .context import BatchCriteria, EvaluationContext, attach_kernel_arrays
from .neighborhood import CandidateBatch, generate_neighborhood
from .vectorized import (
    interval_cycle_matrix,
    interval_energy_table,
    latency_segment_matrix,
    weighted_cycle_candidates,
)

__all__ = [
    "BatchCriteria",
    "CandidateBatch",
    "compiled",
    "EvaluationContext",
    "attach_kernel_arrays",
    "generate_neighborhood",
    "interval_cycle_matrix",
    "interval_energy_table",
    "latency_segment_matrix",
    "weighted_cycle_candidates",
]
