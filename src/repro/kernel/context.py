"""The shared evaluation context: precomputed arrays for one problem.

An :class:`EvaluationContext` binds one ``(apps, platform)`` pair and
precomputes everything the criteria formulas (Equations (3)-(6)) need:

* per-application prefix sums of stage works (O(1) ``work_sum``);
* per-application data-size vectors ``delta_0 .. delta_n`` (O(1) interval
  input/output sizes);
* per-application bandwidth tables resolved once against the platform's
  link dictionaries (virtual in/out links and the full processor-pair
  matrix), so mapping evaluation never touches a Python dict.

On top of those it offers :meth:`evaluate` (whole-mapping criteria in a
handful of NumPy operations) and :meth:`delta_evaluate` (criteria after a
local move, recomputing only the applications whose assignments changed --
the hot path of hill climbing and simulated annealing).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.application import Application
from ..core.energy import DEFAULT_ENERGY_MODEL, EnergyModel
from ..core.evaluation import CriteriaValues
from ..core.exceptions import InvalidApplicationError, InvalidMappingError
from ..core.mapping import Mapping
from ..core.platform import Platform
from ..core.types import CommunicationModel, Interval
from ..obs.spans import track as _track

__all__ = [
    "BatchCriteria",
    "EvaluationContext",
    "app_arrays",
    "attach_kernel_arrays",
    "mapping_columns",
    "segment_sums",
]


def _seq_sum(values: np.ndarray) -> float:
    """Strict left-to-right sequential sum, starting from ``0.0``.

    The kernel's summation primitive: NumPy's ``ndarray.sum`` uses
    pairwise summation, whose rounding depends on the segment length, so
    a batched engine summing many chains at once could never reproduce
    it bit-for-bit.  Sequential accumulation is reproducible from both
    the scalar and the batched side (see :func:`segment_sums`) and
    matches the pure-Python reference ``evaluate_scalar``, which also
    accumulates left to right.
    """
    total = 0.0
    for v in values.tolist():
        total += v
    return total


def segment_sums(
    values: np.ndarray, seg_ids: np.ndarray, seg_pos: np.ndarray, n_segs: int
) -> np.ndarray:
    """Per-segment strict-sequential sums, vectorized across segments.

    Parameters
    ----------
    values:
        Flat array of the summands.
    seg_ids:
        Segment index of each summand.
    seg_pos:
        0-based position of each summand inside its segment.
    n_segs:
        Number of segments.

    Returns
    -------
    numpy.ndarray
        Shape ``(n_segs,)`` array where entry ``k`` is the left-to-right
        sequential sum (``0.0 + v_0 + v_1 + ...``) of segment ``k`` --
        bit-identical to :func:`_seq_sum` over each segment.  Segments
        shorter than the longest one are padded with ``+0.0``, which is
        exact for the non-negative activity times and energies summed
        here.
    """
    if len(values) == 0:
        return np.zeros(n_segs)
    width = int(seg_pos.max()) + 1
    padded = np.zeros((n_segs, width))
    padded[seg_ids, seg_pos] = values
    totals = np.zeros(n_segs)
    for j in range(width):
        totals += padded[:, j]
    return totals


#: ``for_problem`` fallback memo for problems that refuse attribute
#: writes: ``id(problem) -> (weakref, context)``, evicted by a
#: ``weakref.finalize`` when the problem dies (the weakref also guards
#: against id reuse).
_CONTEXT_CACHE: Dict[int, Tuple["weakref.ref", "EvaluationContext"]] = {}


@dataclass(frozen=True)
class BatchCriteria:
    """Criteria of ``N`` candidate mappings, as column vectors.

    The batched counterpart of
    :class:`~repro.core.evaluation.CriteriaValues`, produced by
    :meth:`EvaluationContext.evaluate_many`: per-candidate arrays instead
    of scalars, with the per-application values as ``(N, A)`` matrices
    (column ``a`` = application ``a``).  Entry ``i`` is bit-identical to
    ``EvaluationContext.evaluate`` of the ``i``-th candidate.
    """

    #: Unweighted per-application periods, shape ``(N, A)``.
    periods: np.ndarray
    #: Unweighted per-application latencies, shape ``(N, A)``.
    latencies: np.ndarray
    #: Weighted global periods ``max_a W_a * T_a``, shape ``(N,)``.
    period: np.ndarray
    #: Weighted global latencies, shape ``(N,)``.
    latency: np.ndarray
    #: Total platform energies, shape ``(N,)``.
    energy: np.ndarray

    def __len__(self) -> int:
        return len(self.period)

    def select(self, i: int) -> CriteriaValues:
        """The scalar :class:`~repro.core.evaluation.CriteriaValues` of
        candidate ``i`` (bit-identical to a fresh ``evaluate`` call)."""
        return CriteriaValues(
            periods={
                a: float(t) for a, t in enumerate(self.periods[i])
            },
            latencies={
                a: float(v) for a, v in enumerate(self.latencies[i])
            },
            period=float(self.period[i]),
            latency=float(self.latency[i]),
            energy=float(self.energy[i]),
        )


def app_arrays(app: Application) -> Tuple[np.ndarray, np.ndarray]:
    """The NumPy form of one application: ``(prefix, delta)``.

    The arrays are memoized on the application instance, so every
    context, solver and table builder shares one copy.

    Parameters
    ----------
    app:
        The application to convert.

    Returns
    -------
    (prefix, delta) : tuple of numpy.ndarray
        ``prefix`` has shape ``(n + 1,)`` with ``prefix[i]`` the total
        work of stages ``0 .. i-1``; ``delta`` has shape ``(n + 1,)``
        with ``delta[i]`` the size of the data consumed by stage ``i``
        (``delta[n]`` is the final output size).  Both are read-only.
    """
    cached = getattr(app, "_kernel_arrays", None)
    if cached is not None:
        return cached
    prefix = np.asarray(app._work_prefix, dtype=np.float64)
    delta = np.empty(app.n_stages + 1, dtype=np.float64)
    delta[0] = app.input_data_size
    for i, stage in enumerate(app.stages):
        delta[i + 1] = stage.output_size
    prefix.setflags(write=False)
    delta.setflags(write=False)
    arrays = (prefix, delta)
    object.__setattr__(app, "_kernel_arrays", arrays)
    return arrays


def attach_kernel_arrays(
    app: Application, prefix: np.ndarray, delta: np.ndarray
) -> None:
    """Install precomputed kernel arrays on an application.

    The zero-copy entry point of the shared-memory transport
    (:mod:`repro.service.transport`): a worker that reconstructed ``app``
    from a shared segment attaches the segment's work-prefix and
    data-size *views* here, so every :class:`EvaluationContext` built for
    the application reads the shared buffer directly instead of
    re-materializing the arrays from Python floats.  The caller
    guarantees the views are bit-identical to what :func:`app_arrays`
    would compute (the sender produced them from the same
    ``Application`` state); shapes are validated, a mismatch raises.

    Parameters
    ----------
    app:
        The application to annotate.
    prefix:
        Shape ``(n + 1,)`` work-prefix sums (``prefix[0] == 0.0``).
    delta:
        Shape ``(n + 1,)`` data sizes (input size, then output sizes).

    Raises
    ------
    InvalidApplicationError
        When either array's shape does not match the application.
    """
    prefix = np.asarray(prefix, dtype=np.float64)
    delta = np.asarray(delta, dtype=np.float64)
    n = app.n_stages
    if prefix.shape != (n + 1,) or delta.shape != (n + 1,):
        raise InvalidApplicationError(
            f"kernel arrays of shapes {prefix.shape}/{delta.shape} do not "
            f"match an application with {n} stages"
        )
    if prefix.flags.writeable:
        prefix = prefix.view()
        prefix.setflags(write=False)
    if delta.flags.writeable:
        delta = delta.view()
        delta.setflags(write=False)
    object.__setattr__(app, "_kernel_arrays", (prefix, delta))


class _MappingColumns:
    """Column-oriented view of a mapping's assignments.

    Built once per (immutable) :class:`~repro.core.mapping.Mapping` and
    cached on the instance: ``rows`` is the ``(m, 5)`` matrix of
    ``(app, lo, hi, proc, speed)`` rows in canonical order, the remaining
    attributes are typed column views, and ``slices`` maps each
    application index to its contiguous row range.
    """

    __slots__ = ("rows", "lo", "hi", "proc", "speed", "slices")

    def __init__(self, mapping: Mapping) -> None:
        assignments = mapping.assignments
        m = len(assignments)
        rows = np.array(
            [
                [x.app, x.interval[0], x.interval[1], x.proc, x.speed]
                for x in assignments
            ],
            dtype=np.float64,
        ).reshape(m, 5)
        if m == 0:
            self.rows = rows
            self.lo = self.hi = self.proc = rows[:, 0].astype(np.intp)
            self.speed = rows[:, 0]
            self.slices = {}
            return
        app_col = rows[:, 0].astype(np.intp)
        self.rows = rows
        self.lo = rows[:, 1].astype(np.intp)
        self.hi = rows[:, 2].astype(np.intp)
        self.proc = rows[:, 3].astype(np.intp)
        self.speed = rows[:, 4]
        # Assignments are canonically sorted by (app, lo): each app is a
        # contiguous block of rows.
        breaks = np.flatnonzero(app_col[1:] != app_col[:-1]) + 1
        starts = [0, *breaks.tolist()]
        ends = [*breaks.tolist(), m]
        self.slices: Dict[int, slice] = {
            int(app_col[s]): slice(s, e) for s, e in zip(starts, ends)
        }


def mapping_columns(mapping: Mapping) -> _MappingColumns:
    """The cached column view of a mapping (built on first access)."""
    columns = mapping.__dict__.get("_kernel_columns")
    if columns is None:
        columns = _MappingColumns(mapping)
        object.__setattr__(mapping, "_kernel_columns", columns)
    return columns


class EvaluationContext:
    """Vectorized criteria evaluation for one ``(apps, platform)`` pair.

    Parameters
    ----------
    apps:
        The concurrent applications (same indexing as everywhere else).
    platform:
        The target platform.
    model:
        Communication model used by :meth:`evaluate` (Equations (3)/(4)).
    energy_model:
        Energy exponent used by :meth:`evaluate` (Section 3.5).
    """

    __slots__ = (
        "apps",
        "platform",
        "model",
        "energy_model",
        "_prefix",
        "_delta",
        "_static",
        "_alpha",
        "_bw_in",
        "_bw_out",
        "_bw_link",
        "_batch",
    )

    def __init__(
        self,
        apps: Sequence[Application],
        platform: Platform,
        *,
        model: CommunicationModel = CommunicationModel.OVERLAP,
        energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    ) -> None:
        self.apps: Tuple[Application, ...] = tuple(apps)
        self.platform = platform
        self.model = model
        self.energy_model = energy_model
        arrays = [app_arrays(app) for app in self.apps]
        self._prefix = [a[0] for a in arrays]
        self._delta = [a[1] for a in arrays]
        self._static = np.array(
            [proc.static_energy for proc in platform.processors]
        )
        self._alpha = energy_model.alpha
        # Bandwidth tables are built lazily per application: the full
        # processor-pair matrix is O(p^2) and many workloads only ever
        # touch a few applications.
        self._bw_in: Dict[int, np.ndarray] = {}
        self._bw_out: Dict[int, np.ndarray] = {}
        self._bw_link: Dict[int, np.ndarray] = {}
        # Flattened per-application tables for evaluate_many, built on
        # first batched call (they materialize every bandwidth table).
        self._batch: Dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_problem(cls, problem) -> "EvaluationContext":
        """The context matching a problem instance, memoized per instance.

        Repeated calls with the same ``problem`` object return the same
        context instead of rebuilding the prefix-sum and bandwidth
        tables: the context is stored on the instance itself (the
        primary, O(1) path) and in a weakref-evicted module cache for
        objects that refuse attribute writes.  Lifetime is tied to the
        problem either way -- dropping the problem drops its tables.

        Parameters
        ----------
        problem:
            A :class:`~repro.core.problem.ProblemInstance`; its
            applications, platform, communication model and energy model
            are adopted unchanged.

        Returns
        -------
        EvaluationContext
        """
        attrs = getattr(problem, "__dict__", None)
        if attrs is not None:
            cached = attrs.get("_eval_context")
            if cached is not None:
                return cached
        key = id(problem)
        entry = _CONTEXT_CACHE.get(key)
        if entry is not None and entry[0]() is problem:
            return entry[1]
        context = cls(
            problem.apps,
            problem.platform,
            model=problem.model,
            energy_model=problem.energy_model,
        )
        try:
            object.__setattr__(problem, "_eval_context", context)
        except (AttributeError, TypeError):
            pass
        try:
            ref = weakref.ref(problem)
        except TypeError:
            return context
        _CONTEXT_CACHE[key] = (ref, context)
        weakref.finalize(problem, _CONTEXT_CACHE.pop, key, None)
        return context

    # ------------------------------------------------------------------
    # O(1) scalar lookups
    # ------------------------------------------------------------------
    def work_sum(self, app_index: int, lo: int, hi: int) -> float:
        """Total work of stages ``lo .. hi`` (inclusive) of one application.

        Parameters
        ----------
        app_index:
            Index of the application.
        lo, hi:
            Inclusive 0-based stage interval bounds.

        Returns
        -------
        float
            ``sum_{k=lo..hi} w_k``, in O(1) via the prefix sums.

        Raises
        ------
        InvalidApplicationError
            When the interval is out of range.
        """
        prefix = self._prefix[app_index]
        if not 0 <= lo <= hi < len(prefix) - 1:
            raise InvalidApplicationError(
                f"invalid stage interval {(lo, hi)!r} for "
                f"{len(prefix) - 1} stages"
            )
        return float(prefix[hi + 1] - prefix[lo])

    def interval_input_size(self, app_index: int, interval: Interval) -> float:
        """Size of the data entering interval ``[lo, hi]`` (``delta_{lo}``)."""
        lo, hi = interval
        self._check_interval(app_index, lo, hi)
        return float(self._delta[app_index][lo])

    def interval_output_size(self, app_index: int, interval: Interval) -> float:
        """Size of the data leaving interval ``[lo, hi]`` (``delta_{hi+1}``)."""
        lo, hi = interval
        self._check_interval(app_index, lo, hi)
        return float(self._delta[app_index][hi + 1])

    def _check_interval(self, app_index: int, lo: int, hi: int) -> None:
        n = len(self._prefix[app_index]) - 1
        if not 0 <= lo <= hi < n:
            raise InvalidApplicationError(
                f"invalid stage interval {(lo, hi)!r} for {n} stages"
            )

    # ------------------------------------------------------------------
    # Bandwidth tables
    # ------------------------------------------------------------------
    def input_bandwidths(self, app_index: int) -> np.ndarray:
        """``bw[u]`` = bandwidth of the virtual link ``Pin_a -> P_u``."""
        table = self._bw_in.get(app_index)
        if table is None:
            platform = self.platform
            base = platform.app_bandwidths.get(
                app_index, platform.default_bandwidth
            )
            table = np.full(platform.n_processors, float(base))
            for (a, u), bw in platform.in_links.items():
                if a == app_index:
                    table[u] = bw
            table.setflags(write=False)
            self._bw_in[app_index] = table
        return table

    def output_bandwidths(self, app_index: int) -> np.ndarray:
        """``bw[u]`` = bandwidth of the virtual link ``P_u -> Pout_a``."""
        table = self._bw_out.get(app_index)
        if table is None:
            platform = self.platform
            base = platform.app_bandwidths.get(
                app_index, platform.default_bandwidth
            )
            table = np.full(platform.n_processors, float(base))
            for (a, u), bw in platform.out_links.items():
                if a == app_index:
                    table[u] = bw
            table.setflags(write=False)
            self._bw_out[app_index] = table
        return table

    def link_bandwidths(self, app_index: int) -> np.ndarray:
        """``bw[u, v]`` = bandwidth of the link ``P_u -- P_v`` carrying the
        application's data (symmetric; the diagonal is the default).

        Applications without an ``app_bandwidths`` override all share one
        default-based table (cached under key ``None``) instead of each
        materializing an identical O(p^2) matrix.
        """
        platform = self.platform
        key = (
            app_index if app_index in platform.app_bandwidths else None
        )
        table = self._bw_link.get(key)
        if table is None:
            p = platform.n_processors
            base = platform.app_bandwidths.get(
                app_index, platform.default_bandwidth
            )
            table = np.full((p, p), float(base))
            for (u, v), bw in platform.links.items():
                table[u, v] = bw
                table[v, u] = bw
            table.setflags(write=False)
            self._bw_link[key] = table
        return table

    # ------------------------------------------------------------------
    # Whole-mapping evaluation
    # ------------------------------------------------------------------
    def _app_criteria(
        self,
        app_index: int,
        lo: np.ndarray,
        hi: np.ndarray,
        proc: np.ndarray,
        speed: np.ndarray,
    ) -> Tuple[float, float]:
        """Unweighted ``(period, latency)`` of one application's ordered
        assignment chain (Equations (3)/(4) and (5)), given the column
        views of its assignments."""
        m = len(lo)
        if m == 0:
            raise InvalidMappingError(
                f"application {app_index} has no assignment"
            )
        prefix = self._prefix[app_index]
        delta = self._delta[app_index]
        n = len(prefix) - 1
        if int(hi.max()) >= n:
            raise InvalidApplicationError(
                f"interval exceeds the {n} stages of application {app_index}"
            )

        t_comp = (prefix[hi + 1] - prefix[lo]) / speed
        bw_chain = (
            self.link_bandwidths(app_index)[proc[:-1], proc[1:]]
            if m > 1
            else None
        )
        bw_in = np.empty(m)
        bw_in[0] = self.input_bandwidths(app_index)[proc[0]]
        bw_out = np.empty(m)
        bw_out[-1] = self.output_bandwidths(app_index)[proc[-1]]
        if m > 1:
            bw_in[1:] = bw_chain
            bw_out[:-1] = bw_chain
        t_in = delta[lo] / bw_in
        t_out = delta[hi + 1] / bw_out
        if self.model is CommunicationModel.OVERLAP:
            cycles = np.maximum(np.maximum(t_in, t_comp), t_out)
        else:
            cycles = t_in + t_comp + t_out
        period = float(cycles.max())
        latency = (
            self.apps[app_index].input_data_size / bw_in[0]
            + _seq_sum(t_comp)
            + _seq_sum(t_out)
        )
        return period, latency

    def _columns_energy(self, columns: _MappingColumns) -> float:
        """Energy of a mapping from its column view."""
        # Valid mappings never share processors; for robustness on invalid
        # candidates, count each processor once at its first (canonical
        # order) assignment -- matching the scalar `platform_energy`.
        uniq, first = np.unique(columns.proc, return_index=True)
        return _seq_sum(
            self._static[uniq] + columns.speed[first] ** self._alpha
        )

    def mapping_energy(self, mapping: Mapping) -> float:
        """Total per-time-unit energy of the enrolled processors.

        Parameters
        ----------
        mapping:
            The mapping whose processors are enrolled.

        Returns
        -------
        float
            ``sum_u E_stat(u) + s_u^alpha`` over the distinct enrolled
            processors (Section 3.5).
        """
        return self._columns_energy(mapping_columns(mapping))

    def evaluate(self, mapping: Mapping) -> CriteriaValues:
        """All criteria of a mapping in one vectorized pass.

        Parameters
        ----------
        mapping:
            The mapping to evaluate (all applications must be assigned).

        Returns
        -------
        CriteriaValues
            Per-application periods/latencies plus the weighted global
            period, latency and total energy; numerically equivalent to
            the scalar :func:`repro.core.evaluation.evaluate_scalar`.
        """
        columns = mapping_columns(mapping)
        periods: Dict[int, float] = {}
        latencies: Dict[int, float] = {}
        for a, rows in columns.slices.items():
            periods[a], latencies[a] = self._app_criteria(
                a,
                columns.lo[rows],
                columns.hi[rows],
                columns.proc[rows],
                columns.speed[rows],
            )
        period = max(self.apps[a].weight * t for a, t in periods.items())
        latency = max(self.apps[a].weight * l for a, l in latencies.items())
        return CriteriaValues(
            periods=periods,
            latencies=latencies,
            period=period,
            latency=latency,
            energy=self._columns_energy(columns),
        )

    # ------------------------------------------------------------------
    # Incremental evaluation
    # ------------------------------------------------------------------
    def delta_evaluate(
        self,
        mapping: Mapping,
        base_mapping: Mapping,
        base_values: CriteriaValues,
    ) -> CriteriaValues:
        """Criteria of ``mapping`` given a previously evaluated neighbor.

        Only the applications whose assignment rows differ from
        ``base_mapping`` are re-evaluated (period and latency); the energy
        is recomputed vectorized over the whole mapping (it is O(m) and has
        no per-application structure worth diffing).

        Parameters
        ----------
        mapping:
            The new mapping (after a local move).
        base_mapping:
            The previously evaluated neighbor.
        base_values:
            The criteria of ``base_mapping``.

        Returns
        -------
        CriteriaValues
            Bit-identical to a fresh :meth:`evaluate` call on
            ``mapping``.
        """
        columns = mapping_columns(mapping)
        base_columns = mapping_columns(base_mapping)
        periods: Dict[int, float] = {}
        latencies: Dict[int, float] = {}
        for a, rows in columns.slices.items():
            base_rows = base_columns.slices.get(a)
            if (
                base_rows is not None
                and a in base_values.periods
                and np.array_equal(
                    columns.rows[rows], base_columns.rows[base_rows]
                )
            ):
                periods[a] = base_values.periods[a]
                latencies[a] = base_values.latencies[a]
            else:
                periods[a], latencies[a] = self._app_criteria(
                    a,
                    columns.lo[rows],
                    columns.hi[rows],
                    columns.proc[rows],
                    columns.speed[rows],
                )
        period = max(self.apps[a].weight * t for a, t in periods.items())
        latency = max(self.apps[a].weight * l for a, l in latencies.items())
        return CriteriaValues(
            periods=periods,
            latencies=latencies,
            period=period,
            latency=latency,
            energy=self._columns_energy(columns),
        )

    # ------------------------------------------------------------------
    # Batched evaluation
    # ------------------------------------------------------------------
    def _batch_tables(self) -> Dict[str, np.ndarray]:
        """Concatenated per-application tables backing evaluate_many."""
        tables = self._batch
        if tables:
            return tables
        n_apps = len(self.apps)
        prefix_lens = [len(p) for p in self._prefix]
        delta_lens = [len(d) for d in self._delta]
        tables["prefix"] = np.concatenate(self._prefix)
        tables["delta"] = np.concatenate(self._delta)
        tables["prefix_off"] = np.concatenate(
            ([0], np.cumsum(prefix_lens)[:-1])
        )
        tables["delta_off"] = np.concatenate(
            ([0], np.cumsum(delta_lens)[:-1])
        )
        tables["n_stages"] = np.array(
            [app.n_stages for app in self.apps], dtype=np.intp
        )
        tables["weights"] = np.array([app.weight for app in self.apps])
        tables["input_sizes"] = np.array(
            [app.input_data_size for app in self.apps]
        )
        tables["bw_in"] = np.stack(
            [self.input_bandwidths(a) for a in range(n_apps)]
        )
        tables["bw_out"] = np.stack(
            [self.output_bandwidths(a) for a in range(n_apps)]
        )
        # Link tables are shared between apps without per-app overrides;
        # dedupe by identity so the stack stays small.
        links: List[np.ndarray] = []
        table_of: Dict[int, int] = {}
        tid = np.empty(n_apps, dtype=np.intp)
        for a in range(n_apps):
            table = self.link_bandwidths(a)
            index = table_of.setdefault(id(table), len(links))
            if index == len(links):
                links.append(table)
            tid[a] = index
        tables["bw_link"] = np.stack(links)
        tables["bw_link_tid"] = tid
        return tables

    def evaluate_many(self, batch) -> BatchCriteria:
        """All criteria of ``N`` candidate mappings in one kernel pass.

        The batched counterpart of :meth:`evaluate`, scoring a whole
        neighborhood (or any candidate set) without materializing a
        single :class:`~repro.core.mapping.Mapping`.

        Parameters
        ----------
        batch:
            Any object exposing the stacked column arrays of a candidate
            batch (duck-typed; canonically a
            :class:`repro.kernel.neighborhood.CandidateBatch`):
            ``app`` / ``lo`` / ``hi`` / ``proc`` (integer row arrays),
            ``speed`` (float row array) and ``starts`` (the ``N + 1``
            row offsets delimiting the candidates).  Rows must be in the
            canonical ``(app, lo)`` order within each candidate, every
            candidate must cover every application, and -- as for any
            valid mapping -- use each processor at most once.

        Returns
        -------
        BatchCriteria
            Per-candidate criteria vectors; entry ``i`` is bit-identical
            to :meth:`evaluate` on the materialized ``i``-th candidate.

        Raises
        ------
        InvalidMappingError
            When a candidate does not cover every application as one
            contiguous chain block.
        InvalidApplicationError
            When an interval exceeds its application's stage count.
        """
        with _track("solve.evaluate"):
            return self._evaluate_many(batch)

    def _evaluate_many(self, batch) -> BatchCriteria:
        app = np.asarray(batch.app, dtype=np.intp)
        lo = np.asarray(batch.lo, dtype=np.intp)
        hi = np.asarray(batch.hi, dtype=np.intp)
        proc = np.asarray(batch.proc, dtype=np.intp)
        speed = np.asarray(batch.speed, dtype=np.float64)
        starts = np.asarray(batch.starts, dtype=np.intp)
        n_cands = len(starts) - 1
        n_apps = len(self.apps)
        n_rows = len(app)
        if n_cands == 0:
            empty = np.empty(0)
            return BatchCriteria(
                periods=np.empty((0, n_apps)),
                latencies=np.empty((0, n_apps)),
                period=empty,
                latency=empty,
                energy=empty,
            )
        tables = self._batch_tables()
        if np.any(hi >= tables["n_stages"][app]):
            raise InvalidApplicationError(
                "evaluate_many: interval exceeds its application's stages"
            )

        cand = np.repeat(np.arange(n_cands), np.diff(starts))
        is_first = np.empty(n_rows, dtype=bool)
        is_first[0] = True
        is_first[1:] = (cand[1:] != cand[:-1]) | (app[1:] != app[:-1])
        chain_starts = np.flatnonzero(is_first)
        if len(chain_starts) != n_cands * n_apps or not np.array_equal(
            app[chain_starts],
            np.tile(np.arange(n_apps, dtype=np.intp), n_cands),
        ):
            raise InvalidMappingError(
                "evaluate_many: every candidate must cover every "
                "application as one contiguous, app-ordered chain block"
            )

        poff = tables["prefix_off"][app]
        doff = tables["delta_off"][app]
        t_comp = (
            tables["prefix"][poff + hi + 1] - tables["prefix"][poff + lo]
        ) / speed

        # Incoming bandwidth of each row: the virtual input link for the
        # first interval of each chain, the inter-processor link from
        # the previous interval otherwise.
        bw_in = np.empty(n_rows)
        if n_rows > 1:
            bw_in[1:] = tables["bw_link"][
                tables["bw_link_tid"][app[1:]], proc[:-1], proc[1:]
            ]
        bw_in[chain_starts] = tables["bw_in"][
            app[chain_starts], proc[chain_starts]
        ]
        t_in = tables["delta"][doff + lo] / bw_in

        # Outgoing bandwidth: the next row's incoming link, except for
        # the last interval of each chain (virtual output link).
        is_last = np.empty(n_rows, dtype=bool)
        is_last[:-1] = is_first[1:]
        is_last[-1] = True
        bw_out = np.empty(n_rows)
        bw_out[:-1] = bw_in[1:]
        last_rows = np.flatnonzero(is_last)
        bw_out[last_rows] = tables["bw_out"][app[last_rows], proc[last_rows]]
        t_out = tables["delta"][doff + hi + 1] / bw_out

        if self.model is CommunicationModel.OVERLAP:
            cycles = np.maximum(np.maximum(t_in, t_comp), t_out)
        else:
            cycles = t_in + t_comp + t_out

        n_chains = n_cands * n_apps
        chain_lens = np.diff(np.append(chain_starts, n_rows))
        chain_ids = np.repeat(np.arange(n_chains), chain_lens)
        chain_pos = np.arange(n_rows) - chain_starts[chain_ids]
        periods = np.maximum.reduceat(cycles, chain_starts).reshape(
            n_cands, n_apps
        )
        latencies = (
            tables["input_sizes"][app[chain_starts]] / bw_in[chain_starts]
            + segment_sums(t_comp, chain_ids, chain_pos, n_chains)
            + segment_sums(t_out, chain_ids, chain_pos, n_chains)
        ).reshape(n_cands, n_apps)

        # Energy: rows re-ordered by ascending processor inside each
        # candidate so the sequential sum matches the scalar path, which
        # iterates `np.unique(proc)` (ascending) -- exact because valid
        # candidates use each processor once.
        order = np.lexsort((proc, cand))
        e_rows = self._static[proc[order]] + speed[order] ** self._alpha
        cand_pos = np.arange(n_rows) - starts[cand[order]]
        energy = segment_sums(e_rows, cand[order], cand_pos, n_cands)

        weights = tables["weights"]
        return BatchCriteria(
            periods=periods,
            latencies=latencies,
            period=np.max(periods * weights, axis=1),
            latency=np.max(latencies * weights, axis=1),
            energy=energy,
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"EvaluationContext({len(self.apps)} apps, "
            f"{self.platform.n_processors} processors, "
            f"{self.model.value})"
        )
