"""The simulation engine: as-soon-as-possible execution of activity chains.

Because one-to-one and interval mappings forbid processor sharing across
applications, the applications are operationally independent: each is
simulated on its own resource set.  Within an application, data sets are
released according to a schedule (all at time 0 by default) and traverse the
activity chain in order; every activity starts as soon as its chain
predecessor has finished *and* all its resources are free (resources serve
data sets FIFO, which is exactly the paper's "each operation is executed as
soon as possible" discipline for interval mappings).

Optional multiplicative jitter perturbs activity durations (seeded), which
the robustness tests use to check that the measured period degrades
gracefully rather than collapsing -- something the analytic model cannot
express.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.application import Application
from ..core.mapping import Mapping
from ..core.platform import Platform
from ..core.types import CommunicationModel
from .activities import Activity, Resource, build_activity_chain
from .trace import ActivityRecord, Trace


@dataclass
class SimulationResult:
    """Everything measured by one simulation run."""

    #: Per application: completion time of each data set, in order.
    completions: Dict[int, List[float]]
    #: Per application: release time of each data set.
    releases: Dict[int, List[float]]
    #: Full activity trace (None unless ``keep_trace=True``).
    trace: Optional[Trace]
    model: CommunicationModel
    n_datasets: int

    def measured_period(self, app: int, window: Optional[int] = None) -> float:
        """Steady-state period estimate of one application: average
        inter-completion gap over the trailing ``window`` data sets
        (default: the second half of the run, past the pipeline warm-up)."""
        done = self.completions[app]
        if len(done) < 2:
            return 0.0
        if window is None:
            window = max(1, len(done) // 2)
        window = min(window, len(done) - 1)
        return (done[-1] - done[-1 - window]) / window

    def measured_latency(self, app: int, dataset: int = 0) -> float:
        """Response time of one data set (completion minus release)."""
        return self.completions[app][dataset] - self.releases[app][dataset]

    def max_measured_period(self, weights: Sequence[float]) -> float:
        """Weighted maximum of the per-application measured periods."""
        return max(
            w * self.measured_period(a)
            for a, w in zip(sorted(self.completions), weights)
        )


def poisson_releases(
    n_datasets: int, mean_interval: float, seed: int = 0
) -> List[float]:
    """A seeded Poisson arrival schedule (exponential inter-arrival times
    with the given mean) for :func:`simulate`'s ``release_times`` -- the
    bursty regime where queueing inflates latencies beyond Equation (5)."""
    if n_datasets <= 0:
        raise ValueError("n_datasets must be positive")
    if mean_interval <= 0:
        raise ValueError("mean_interval must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_interval, size=n_datasets)
    times = np.cumsum(gaps)
    return [float(t) for t in times - times[0]]


def simulate(
    apps: Sequence[Application],
    platform: Platform,
    mapping: Mapping,
    n_datasets: int,
    *,
    model: CommunicationModel = CommunicationModel.OVERLAP,
    release_period: Optional[float] = None,
    release_times: Optional[Sequence[float]] = None,
    keep_trace: bool = False,
    jitter: float = 0.0,
    seed: int = 0,
) -> SimulationResult:
    """Simulate the pipelined execution of a mapping.

    Parameters
    ----------
    n_datasets:
        Number of data sets streamed through every application.
    release_period:
        Inter-arrival time of data sets at the source (default: all
        available at time 0, the saturated regime whose steady-state
        inter-completion gap is the period of Equations (3)/(4)).
    release_times:
        Explicit, non-decreasing arrival times (one per data set); takes
        precedence over ``release_period``.  Use
        :func:`poisson_releases` for bursty arrivals.
    keep_trace:
        Record every activity instance (memory ~ ``2 N n_datasets``).
    jitter:
        Relative amplitude of uniform multiplicative noise on activity
        durations (0 = deterministic); drawn from
        ``U[1 - jitter, 1 + jitter]`` with the given ``seed``.

    Returns
    -------
    SimulationResult
        Completion/release times per application plus the optional trace.
    """
    if n_datasets <= 0:
        raise ValueError("n_datasets must be positive")
    if jitter < 0 or jitter >= 1:
        raise ValueError("jitter must lie in [0, 1)")
    if release_times is not None:
        if len(release_times) != n_datasets:
            raise ValueError(
                "release_times must provide one arrival per data set"
            )
        if any(
            b < a for a, b in zip(release_times, list(release_times)[1:])
        ):
            raise ValueError("release_times must be non-decreasing")
    rng = np.random.default_rng(seed) if jitter > 0 else None
    trace = Trace() if keep_trace else None
    completions: Dict[int, List[float]] = {}
    releases: Dict[int, List[float]] = {}

    for a in mapping.applications:
        chain = build_activity_chain(apps, platform, mapping, a, model)
        free: Dict[Resource, float] = {}
        app_completions: List[float] = []
        app_releases: List[float] = []
        for k in range(n_datasets):
            if release_times is not None:
                released = float(release_times[k])
            else:
                released = k * release_period if release_period else 0.0
            t = released
            for activity in chain:
                start = t
                for res in activity.resources:
                    start = max(start, free.get(res, 0.0))
                duration = activity.duration
                if rng is not None and duration > 0:
                    duration *= 1.0 + jitter * (2.0 * rng.random() - 1.0)
                finish = start + duration
                for res in activity.resources:
                    free[res] = finish
                if trace is not None:
                    trace.append(
                        ActivityRecord(
                            app=a,
                            dataset=k,
                            kind=activity.kind,
                            position=activity.position,
                            resources=activity.resources,
                            start=start,
                            finish=finish,
                        )
                    )
                t = finish
            app_completions.append(t)
            app_releases.append(released)
        completions[a] = app_completions
        releases[a] = app_releases
    return SimulationResult(
        completions=completions,
        releases=releases,
        trace=trace,
        model=model,
        n_datasets=n_datasets,
    )
