"""Execution traces produced by the simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .activities import Resource


@dataclass(frozen=True)
class ActivityRecord:
    """One executed activity instance."""

    app: int
    dataset: int
    kind: str  # "comm" or "comp"
    position: int
    resources: Tuple[Resource, ...]
    start: float
    finish: float

    @property
    def duration(self) -> float:
        """Elapsed time of the activity instance."""
        return self.finish - self.start


@dataclass
class Trace:
    """A flat, append-only record of executed activities."""

    records: List[ActivityRecord] = field(default_factory=list)

    def append(self, record: ActivityRecord) -> None:
        """Add one record."""
        self.records.append(record)

    def __iter__(self) -> Iterator[ActivityRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def for_app(self, app: int) -> List[ActivityRecord]:
        """Records of one application, in execution order."""
        return [r for r in self.records if r.app == app]

    def for_dataset(self, app: int, dataset: int) -> List[ActivityRecord]:
        """Records of one data set of one application."""
        return [
            r for r in self.records if r.app == app and r.dataset == dataset
        ]

    @property
    def makespan(self) -> float:
        """Completion time of the last activity."""
        return max((r.finish for r in self.records), default=0.0)

    def busy_time(self) -> Dict[Resource, float]:
        """Total busy time per resource (for utilization reports)."""
        busy: Dict[Resource, float] = {}
        for r in self.records:
            for res in r.resources:
                busy[res] = busy.get(res, 0.0) + r.duration
        return busy
