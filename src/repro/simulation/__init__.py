"""Discrete-event simulation of pipelined execution.

The paper reasons purely analytically (Equations (3)-(5)); this package
provides the missing operational substrate: an event-driven simulator that
executes a mapping on a platform, streaming data sets through the interval
chain under either communication model, with the as-soon-as-possible
schedule the paper argues is sufficient for interval mappings ("once the
mapping has been determined ... each operation is executed as soon as
possible", Section 3.3).

The test suite and ``benchmarks/bench_simulator_validation.py`` confirm
that the simulated steady-state period matches Equation (3)/(4) and the
simulated single-data-set latency matches Equation (5) on random instances,
closing the loop between the paper's cost model and an execution.
"""

from .activities import Activity, build_activity_chain
from .engine import SimulationResult, poisson_releases, simulate
from .metrics import (
    latencies_from_trace,
    resource_utilization,
    steady_state_period,
)
from .trace import ActivityRecord, Trace

__all__ = [
    "Activity",
    "ActivityRecord",
    "SimulationResult",
    "Trace",
    "build_activity_chain",
    "latencies_from_trace",
    "poisson_releases",
    "resource_utilization",
    "simulate",
    "steady_state_period",
]
