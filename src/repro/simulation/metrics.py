"""Steady-state metrics extracted from simulation outputs."""

from __future__ import annotations

from typing import Dict, List, Sequence

from .activities import Resource
from .trace import Trace


def steady_state_period(
    completions: Sequence[float], window: int = 0
) -> float:
    """Average inter-completion gap over the trailing ``window`` data sets
    (default: the second half of the run)."""
    if len(completions) < 2:
        return 0.0
    if window <= 0:
        window = max(1, len(completions) // 2)
    window = min(window, len(completions) - 1)
    return (completions[-1] - completions[-1 - window]) / window


def latencies_from_trace(
    completions: Sequence[float], releases: Sequence[float]
) -> List[float]:
    """Per-data-set response times."""
    if len(completions) != len(releases):
        raise ValueError("completions and releases must have the same length")
    return [c - r for c, r in zip(completions, releases)]


def resource_utilization(trace: Trace, horizon: float = 0.0) -> Dict[Resource, float]:
    """Fraction of the horizon each resource was busy (horizon defaults to
    the trace makespan)."""
    if horizon <= 0.0:
        horizon = trace.makespan
    if horizon <= 0.0:
        return {}
    return {res: busy / horizon for res, busy in trace.busy_time().items()}
