"""Activity chains: the operational view of an interval mapping.

For one application mapped as ``m`` intervals on processors
``u_0 .. u_{m-1}``, each data set traverses ``2m + 1`` activities::

    comm_0, comp_0, comm_1, comp_1, ..., comp_{m-1}, comm_m

where ``comm_0`` brings the input from ``Pin_a``, ``comm_j`` (``0<j<m``)
carries the data from interval ``j-1`` to interval ``j``, and ``comm_m``
returns the result to ``Pout_a``.

Resource footprints encode the communication model:

* **overlap** -- a communication occupies only its link (each processor has
  at most one incoming and one outgoing link under interval mappings, so
  the one-port rule is honored structurally); a computation occupies its
  CPU.  The three activities of a processor may thus overlap across
  consecutive data sets.
* **no-overlap** -- a communication additionally occupies the CPUs of both
  endpoint processors (the virtual ``Pin_a`` / ``Pout_a`` are dedicated I/O
  processors and never constrain), serializing receive / compute / send on
  each processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..core.application import Application
from ..core.mapping import Mapping
from ..core.platform import Platform
from ..core.types import CommunicationModel, IN_ENDPOINT, OUT_ENDPOINT

#: A simulation resource: ``("cpu", proc)`` or ``("link", app, position)``.
Resource = Tuple[str, int, int]


def cpu(proc: int) -> Resource:
    """The CPU resource of a processor."""
    return ("cpu", proc, 0)


def link(app: int, position: int) -> Resource:
    """The link resource carrying application ``app``'s communication number
    ``position`` (0 = input link, ``m`` = output link)."""
    return ("link", app, position)


@dataclass(frozen=True)
class Activity:
    """One activity of the chain: a communication or a computation."""

    app: int
    kind: str  # "comm" or "comp"
    position: int
    duration: float
    resources: Tuple[Resource, ...]


def build_activity_chain(
    apps: Sequence[Application],
    platform: Platform,
    mapping: Mapping,
    app_index: int,
    model: CommunicationModel,
) -> List[Activity]:
    """The per-data-set activity chain of one application under a mapping."""
    app = apps[app_index]
    parts = mapping.for_app(app_index)
    m = len(parts)
    chain: List[Activity] = []
    for j in range(m + 1):
        # Communication j: between interval j-1 and interval j.
        if j == 0:
            size = app.input_data_size
            bw = platform.bandwidth(IN_ENDPOINT, parts[0].proc, app_index)
            endpoints = (parts[0].proc,)
        elif j == m:
            size = app.interval_output_size(parts[m - 1].interval)
            bw = platform.bandwidth(parts[m - 1].proc, OUT_ENDPOINT, app_index)
            endpoints = (parts[m - 1].proc,)
        else:
            size = app.interval_output_size(parts[j - 1].interval)
            bw = platform.bandwidth(parts[j - 1].proc, parts[j].proc, app_index)
            endpoints = (parts[j - 1].proc, parts[j].proc)
        resources: Tuple[Resource, ...]
        if model is CommunicationModel.OVERLAP:
            resources = (link(app_index, j),)
        else:
            resources = tuple(cpu(u) for u in endpoints)
        chain.append(
            Activity(
                app=app_index,
                kind="comm",
                position=j,
                duration=size / bw,
                resources=resources,
            )
        )
        # Computation j (intervals are interleaved with communications).
        if j < m:
            lo, hi = parts[j].interval
            chain.append(
                Activity(
                    app=app_index,
                    kind="comp",
                    position=j,
                    duration=app.work_sum(lo, hi) / parts[j].speed,
                    resources=(cpu(parts[j].proc),),
                )
            )
    return chain
