"""Evaluation of mappings: period, latency and energy (Sections 3.4-3.5).

For an application mapped as intervals ``I_1 .. I_m`` on processors
``P_{al(d_1)} .. P_{al(d_m)}`` the criteria are:

*Period, overlap model* (Equation (3))::

    T = max_j max( delta_{d_j - 1} / b(al(d_{j-1}), al(d_j)),
                   sum_{i in I_j} w_i / s_{al(d_j)},
                   delta_{e_j} / b(al(d_j), al(e_j + 1)) )

*Period, no-overlap model* (Equation (4)): the inner ``max`` is a sum.

*Latency* (identical in both models, Equation (5))::

    L = delta_0 / b(in, al(1))
        + sum_j ( sum_{i in I_j} w_i / s_{al(d_j)}
                  + delta_{e_j} / b(al(d_j), al(e_j + 1)) )

*Energy* (Section 3.5): sum over enrolled processors of
``E_stat(u) + s_u^alpha``.

*Global objectives* (Equation (6)): ``max_a W_a * X_a`` where ``X_a`` is the
per-application period or latency and ``W_a > 0`` the application weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..kernel import EvaluationContext

from .application import Application
from .energy import DEFAULT_ENERGY_MODEL, EnergyModel
from .exceptions import InvalidMappingError
from .mapping import Assignment, Mapping
from .platform import Endpoint, Platform
from .types import CommunicationModel, IN_ENDPOINT, OUT_ENDPOINT, Interval


@dataclass(frozen=True)
class IntervalCost:
    """Cost breakdown for one assignment: the three activity times of the
    processor hosting the interval."""

    app: int
    interval: Interval
    proc: int
    speed: float
    #: Time of the incoming communication ``delta_{d_j - 1} / b``.
    t_in: float
    #: Computation time ``sum w_i / s``.
    t_comp: float
    #: Time of the outgoing communication ``delta_{e_j} / b``.
    t_out: float

    def cycle_time(self, model: CommunicationModel) -> float:
        """Processor cycle-time under the given communication model."""
        return model.combine(self.t_in, self.t_comp, self.t_out)


def _ordered_app_assignments(
    mapping: Mapping, app_index: int, app: Application
) -> Tuple[Assignment, ...]:
    parts = mapping.for_app(app_index)
    if not parts:
        raise InvalidMappingError(f"application {app_index} has no assignment")
    return parts


def interval_costs(
    apps: Sequence[Application],
    platform: Platform,
    mapping: Mapping,
) -> List[IntervalCost]:
    """Per-assignment activity times for the whole mapping.

    The incoming link of the first interval of each application is the
    virtual ``Pin_a``; the outgoing link of the last interval is ``Pout_a``.
    Intervals hosted next to each other on the chain communicate over the
    direct link between their processors.
    """
    costs: List[IntervalCost] = []
    for a_idx in mapping.applications:
        app = apps[a_idx]
        parts = _ordered_app_assignments(mapping, a_idx, app)
        for j, part in enumerate(parts):
            lo, hi = part.interval
            src: Endpoint = IN_ENDPOINT if j == 0 else parts[j - 1].proc
            dst: Endpoint = OUT_ENDPOINT if j == len(parts) - 1 else parts[j + 1].proc
            in_size = app.interval_input_size(part.interval)
            out_size = app.interval_output_size(part.interval)
            t_in = in_size / platform.bandwidth(src, part.proc, a_idx)
            t_out = out_size / platform.bandwidth(part.proc, dst, a_idx)
            t_comp = app.work_sum(lo, hi) / part.speed
            costs.append(
                IntervalCost(
                    app=a_idx,
                    interval=part.interval,
                    proc=part.proc,
                    speed=part.speed,
                    t_in=t_in,
                    t_comp=t_comp,
                    t_out=t_out,
                )
            )
    return costs


# ----------------------------------------------------------------------
# Per-application criteria
# ----------------------------------------------------------------------
def application_period(
    apps: Sequence[Application],
    platform: Platform,
    mapping: Mapping,
    app_index: int,
    model: CommunicationModel = CommunicationModel.OVERLAP,
) -> float:
    """Period ``T_a`` of one application (Equations (3)/(4)), *unweighted*."""
    app = apps[app_index]
    parts = _ordered_app_assignments(mapping, app_index, app)
    worst = 0.0
    for j, part in enumerate(parts):
        lo, hi = part.interval
        src: Endpoint = IN_ENDPOINT if j == 0 else parts[j - 1].proc
        dst: Endpoint = OUT_ENDPOINT if j == len(parts) - 1 else parts[j + 1].proc
        t_in = app.interval_input_size(part.interval) / platform.bandwidth(
            src, part.proc, app_index
        )
        t_out = app.interval_output_size(part.interval) / platform.bandwidth(
            part.proc, dst, app_index
        )
        t_comp = app.work_sum(lo, hi) / part.speed
        worst = max(worst, model.combine(t_in, t_comp, t_out))
    return worst


def application_latency(
    apps: Sequence[Application],
    platform: Platform,
    mapping: Mapping,
    app_index: int,
) -> float:
    """Latency ``L_a`` of one application (Equation (5)), *unweighted*.

    Identical under both communication models: it follows one data set along
    the chain, so the three activities of a processor are naturally
    serialized for that data set.
    """
    app = apps[app_index]
    parts = _ordered_app_assignments(mapping, app_index, app)
    total = app.input_data_size / platform.bandwidth(
        IN_ENDPOINT, parts[0].proc, app_index
    )
    for j, part in enumerate(parts):
        lo, hi = part.interval
        dst: Endpoint = OUT_ENDPOINT if j == len(parts) - 1 else parts[j + 1].proc
        total += app.work_sum(lo, hi) / part.speed
        total += app.interval_output_size(part.interval) / platform.bandwidth(
            part.proc, dst, app_index
        )
    return total


# ----------------------------------------------------------------------
# Global criteria
# ----------------------------------------------------------------------
def global_period(
    apps: Sequence[Application],
    platform: Platform,
    mapping: Mapping,
    model: CommunicationModel = CommunicationModel.OVERLAP,
) -> float:
    """Weighted global period ``max_a W_a * T_a`` (Equation (6))."""
    return max(
        apps[a].weight * application_period(apps, platform, mapping, a, model)
        for a in mapping.applications
    )


def global_latency(
    apps: Sequence[Application],
    platform: Platform,
    mapping: Mapping,
) -> float:
    """Weighted global latency ``max_a W_a * L_a`` (Equation (6))."""
    return max(
        apps[a].weight * application_latency(apps, platform, mapping, a)
        for a in mapping.applications
    )


def platform_energy(
    platform: Platform,
    mapping: Mapping,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> float:
    """Total per-time-unit energy of the enrolled processors
    (Section 3.5): ``sum_u E_stat(u) + s_u^alpha``."""
    total = 0.0
    for u in mapping.enrolled_processors:
        total += energy_model.processor_energy(
            platform.processor(u), mapping.speed_of_proc(u)
        )
    return total


@dataclass(frozen=True)
class CriteriaValues:
    """All criteria of a mapping, per application and globally."""

    #: Unweighted per-application periods ``T_a`` keyed by application index.
    periods: Dict[int, float]
    #: Unweighted per-application latencies ``L_a``.
    latencies: Dict[int, float]
    #: Weighted global period ``max_a W_a * T_a``.
    period: float
    #: Weighted global latency ``max_a W_a * L_a``.
    latency: float
    #: Total platform energy (per time unit).
    energy: float

    def meets(
        self,
        *,
        period: Optional[float] = None,
        latency: Optional[float] = None,
        energy: Optional[float] = None,
        rtol: float = 1e-9,
    ) -> bool:
        """True when each given threshold is respected (within a tiny
        relative tolerance, to absorb float round-off)."""

        def ok(value: float, bound: Optional[float]) -> bool:
            if bound is None:
                return True
            return value <= bound * (1 + rtol) + rtol

        return (
            ok(self.period, period)
            and ok(self.latency, latency)
            and ok(self.energy, energy)
        )


def evaluate(
    apps: Sequence[Application],
    platform: Platform,
    mapping: Mapping,
    *,
    model: CommunicationModel = CommunicationModel.OVERLAP,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
    context: Optional["EvaluationContext"] = None,
) -> CriteriaValues:
    """Evaluate all criteria of a mapping in one pass.

    Delegates to the vectorized kernel
    (:class:`repro.kernel.EvaluationContext`); pass a prebuilt ``context``
    to amortize its precomputed arrays over many evaluations (its models
    then take precedence over the ``model``/``energy_model`` arguments).
    The scalar reference implementation is :func:`evaluate_scalar`.
    """
    if context is None:
        from ..kernel import EvaluationContext

        context = EvaluationContext(
            apps, platform, model=model, energy_model=energy_model
        )
    return context.evaluate(mapping)


def evaluate_scalar(
    apps: Sequence[Application],
    platform: Platform,
    mapping: Mapping,
    *,
    model: CommunicationModel = CommunicationModel.OVERLAP,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> CriteriaValues:
    """Scalar (pure-Python) reference evaluation of all criteria.

    Kept as the ground truth the vectorized kernel is property-tested
    against, and as the baseline of ``benchmarks/bench_kernel_speedup.py``.
    """
    periods: Dict[int, float] = {}
    latencies: Dict[int, float] = {}
    for a in mapping.applications:
        periods[a] = application_period(apps, platform, mapping, a, model)
        latencies[a] = application_latency(apps, platform, mapping, a)
    period = max(apps[a].weight * t for a, t in periods.items())
    latency = max(apps[a].weight * l for a, l in latencies.items())
    energy = platform_energy(platform, mapping, energy_model)
    return CriteriaValues(
        periods=periods,
        latencies=latencies,
        period=period,
        latency=latency,
        energy=energy,
    )


# ----------------------------------------------------------------------
# Elementary cost helpers shared by the solvers
# ----------------------------------------------------------------------
def stage_cycle_time(
    app: Application,
    stage: int,
    speed: float,
    bandwidth: float,
    model: CommunicationModel,
) -> float:
    """Cycle-time of one stage alone on a processor at ``speed`` with
    homogeneous links of the given ``bandwidth`` -- the candidate values of
    Algorithm 1 (Theorem 1): ``max_or_sum(delta_{k-1}/b, w_k/s, delta_k/b)``.
    """
    t_in = app.input_size(stage) / bandwidth
    t_out = app.output_size(stage) / bandwidth
    return model.combine(t_in, app.stages[stage].work / speed, t_out)


def interval_cycle_time(
    app: Application,
    interval: Interval,
    speed: float,
    bandwidth_in: float,
    bandwidth_out: float,
    model: CommunicationModel,
) -> float:
    """Cycle-time of an interval on a processor at ``speed`` with explicit
    incoming / outgoing bandwidths."""
    lo, hi = interval
    t_in = app.interval_input_size(interval) / bandwidth_in
    t_out = app.interval_output_size(interval) / bandwidth_out
    return model.combine(t_in, app.work_sum(lo, hi) / speed, t_out)


def whole_app_latency_on_processor(
    app: Application,
    speed: float,
    bandwidth_in: float,
    bandwidth_out: float,
) -> float:
    """Latency of mapping a whole application onto one processor:
    ``delta_0 / b_in + sum w / s + delta_n / b_out`` (used by Theorem 12)."""
    return (
        app.input_data_size / bandwidth_in
        + app.total_work / speed
        + app.stages[-1].output_size / bandwidth_out
    )
