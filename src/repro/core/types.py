"""Shared enumerations and type aliases for the pipelined-mapping framework.

The paper (Benoit, Renaud-Goud, Robert, IPDPS 2010) classifies problems along
three axes: the *mapping rule* (Section 3.3), the *communication model*
(Section 3.2) and the *platform class* (Section 3.2).  This module defines the
corresponding enumerations so that every solver, generator and benchmark can
name the cell of Table 1 / Table 2 it addresses.
"""

from __future__ import annotations

import enum
from typing import Tuple

#: An interval of consecutive stage indices, inclusive of both endpoints,
#: using 0-based stage numbering.  The paper's interval ``[d_j, e_j]`` with
#: 1-based indices corresponds to ``(d_j - 1, e_j - 1)``.
Interval = Tuple[int, int]


class MappingRule(enum.Enum):
    """Mapping strategies of Section 3.3.

    * ``ONE_TO_ONE`` -- each application stage is allocated to a distinct
      processor (requires ``p >= N``).
    * ``INTERVAL`` -- each participating processor is assigned an interval of
      consecutive stages of a single application.  One-to-one mappings are a
      special case of interval mappings where every interval has length one.

    Both rules forbid processor sharing or re-use across applications.
    """

    ONE_TO_ONE = "one-to-one"
    INTERVAL = "interval"

    def admits(self, interval: Interval) -> bool:
        """Return ``True`` if an interval shape is allowed under this rule."""
        lo, hi = interval
        if self is MappingRule.ONE_TO_ONE:
            return lo == hi
        return lo <= hi


class CommunicationModel(enum.Enum):
    """Communication/computation orchestration models of Section 3.2.

    * ``OVERLAP`` -- sends, receives and computations proceed in parallel
      (multi-threaded communication libraries); the cycle-time of a processor
      is the *maximum* of its three activity times (Equation (3)).
    * ``NO_OVERLAP`` -- the three operations are serialized (single-threaded
      programs); the cycle-time is their *sum* (Equation (4)).

    Latency (Equation (5)) is identical under both models.
    """

    OVERLAP = "overlap"
    NO_OVERLAP = "no-overlap"

    def combine(self, t_in: float, t_comp: float, t_out: float) -> float:
        """Combine the three activity times into a processor cycle-time."""
        if self is CommunicationModel.OVERLAP:
            return max(t_in, t_comp, t_out)
        return t_in + t_comp + t_out


class PlatformClass(enum.Enum):
    """Platform taxonomy of Section 3.2, from least to most heterogeneous."""

    #: Identical processors (common speed set) and identical links.
    FULLY_HOMOGENEOUS = "fully-homogeneous"
    #: Identical links but per-processor speed sets.
    COMM_HOMOGENEOUS = "comm-homogeneous"
    #: Different-speed processors and different-capacity links.
    FULLY_HETEROGENEOUS = "fully-heterogeneous"

    @property
    def has_homogeneous_links(self) -> bool:
        """True when all link bandwidths are forced equal."""
        return self is not PlatformClass.FULLY_HETEROGENEOUS

    @property
    def has_identical_processors(self) -> bool:
        """True when all processors share a common speed set."""
        return self is PlatformClass.FULLY_HOMOGENEOUS


class Criterion(enum.Enum):
    """The three optimization criteria of the paper."""

    PERIOD = "period"
    LATENCY = "latency"
    ENERGY = "energy"


#: Sentinel endpoint names used by :meth:`repro.core.platform.Platform.bandwidth`
#: for the per-application virtual input/output processors ``Pin_a``/``Pout_a``.
IN_ENDPOINT = "in"
OUT_ENDPOINT = "out"
