"""Applicative framework of Section 3.1: linear pipelined applications.

Each of the ``A`` independent applications is a linear chain of stages
``S_1 .. S_n``; stage ``S_k`` has computation requirement ``w_k`` and emits an
output of size ``delta_k`` to the next stage.  The first stage receives an
input of size ``delta_0`` from the virtual input processor ``Pin_a`` and the
last stage sends its result (size ``delta_n``) to ``Pout_a``.

Indexing convention: the library uses 0-based stage indices everywhere.  The
0-based stage ``i`` corresponds to the paper's ``S_{i+1}``; it *consumes* data
of size :meth:`Application.input_size` ``(i)`` (the paper's ``delta_i``) and
*produces* data of size ``stages[i].output_size`` (the paper's
``delta_{i+1}``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence, Tuple

from .exceptions import InvalidApplicationError
from .types import Interval


@dataclass(frozen=True)
class Stage:
    """A single pipeline stage.

    Parameters
    ----------
    work:
        The computation requirement ``w_k`` (number of operations).  A stage
        running on a processor at speed ``s`` takes ``work / s`` time units.
    output_size:
        The size ``delta_k`` of the data emitted towards the next stage (or
        towards ``Pout_a`` for the last stage).  A transfer of size ``X`` over
        a link of bandwidth ``b`` takes ``X / b`` time units.
    """

    work: float
    output_size: float

    def __post_init__(self) -> None:
        if self.work < 0:
            raise InvalidApplicationError(
                f"stage work must be non-negative, got {self.work!r}"
            )
        if self.output_size < 0:
            raise InvalidApplicationError(
                f"stage output size must be non-negative, got {self.output_size!r}"
            )


@dataclass(frozen=True)
class Application:
    """A linear chain application (Section 3.1, Figure 2).

    Parameters
    ----------
    stages:
        The ordered stages ``S_1 .. S_n`` of the chain.
    input_data_size:
        The size ``delta_0`` of the input read from ``Pin_a`` by the first
        stage.
    weight:
        The strictly positive priority weight ``W_a`` of Equation (6).  The
        global period/latency objective is ``max_a W_a * X_a``.  Use ``1.0``
        (the default) for the plain maximum; use ``1 / X*_a`` for the
        max-stretch objective.
    name:
        Optional human-readable identifier used in reports.
    """

    stages: Tuple[Stage, ...]
    input_data_size: float = 0.0
    weight: float = 1.0
    name: str = ""
    #: Cached prefix sums of stage works; ``_work_prefix[i]`` is the total
    #: work of stages ``0 .. i-1``.  Computed eagerly in ``__post_init__``.
    _work_prefix: Tuple[float, ...] = field(
        default=(), repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.stages, tuple):
            object.__setattr__(self, "stages", tuple(self.stages))
        if len(self.stages) == 0:
            raise InvalidApplicationError("an application needs at least one stage")
        if self.input_data_size < 0:
            raise InvalidApplicationError(
                f"input data size must be non-negative, got {self.input_data_size!r}"
            )
        if not self.weight > 0:
            raise InvalidApplicationError(
                f"application weight must be strictly positive, got {self.weight!r}"
            )
        prefix = tuple(
            itertools.accumulate((s.work for s in self.stages), initial=0.0)
        )
        object.__setattr__(self, "_work_prefix", prefix)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_lists(
        cls,
        works: Sequence[float],
        output_sizes: Sequence[float],
        *,
        input_data_size: float = 0.0,
        weight: float = 1.0,
        name: str = "",
    ) -> "Application":
        """Build an application from parallel lists of works and output sizes.

        ``works[i]`` is the paper's ``w_{i+1}``; ``output_sizes[i]`` is
        ``delta_{i+1}``.  Both lists must have the same length ``n``.
        """
        if len(works) != len(output_sizes):
            raise InvalidApplicationError(
                "works and output_sizes must have the same length "
                f"({len(works)} != {len(output_sizes)})"
            )
        stages = tuple(
            Stage(work=w, output_size=d) for w, d in zip(works, output_sizes)
        )
        return cls(
            stages=stages,
            input_data_size=input_data_size,
            weight=weight,
            name=name,
        )

    @classmethod
    def homogeneous(
        cls,
        n_stages: int,
        *,
        work: float = 1.0,
        output_size: float = 0.0,
        input_data_size: float = 0.0,
        weight: float = 1.0,
        name: str = "",
    ) -> "Application":
        """Build a *homogeneous pipeline*: ``n`` identical stages.

        This is the ``special-app`` family of Table 1/Table 2 (homogeneous
        pipelines, typically used with zero communication costs), central to
        the 3-PARTITION hardness proofs of Theorems 5-7 and 9-11.
        """
        if n_stages <= 0:
            raise InvalidApplicationError(
                f"n_stages must be positive, got {n_stages!r}"
            )
        return cls.from_lists(
            [work] * n_stages,
            [output_size] * n_stages,
            input_data_size=input_data_size,
            weight=weight,
            name=name,
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n_stages(self) -> int:
        """The number of stages ``n_a``."""
        return len(self.stages)

    @property
    def total_work(self) -> float:
        """The total computation requirement ``sum_k w_k``."""
        return self._work_prefix[-1]

    @property
    def works(self) -> Tuple[float, ...]:
        """The stage works ``(w_1, .., w_n)``."""
        return tuple(s.work for s in self.stages)

    @property
    def output_sizes(self) -> Tuple[float, ...]:
        """The stage output sizes ``(delta_1, .., delta_n)``."""
        return tuple(s.output_size for s in self.stages)

    def work_sum(self, lo: int, hi: int) -> float:
        """Total work of the 0-based stage interval ``[lo, hi]`` (inclusive).

        Uses cached prefix sums, so each query is O(1).
        """
        self._check_interval((lo, hi))
        return self._work_prefix[hi + 1] - self._work_prefix[lo]

    def input_size(self, i: int) -> float:
        """Size of the data *consumed* by 0-based stage ``i``.

        Equals the paper's ``delta_i``: the application input for ``i == 0``,
        otherwise the output of the preceding stage.
        """
        if not 0 <= i < self.n_stages:
            raise InvalidApplicationError(
                f"stage index {i} out of range [0, {self.n_stages})"
            )
        if i == 0:
            return self.input_data_size
        return self.stages[i - 1].output_size

    def output_size(self, i: int) -> float:
        """Size of the data *produced* by 0-based stage ``i`` (paper's
        ``delta_{i+1}``)."""
        if not 0 <= i < self.n_stages:
            raise InvalidApplicationError(
                f"stage index {i} out of range [0, {self.n_stages})"
            )
        return self.stages[i].output_size

    @property
    def is_homogeneous(self) -> bool:
        """True when all stages are identical (the ``special-app`` shape)."""
        first = self.stages[0]
        return all(s == first for s in self.stages[1:])

    @property
    def has_communication(self) -> bool:
        """True when any data size (input, inter-stage or output) is non-zero."""
        if self.input_data_size > 0:
            return True
        return any(s.output_size > 0 for s in self.stages)

    # ------------------------------------------------------------------
    # Interval helpers
    # ------------------------------------------------------------------
    def _check_interval(self, interval: Interval) -> None:
        lo, hi = interval
        if not (0 <= lo <= hi < self.n_stages):
            raise InvalidApplicationError(
                f"invalid stage interval {interval!r} for {self.n_stages} stages"
            )

    def interval_input_size(self, interval: Interval) -> float:
        """Size of the data entering interval ``[lo, hi]`` (paper ``delta_{d_j - 1}``)."""
        self._check_interval(interval)
        return self.input_size(interval[0])

    def interval_output_size(self, interval: Interval) -> float:
        """Size of the data leaving interval ``[lo, hi]`` (paper ``delta_{e_j}``)."""
        self._check_interval(interval)
        return self.output_size(interval[1])

    def iter_interval_partitions(self) -> Iterator[Tuple[Interval, ...]]:
        """Yield every partition of the stages into consecutive intervals.

        There are ``2^(n-1)`` such partitions (one per subset of the ``n-1``
        possible cut points).  Intended for brute-force validation on small
        instances only.
        """
        n = self.n_stages
        cut_points = range(1, n)
        for r in range(0, n):
            for cuts in itertools.combinations(cut_points, r):
                bounds = [0, *cuts, n]
                yield tuple(
                    (bounds[i], bounds[i + 1] - 1) for i in range(len(bounds) - 1)
                )

    def interval_partitions_into(self, m: int) -> Iterator[Tuple[Interval, ...]]:
        """Yield every partition of the stages into exactly ``m`` intervals."""
        n = self.n_stages
        if not 1 <= m <= n:
            return
        for cuts in itertools.combinations(range(1, n), m - 1):
            bounds = [0, *cuts, n]
            yield tuple(
                (bounds[i], bounds[i + 1] - 1) for i in range(len(bounds) - 1)
            )


def total_stages(apps: Sequence[Application]) -> int:
    """Total stage count ``N = sum_a n_a`` over a list of applications."""
    return sum(app.n_stages for app in apps)


def validate_applications(apps: Iterable[Application]) -> List[Application]:
    """Materialize and sanity-check a collection of applications.

    Returns the list form; raises :class:`InvalidApplicationError` when the
    collection is empty.
    """
    result = list(apps)
    if not result:
        raise InvalidApplicationError("at least one application is required")
    return result
