"""Mappings of stages onto processors (Section 3.3).

A mapping is a set of :class:`Assignment` records, each placing one interval
of consecutive stages of one application onto one processor running at one
chosen speed.  The rules are:

* the intervals assigned to each application partition its stages in order;
* no processor is re-used, neither within an application nor across
  applications (no processor sharing);
* under the one-to-one rule, every interval contains a single stage;
* the chosen speed must belong to the processor's mode set and stays fixed
  for the whole execution.

Once a valid interval mapping is fixed, scheduling is straightforward (each
operation executes as soon as possible): the execution graph is acyclic and
each processor has at most one incoming and one outgoing communication --
this is the paper's key motivation for restricting to interval mappings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .application import Application
from .exceptions import InvalidMappingError
from .platform import Platform
from .types import Interval, MappingRule


@dataclass(frozen=True)
class Assignment:
    """One interval of one application placed on one processor.

    Parameters
    ----------
    app:
        0-based application index.
    interval:
        Inclusive 0-based stage interval ``(lo, hi)`` of that application.
    proc:
        0-based processor index.
    speed:
        The chosen execution speed (must be one of the processor's modes).
    """

    app: int
    interval: Interval
    proc: int
    speed: float

    def __post_init__(self) -> None:
        lo, hi = self.interval
        if lo > hi or lo < 0:
            raise InvalidMappingError(f"invalid interval {self.interval!r}")
        if self.app < 0:
            raise InvalidMappingError(f"invalid application index {self.app!r}")
        if self.proc < 0:
            raise InvalidMappingError(f"invalid processor index {self.proc!r}")
        if self.speed <= 0:
            raise InvalidMappingError(f"speed must be positive, got {self.speed!r}")

    @property
    def n_stages(self) -> int:
        """Number of stages in the interval."""
        return self.interval[1] - self.interval[0] + 1


@dataclass(frozen=True)
class Mapping:
    """An immutable collection of assignments forming a (candidate) mapping.

    The class stores assignments in a canonical order (by application, then
    by interval start) and offers validation against a set of applications, a
    platform and a mapping rule.  Construction itself performs only local
    checks; use :meth:`validate` for the full structural rules.
    """

    assignments: Tuple[Assignment, ...]

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.assignments, key=lambda x: (x.app, x.interval[0]))
        )
        object.__setattr__(self, "assignments", ordered)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_assignments(cls, assignments: Iterable[Assignment]) -> "Mapping":
        """Build a mapping from any iterable of assignments."""
        return cls(assignments=tuple(assignments))

    @classmethod
    def single_app(
        cls,
        placements: Sequence[Tuple[Interval, int, float]],
        *,
        app: int = 0,
    ) -> "Mapping":
        """Build a mapping for one application from
        ``(interval, processor, speed)`` triples."""
        return cls.from_assignments(
            Assignment(app=app, interval=iv, proc=u, speed=s)
            for iv, u, s in placements
        )

    @classmethod
    def one_to_one(
        cls,
        stage_to_proc: Dict[Tuple[int, int], int],
        speeds: Optional[Dict[Tuple[int, int], float]] = None,
        *,
        platform: Optional[Platform] = None,
    ) -> "Mapping":
        """Build a one-to-one mapping from ``{(app, stage): proc}``.

        ``speeds`` maps ``(app, stage)`` to the chosen speed; when omitted,
        ``platform`` must be given and each processor runs at its maximum
        speed (the right default for pure-performance problems).
        """
        assignments = []
        for (a, k), u in dict(stage_to_proc).items():
            if speeds is not None:
                s = dict(speeds)[(a, k)]
            elif platform is not None:
                s = platform.processor(u).max_speed
            else:
                raise InvalidMappingError(
                    "either speeds or platform must be provided"
                )
            assignments.append(
                Assignment(app=a, interval=(k, k), proc=u, speed=s)
            )
        return cls.from_assignments(assignments)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def __iter__(self):
        return iter(self.assignments)

    def __len__(self) -> int:
        return len(self.assignments)

    @property
    def enrolled_processors(self) -> Tuple[int, ...]:
        """Sorted indices of all processors used by the mapping."""
        return tuple(sorted({a.proc for a in self.assignments}))

    @property
    def applications(self) -> Tuple[int, ...]:
        """Sorted indices of all applications covered by the mapping."""
        return tuple(sorted({a.app for a in self.assignments}))

    def for_app(self, app: int) -> Tuple[Assignment, ...]:
        """The assignments of one application, ordered by interval start."""
        return tuple(a for a in self.assignments if a.app == app)

    def processor_of_stage(self, app: int, stage: int) -> int:
        """The processor executing a given stage (the paper's ``al`` map)."""
        for a in self.for_app(app):
            lo, hi = a.interval
            if lo <= stage <= hi:
                return a.proc
        raise InvalidMappingError(
            f"stage ({app}, {stage}) is not covered by the mapping"
        )

    def speed_of_proc(self, proc: int) -> float:
        """The speed chosen for an enrolled processor."""
        for a in self.assignments:
            if a.proc == proc:
                return a.speed
        raise InvalidMappingError(f"processor {proc} is not enrolled")

    def with_speeds(self, proc_speeds: Dict[int, float]) -> "Mapping":
        """A copy of the mapping with new speeds for some processors."""
        table = dict(proc_speeds)
        return Mapping.from_assignments(
            replace(a, speed=table.get(a.proc, a.speed)) for a in self.assignments
        )

    def is_one_to_one(self) -> bool:
        """True when every interval contains exactly one stage."""
        return all(a.n_stages == 1 for a in self.assignments)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(
        self,
        apps: Sequence[Application],
        platform: Platform,
        rule: MappingRule = MappingRule.INTERVAL,
    ) -> None:
        """Check the full structural rules of Section 3.3.

        Raises :class:`InvalidMappingError` on the first violation:
        uncovered or overlapping stages, processor re-use, out-of-range
        indices, speeds not in the processor's mode set, or interval shapes
        not admitted by ``rule``.
        """
        if not self.assignments:
            raise InvalidMappingError("empty mapping")
        procs_seen: Dict[int, Assignment] = {}
        by_app: Dict[int, List[Assignment]] = {}
        for a in self.assignments:
            if not 0 <= a.app < len(apps):
                raise InvalidMappingError(f"unknown application index {a.app}")
            if not 0 <= a.proc < platform.n_processors:
                raise InvalidMappingError(f"unknown processor index {a.proc}")
            if not rule.admits(a.interval):
                raise InvalidMappingError(
                    f"interval {a.interval} not admitted by rule {rule.value}"
                )
            if a.proc in procs_seen:
                raise InvalidMappingError(
                    f"processor {a.proc} assigned twice "
                    f"({procs_seen[a.proc]} and {a})"
                )
            procs_seen[a.proc] = a
            if not platform.processor(a.proc).has_speed(a.speed):
                raise InvalidMappingError(
                    f"speed {a.speed} is not a mode of processor {a.proc} "
                    f"(modes: {platform.processor(a.proc).speeds})"
                )
            by_app.setdefault(a.app, []).append(a)
        for app_index, app in enumerate(apps):
            parts = sorted(
                by_app.get(app_index, []), key=lambda x: x.interval[0]
            )
            if not parts:
                raise InvalidMappingError(
                    f"application {app_index} has no assigned stages"
                )
            expected = 0
            for part in parts:
                lo, hi = part.interval
                if lo != expected:
                    raise InvalidMappingError(
                        f"application {app_index}: stages are not partitioned "
                        f"into consecutive intervals (expected start {expected}, "
                        f"got {lo})"
                    )
                if hi >= app.n_stages:
                    raise InvalidMappingError(
                        f"application {app_index}: interval {part.interval} "
                        f"exceeds stage count {app.n_stages}"
                    )
                expected = hi + 1
            if expected != app.n_stages:
                raise InvalidMappingError(
                    f"application {app_index}: stages {expected}.."
                    f"{app.n_stages - 1} are not mapped"
                )

    def is_valid(
        self,
        apps: Sequence[Application],
        platform: Platform,
        rule: MappingRule = MappingRule.INTERVAL,
    ) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(apps, platform, rule)
        except InvalidMappingError:
            return False
        return True


def run_at_max_speed(mapping: Mapping, platform: Platform) -> Mapping:
    """Return a copy of the mapping with every enrolled processor at its
    fastest mode (used by all pure-performance algorithms)."""
    return mapping.with_speeds(
        {u: platform.processor(u).max_speed for u in mapping.enrolled_processors}
    )


def run_at_min_speed(mapping: Mapping, platform: Platform) -> Mapping:
    """Return a copy of the mapping with every enrolled processor at its
    slowest mode (the energy-greedy extreme of Section 2)."""
    return mapping.with_speeds(
        {u: platform.processor(u).min_speed for u in mapping.enrolled_processors}
    )
