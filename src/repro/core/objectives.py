"""Objective functions and thresholds (Section 3.4 and Section 5 intro).

The paper advocates *multi-criteria with thresholds*: one criterion is
optimized while a threshold is enforced on each of the others.  Fixing the
energy yields the "laptop problem" (best schedule within an energy budget);
fixing the performance yields the "server problem" (least energy achieving a
required service level).

Global performance objectives follow Equation (6): ``max_a W_a * X_a`` with
three natural weight choices:

* ``W_a = 1`` -- plain maximum over applications;
* ``W_a`` = a priority ratio fixed by the platform manager;
* ``W_a = 1 / X*_a`` with ``X*_a`` the value the application would achieve
  alone on the platform -- then the objective is the *maximum stretch*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from .application import Application
from .types import Criterion

#: Relative tolerance used by threshold comparisons throughout the library.
THRESHOLD_RTOL = 1e-9


def weighted_max(values: Sequence[float], weights: Sequence[float]) -> float:
    """``max_a W_a * X_a`` (Equation (6))."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    if not values:
        raise ValueError("weighted_max of an empty sequence")
    return max(w * x for w, x in zip(weights, values))


def threshold_ceiling(bound: float) -> float:
    """The largest value accepted by :func:`meets_threshold` for ``bound``:
    ``bound * (1 + rtol) + rtol``.  Shared by the scalar test below and the
    vectorized feasibility gates of :mod:`repro.kernel`, which must stay
    bit-identical to it."""
    return bound * (1 + THRESHOLD_RTOL) + THRESHOLD_RTOL


def meets_threshold(value: float, bound: Optional[float]) -> bool:
    """Threshold test ``value <= bound`` with a tiny relative tolerance.

    ``bound is None`` means the criterion is unconstrained.
    """
    if bound is None:
        return True
    return value <= threshold_ceiling(bound)


@dataclass(frozen=True)
class Thresholds:
    """Bounds on the non-optimized criteria of a multi-criteria problem.

    ``period`` and ``latency`` may be global bounds on the weighted maximum
    (Equation (6)) or per-application bound tables, as in Section 5's
    "fixing the period or the latency means fixing a threshold on the period
    or latency of each application".  ``energy`` is always a single global
    bound.
    """

    period: Optional[float] = None
    latency: Optional[float] = None
    energy: Optional[float] = None
    per_app_period: Optional[Tuple[float, ...]] = None
    per_app_latency: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        for field_name in ("period", "latency", "energy"):
            v = getattr(self, field_name)
            if v is not None and v < 0:
                raise ValueError(f"threshold {field_name} must be >= 0, got {v!r}")
        for field_name in ("per_app_period", "per_app_latency"):
            v = getattr(self, field_name)
            if v is not None:
                object.__setattr__(self, field_name, tuple(v))

    def period_bound_for_app(self, app: Application, app_index: int) -> float:
        """Effective per-application period bound: the per-application entry
        when provided, otherwise the global bound divided by ``W_a``
        (since ``W_a * T_a <= period`` must hold)."""
        if self.per_app_period is not None:
            return self.per_app_period[app_index]
        if self.period is None:
            return math.inf
        return self.period / app.weight

    def latency_bound_for_app(self, app: Application, app_index: int) -> float:
        """Effective per-application latency bound (same convention)."""
        if self.per_app_latency is not None:
            return self.per_app_latency[app_index]
        if self.latency is None:
            return math.inf
        return self.latency / app.weight

    def constrains(self, criterion: Criterion) -> bool:
        """True when the given criterion carries any bound."""
        if criterion is Criterion.PERIOD:
            return self.period is not None or self.per_app_period is not None
        if criterion is Criterion.LATENCY:
            return self.latency is not None or self.per_app_latency is not None
        return self.energy is not None


def with_weights(
    apps: Sequence[Application], weights: Sequence[float]
) -> Tuple[Application, ...]:
    """Return copies of the applications with new priority weights."""
    if len(apps) != len(weights):
        raise ValueError("apps and weights must have the same length")
    return tuple(replace(app, weight=w) for app, w in zip(apps, weights))


def stretch_weights(solo_values: Sequence[float]) -> Tuple[float, ...]:
    """Weights ``W_a = 1 / X*_a`` turning Equation (6) into the maximum
    stretch, given the solo-execution optima ``X*_a`` (computed by running
    each application alone on the platform with the relevant solver)."""
    weights = []
    for x in solo_values:
        if not x > 0:
            raise ValueError(f"solo optimum must be positive, got {x!r}")
        weights.append(1.0 / x)
    return tuple(weights)
