"""Core data model: applications, platforms, mappings, evaluation.

This package implements the framework of Section 3 of the paper:

* :mod:`repro.core.application` -- linear pipelined applications (§3.1);
* :mod:`repro.core.processor` / :mod:`repro.core.platform` -- multi-modal
  processors and the three platform classes (§3.2);
* :mod:`repro.core.mapping` -- one-to-one and interval mappings (§3.3);
* :mod:`repro.core.evaluation` -- period, latency (§3.4) and energy (§3.5);
* :mod:`repro.core.objectives` -- weighted-max objectives and thresholds;
* :mod:`repro.core.problem` -- problem instances and solver results.
"""

from .application import Application, Stage, total_stages, validate_applications
from .energy import DEFAULT_ENERGY_MODEL, EnergyModel
from .evaluation import (
    CriteriaValues,
    IntervalCost,
    application_latency,
    application_period,
    evaluate,
    evaluate_scalar,
    global_latency,
    global_period,
    interval_costs,
    interval_cycle_time,
    platform_energy,
    stage_cycle_time,
    whole_app_latency_on_processor,
)
from .exceptions import (
    InfeasibleProblemError,
    InvalidApplicationError,
    InvalidMappingError,
    InvalidPlatformError,
    ReproError,
    SolverError,
)
from .mapping import Assignment, Mapping, run_at_max_speed, run_at_min_speed
from .objectives import (
    THRESHOLD_RTOL,
    Thresholds,
    meets_threshold,
    stretch_weights,
    weighted_max,
    with_weights,
)
from .platform import Platform
from .problem import ProblemInstance, Solution
from .processor import Processor, processors_from_speed_sets, uniform_processors
from .types import (
    CommunicationModel,
    Criterion,
    IN_ENDPOINT,
    Interval,
    MappingRule,
    OUT_ENDPOINT,
    PlatformClass,
)

__all__ = [
    "Application",
    "Assignment",
    "CommunicationModel",
    "CriteriaValues",
    "Criterion",
    "DEFAULT_ENERGY_MODEL",
    "EnergyModel",
    "IN_ENDPOINT",
    "InfeasibleProblemError",
    "Interval",
    "IntervalCost",
    "InvalidApplicationError",
    "InvalidMappingError",
    "InvalidPlatformError",
    "Mapping",
    "MappingRule",
    "OUT_ENDPOINT",
    "Platform",
    "PlatformClass",
    "ProblemInstance",
    "Processor",
    "ReproError",
    "Solution",
    "SolverError",
    "Stage",
    "THRESHOLD_RTOL",
    "Thresholds",
    "application_latency",
    "application_period",
    "evaluate",
    "evaluate_scalar",
    "global_latency",
    "global_period",
    "interval_costs",
    "interval_cycle_time",
    "meets_threshold",
    "platform_energy",
    "processors_from_speed_sets",
    "run_at_max_speed",
    "run_at_min_speed",
    "stage_cycle_time",
    "stretch_weights",
    "total_stages",
    "uniform_processors",
    "validate_applications",
    "weighted_max",
    "whole_app_latency_on_processor",
    "with_weights",
]
