"""Problem statements and solver results.

A :class:`ProblemInstance` bundles everything the paper's problems share:
the concurrent applications, the target platform, the mapping rule, the
communication model and the energy model.  Solvers take a problem instance
(plus criterion-specific thresholds) and return a :class:`Solution`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from .application import Application, total_stages, validate_applications
from .energy import DEFAULT_ENERGY_MODEL, EnergyModel
from .evaluation import CriteriaValues
from .exceptions import InfeasibleProblemError
from .mapping import Mapping
from .platform import Platform
from .types import CommunicationModel, MappingRule, PlatformClass


@dataclass(frozen=True)
class ProblemInstance:
    """A multi-application mapping problem (Sections 3.1-3.5).

    Parameters
    ----------
    apps:
        The ``A`` concurrent applications.
    platform:
        The target platform.
    rule:
        Mapping rule: one-to-one or interval.
    model:
        Communication model: overlap or no-overlap.
    energy_model:
        Dynamic-energy exponent (Section 3.5).
    """

    apps: Tuple[Application, ...]
    platform: Platform
    rule: MappingRule = MappingRule.INTERVAL
    model: CommunicationModel = CommunicationModel.OVERLAP
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL

    def __post_init__(self) -> None:
        apps = tuple(validate_applications(self.apps))
        object.__setattr__(self, "apps", apps)
        if self.rule is MappingRule.ONE_TO_ONE:
            if total_stages(apps) > self.platform.n_processors:
                raise InfeasibleProblemError(
                    f"one-to-one rule needs p >= N: "
                    f"p={self.platform.n_processors}, N={total_stages(apps)}"
                )
        if len(apps) > self.platform.n_processors:
            raise InfeasibleProblemError(
                f"no processor sharing: need at least one processor per "
                f"application (A={len(apps)}, p={self.platform.n_processors})"
            )

    # ------------------------------------------------------------------
    @property
    def n_apps(self) -> int:
        """The application count ``A``."""
        return len(self.apps)

    @property
    def n_stages_total(self) -> int:
        """The total stage count ``N``."""
        return total_stages(self.apps)

    @property
    def platform_class(self) -> PlatformClass:
        """The platform taxonomy cell this instance lives in."""
        return self.platform.platform_class

    def evaluation_context(self, context=None):
        """The problem's shared vectorized evaluation kernel context
        (:class:`repro.kernel.EvaluationContext`), built lazily on first
        use and cached for the lifetime of the instance.

        When a caller passes its own prebuilt ``context`` (the solvers'
        optional sharing parameter), it is returned instead -- this is
        the single place the "explicit context wins over the cached one"
        rule lives.  A context built for different applications or a
        different platform is rejected: evaluating through it would
        silently produce criteria for the wrong problem.

        Memoization lives in
        :meth:`repro.kernel.EvaluationContext.for_problem`, so direct
        ``for_problem`` callers and this accessor share one context per
        instance."""
        if context is not None:
            if context.apps != self.apps or context.platform != self.platform:
                raise ValueError(
                    "shared EvaluationContext was built for a different "
                    "problem (its apps/platform do not match)"
                )
            return context
        cached = self.__dict__.get("_eval_context")
        if cached is not None:
            return cached
        from ..kernel import EvaluationContext

        return EvaluationContext.for_problem(self)

    def __getstate__(self):
        """Pickle support: drop the cached kernel context (it holds
        O(p^2) bandwidth tables the receiving process rebuilds lazily),
        keeping process-pool job payloads small."""
        state = self.__dict__.copy()
        state.pop("_eval_context", None)
        return state

    def evaluate(self, mapping: Mapping) -> CriteriaValues:
        """Evaluate all criteria of a mapping under this problem's models
        (delegates to the cached :meth:`evaluation_context`)."""
        return self.evaluation_context().evaluate(mapping)

    def check_mapping(self, mapping: Mapping) -> None:
        """Validate a mapping against this problem's rule; raises
        :class:`~repro.core.exceptions.InvalidMappingError` on violation."""
        mapping.validate(self.apps, self.platform, self.rule)


@dataclass(frozen=True)
class Solution:
    """The output of a solver.

    ``objective`` is the value of the optimized criterion; ``values`` holds
    the full evaluation of the returned mapping.  ``optimal`` records whether
    the solver guarantees optimality (exact algorithms and the paper's
    polynomial algorithms) or not (heuristics).  ``stats`` carries solver
    metadata (iterations, explored nodes, candidate count, ...).
    """

    mapping: Mapping
    objective: float
    values: CriteriaValues
    solver: str
    optimal: bool = True
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def is_feasible(self) -> bool:
        """False only for sentinel 'no solution' records."""
        return math.isfinite(self.objective)


def infeasible_solution(solver: str, **stats: float) -> None:
    """Raise the canonical infeasibility error for a named solver."""
    raise InfeasibleProblemError(
        f"{solver}: no valid mapping satisfies the constraints"
        + (f" (stats: {stats})" if stats else "")
    )
