"""Energy model of Section 3.5.

The platform energy is the sum over *enrolled* processors of
``E(u) = E_stat(u) + E_dyn(s_u)`` with ``E_dyn(s) = s^alpha`` for a rational
``alpha > 1``.  ``E(u)`` is an energy per time unit, which is why the paper
only ever combines the energy criterion with the period (a pipelined,
steady-state notion), never with latency alone.

The motivating example (Section 2) uses ``alpha = 2`` and zero static energy;
all results of the paper hold for arbitrary ``alpha > 1`` so the exponent is a
model parameter here.
"""

from __future__ import annotations

from dataclasses import dataclass

from .exceptions import InvalidPlatformError
from .processor import Processor


@dataclass(frozen=True)
class EnergyModel:
    """The dynamic-energy exponent ``alpha`` of ``E_dyn(s) = s^alpha``.

    Parameters
    ----------
    alpha:
        Exponent of the dynamic energy; must be ``> 1`` (faster speeds are
        strictly less efficient energetically, Section 3.5).
    """

    alpha: float = 2.0

    def __post_init__(self) -> None:
        if not self.alpha > 1:
            raise InvalidPlatformError(
                f"energy exponent alpha must be > 1, got {self.alpha!r}"
            )

    def dynamic(self, speed: float) -> float:
        """Dynamic energy per time unit at the given speed: ``s^alpha``."""
        if speed < 0:
            raise InvalidPlatformError(f"speed must be non-negative, got {speed!r}")
        return speed**self.alpha

    def processor_energy(self, processor: Processor, speed: float) -> float:
        """Total per-time-unit energy of an enrolled processor running at
        ``speed``: static part plus dynamic part."""
        return processor.static_energy + self.dynamic(speed)

    def cheapest_feasible_energy(
        self, processor: Processor, required_speed: float
    ) -> float:
        """Energy of the slowest mode with speed ``>= required_speed``.

        Returns ``math.inf`` when no mode is fast enough.  Because
        ``E_dyn`` is increasing in ``s``, the slowest feasible mode is always
        the cheapest feasible one -- the mode-selection argument underlying
        Theorems 18, 19 and 21.
        """
        import math

        speed = processor.slowest_speed_at_least(required_speed)
        if speed is None:
            return math.inf
        return self.processor_energy(processor, speed)


#: Default model (``alpha = 2``) used throughout the examples and benches,
#: matching the motivating example of Section 2.
DEFAULT_ENERGY_MODEL = EnergyModel(alpha=2.0)
