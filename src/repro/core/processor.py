"""Multi-modal processors (Section 3.2) and the energy model (Section 3.5).

Every processor ``P_u`` carries a discrete set of speeds (modes)
``S_u = {s_{u,1}, .., s_{u,m_u}}`` obtained by changing the processor
frequency.  During the mapping process one speed is chosen per enrolled
processor and stays fixed for the whole execution.

The energy consumed (per time unit) by an enrolled processor is
``E(u) = E_stat(u) + E_dyn(s_u)`` with ``E_dyn(s) = s^alpha`` for a rational
``alpha > 1`` (``alpha = 2`` in the motivating example, after [Ishihara &
Yasuura 1998]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from .exceptions import InvalidPlatformError

#: Relative tolerance used when matching a requested speed against a
#: processor's discrete mode set (guards against float round-trips).
_SPEED_MATCH_RTOL = 1e-9


@dataclass(frozen=True)
class Processor:
    """A multi-modal processor.

    Parameters
    ----------
    speeds:
        The strictly positive mode speeds; stored sorted in increasing order.
        A uni-modal processor has a single speed.
    static_energy:
        The static part ``E_stat(u)`` of the per-time-unit energy: the cost of
        the processor being in service, independent of the chosen speed.
    name:
        Optional identifier used in reports.
    """

    speeds: Tuple[float, ...]
    static_energy: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.speeds, tuple):
            object.__setattr__(self, "speeds", tuple(self.speeds))
        if len(self.speeds) == 0:
            raise InvalidPlatformError("a processor needs at least one speed mode")
        if any(s <= 0 for s in self.speeds):
            raise InvalidPlatformError(
                f"all speeds must be strictly positive, got {self.speeds!r}"
            )
        if self.static_energy < 0:
            raise InvalidPlatformError(
                f"static energy must be non-negative, got {self.static_energy!r}"
            )
        ordered = tuple(sorted(set(self.speeds)))
        object.__setattr__(self, "speeds", ordered)

    # ------------------------------------------------------------------
    @property
    def n_modes(self) -> int:
        """The number of distinct modes ``m_u``."""
        return len(self.speeds)

    @property
    def is_uni_modal(self) -> bool:
        """True when the processor has a single execution speed."""
        return len(self.speeds) == 1

    @property
    def min_speed(self) -> float:
        """The slowest (most energy-frugal) mode."""
        return self.speeds[0]

    @property
    def max_speed(self) -> float:
        """The fastest mode; used by all pure-performance algorithms, since
        without an energy criterion processors always run flat out."""
        return self.speeds[-1]

    def has_speed(self, speed: float) -> bool:
        """Return True when ``speed`` matches one of the modes (within a tiny
        relative tolerance)."""
        return any(
            abs(speed - s) <= _SPEED_MATCH_RTOL * max(1.0, abs(s))
            for s in self.speeds
        )

    def slowest_speed_at_least(self, required: float) -> Optional[float]:
        """The slowest mode with speed ``>= required``, or None if even the
        fastest mode is too slow.

        This is the mode-selection primitive of the period/energy algorithms
        (Theorems 18, 19): for a fixed period threshold, the cheapest feasible
        mode is the slowest one that still meets the throughput requirement.
        """
        for s in self.speeds:
            if s >= required:
                return s
        return None

    def modes_at_least(self, required: float) -> Tuple[float, ...]:
        """All modes with speed ``>= required``, slowest first."""
        return tuple(s for s in self.speeds if s >= required)


def uniform_processors(
    count: int,
    speeds: Sequence[float],
    *,
    static_energy: float = 0.0,
    name_prefix: str = "P",
) -> Tuple[Processor, ...]:
    """Build ``count`` identical processors sharing a speed set.

    This is the processor side of a *fully homogeneous* platform.
    """
    if count <= 0:
        raise InvalidPlatformError(f"processor count must be positive, got {count}")
    return tuple(
        Processor(
            speeds=tuple(speeds),
            static_energy=static_energy,
            name=f"{name_prefix}{u + 1}",
        )
        for u in range(count)
    )


def processors_from_speed_sets(
    speed_sets: Iterable[Sequence[float]],
    *,
    static_energies: Optional[Sequence[float]] = None,
    name_prefix: str = "P",
) -> Tuple[Processor, ...]:
    """Build processors from per-processor speed sets (comm-homogeneous /
    fully heterogeneous platforms)."""
    sets = [tuple(s) for s in speed_sets]
    if static_energies is None:
        static_energies = [0.0] * len(sets)
    if len(static_energies) != len(sets):
        raise InvalidPlatformError(
            "static_energies must match the number of speed sets"
        )
    return tuple(
        Processor(speeds=s, static_energy=e, name=f"{name_prefix}{u + 1}")
        for u, (s, e) in enumerate(zip(sets, static_energies))
    )
