"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class InvalidApplicationError(ReproError):
    """An application description violates the model of Section 3.1
    (e.g. empty stage list, negative computation requirement)."""


class InvalidPlatformError(ReproError):
    """A platform description violates the model of Section 3.2
    (e.g. non-positive speed or bandwidth, empty speed set)."""


class InvalidMappingError(ReproError):
    """A mapping violates the rules of Section 3.3: stages not fully covered,
    intervals overlapping, processor re-use across intervals or applications,
    a speed outside the processor's mode set, or a shape not admitted by the
    requested mapping rule."""


class InfeasibleProblemError(ReproError):
    """A constrained optimization problem admits no valid mapping
    (e.g. fewer processors than stages under the one-to-one rule, or
    thresholds that no mapping can meet)."""


class SolverError(ReproError):
    """A solver was invoked outside its domain of validity (e.g. a
    fully-homogeneous-only algorithm applied to a heterogeneous platform)."""
