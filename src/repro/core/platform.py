"""Target execution platforms (Section 3.2).

A platform is made of ``p`` fully interconnected multi-modal processors; the
bidirectional link between ``P_u`` and ``P_v`` has bandwidth ``b_{u,v}``.  In
addition, per-application virtual processors ``Pin_a`` / ``Pout_a`` hold the
input data and collect the results; they are connected to every compute
processor.

Bandwidth resolution
--------------------
Communications always carry the data of a specific application, so the
bandwidth query is :meth:`Platform.bandwidth` ``(src, dst, app)`` where the
endpoints are either a 0-based processor index or the sentinels
:data:`~repro.core.types.IN_ENDPOINT` / :data:`~repro.core.types.OUT_ENDPOINT`
(resolving to ``Pin_app`` / ``Pout_app``).  Resolution order:

1. an explicit per-link entry (``links`` for processor pairs, ``in_links`` /
   ``out_links`` for the virtual endpoints);
2. the application's bandwidth ``app_bandwidths[app]`` when provided --- this
   models the *communication homogeneous* refinement used in Theorem 1
   ("different-capacity links between the applications, but links of the same
   capacity within an application");
3. the platform-wide ``default_bandwidth``.

Platform classes
----------------
:meth:`Platform.platform_class` classifies the instance into the paper's
taxonomy: *fully homogeneous* (identical processors and one common link
bandwidth), *communication homogeneous* (identical links, heterogeneous
processors), *fully heterogeneous* (anything else).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from .exceptions import InvalidPlatformError
from .processor import Processor, uniform_processors
from .types import IN_ENDPOINT, OUT_ENDPOINT, PlatformClass

#: An endpoint of a communication: a compute-processor index, or one of the
#: sentinels ``"in"`` / ``"out"`` naming the current application's virtual
#: input/output processor.
Endpoint = Union[int, str]


def _normalize_pair(u: int, v: int) -> Tuple[int, int]:
    """Canonical (sorted) form of an unordered processor pair: links are
    bidirectional with a single bandwidth ``b_{u,v}``."""
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class Platform:
    """A target execution platform.

    Parameters
    ----------
    processors:
        The ``p`` compute processors.
    default_bandwidth:
        Bandwidth used for every link without a more specific entry.
    links:
        Optional explicit bandwidths for processor pairs, keyed by unordered
        pair ``(u, v)``.
    in_links / out_links:
        Optional explicit bandwidths for the virtual input/output links,
        keyed by ``(app_index, processor_index)``.
    app_bandwidths:
        Optional per-application bandwidth (see module docstring).
    name:
        Optional identifier used in reports.
    """

    processors: Tuple[Processor, ...]
    default_bandwidth: float = 1.0
    links: Mapping[Tuple[int, int], float] = field(default_factory=dict)
    in_links: Mapping[Tuple[int, int], float] = field(default_factory=dict)
    out_links: Mapping[Tuple[int, int], float] = field(default_factory=dict)
    app_bandwidths: Mapping[int, float] = field(default_factory=dict)
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.processors, tuple):
            object.__setattr__(self, "processors", tuple(self.processors))
        if len(self.processors) == 0:
            raise InvalidPlatformError("a platform needs at least one processor")
        if self.default_bandwidth <= 0:
            raise InvalidPlatformError(
                f"default bandwidth must be positive, got {self.default_bandwidth!r}"
            )
        links = {_normalize_pair(*k): v for k, v in dict(self.links).items()}
        object.__setattr__(self, "links", links)
        object.__setattr__(self, "in_links", dict(self.in_links))
        object.__setattr__(self, "out_links", dict(self.out_links))
        object.__setattr__(self, "app_bandwidths", dict(self.app_bandwidths))
        p = len(self.processors)
        for (u, v), bw in links.items():
            if not (0 <= u < p and 0 <= v < p):
                raise InvalidPlatformError(f"link {u, v} references unknown processor")
            if bw <= 0:
                raise InvalidPlatformError(f"bandwidth of link {u, v} must be positive")
        for table in (self.in_links, self.out_links):
            for (a, u), bw in table.items():
                if not 0 <= u < p:
                    raise InvalidPlatformError(
                        f"virtual link ({a}, {u}) references unknown processor"
                    )
                if bw <= 0:
                    raise InvalidPlatformError(
                        f"bandwidth of virtual link ({a}, {u}) must be positive"
                    )
        for a, bw in self.app_bandwidths.items():
            if bw <= 0:
                raise InvalidPlatformError(
                    f"application bandwidth for app {a} must be positive"
                )

    # ------------------------------------------------------------------
    # Constructors for the paper's platform classes
    # ------------------------------------------------------------------
    @classmethod
    def fully_homogeneous(
        cls,
        n_processors: int,
        speeds: Sequence[float],
        *,
        bandwidth: float = 1.0,
        static_energy: float = 0.0,
        name: str = "",
    ) -> "Platform":
        """Identical processors (one common speed set) and identical links."""
        return cls(
            processors=uniform_processors(
                n_processors, speeds, static_energy=static_energy
            ),
            default_bandwidth=bandwidth,
            name=name,
        )

    @classmethod
    def comm_homogeneous(
        cls,
        speed_sets: Sequence[Sequence[float]],
        *,
        bandwidth: float = 1.0,
        static_energies: Optional[Sequence[float]] = None,
        app_bandwidths: Optional[Mapping[int, float]] = None,
        name: str = "",
    ) -> "Platform":
        """Identical links, per-processor speed sets (networks of
        workstations with a uniform LAN)."""
        from .processor import processors_from_speed_sets

        return cls(
            processors=processors_from_speed_sets(
                speed_sets, static_energies=static_energies
            ),
            default_bandwidth=bandwidth,
            app_bandwidths=dict(app_bandwidths or {}),
            name=name,
        )

    @classmethod
    def fully_heterogeneous(
        cls,
        speed_sets: Sequence[Sequence[float]],
        link_bandwidths: Mapping[Tuple[int, int], float],
        *,
        default_bandwidth: float = 1.0,
        in_links: Optional[Mapping[Tuple[int, int], float]] = None,
        out_links: Optional[Mapping[Tuple[int, int], float]] = None,
        static_energies: Optional[Sequence[float]] = None,
        name: str = "",
    ) -> "Platform":
        """Different-speed processors and different-capacity links
        (hierarchical multi-cluster platforms)."""
        from .processor import processors_from_speed_sets

        return cls(
            processors=processors_from_speed_sets(
                speed_sets, static_energies=static_energies
            ),
            default_bandwidth=default_bandwidth,
            links=dict(link_bandwidths),
            in_links=dict(in_links or {}),
            out_links=dict(out_links or {}),
            name=name,
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_processors(self) -> int:
        """The processor count ``p``."""
        return len(self.processors)

    def processor(self, u: int) -> Processor:
        """The processor ``P_u`` (0-based)."""
        if not 0 <= u < self.n_processors:
            raise InvalidPlatformError(
                f"processor index {u} out of range [0, {self.n_processors})"
            )
        return self.processors[u]

    def bandwidth(self, src: Endpoint, dst: Endpoint, app: int = 0) -> float:
        """Bandwidth of the link carrying ``app``'s data from ``src`` to
        ``dst``; see the module docstring for the resolution order."""
        if src == IN_ENDPOINT:
            if not isinstance(dst, int):
                raise InvalidPlatformError(
                    f"input link must target a compute processor, got {dst!r}"
                )
            specific = self.in_links.get((app, dst))
        elif dst == OUT_ENDPOINT:
            if not isinstance(src, int):
                raise InvalidPlatformError(
                    f"output link must originate at a compute processor, got {src!r}"
                )
            specific = self.out_links.get((app, src))
        elif isinstance(src, int) and isinstance(dst, int):
            specific = self.links.get(_normalize_pair(src, dst))
        else:
            raise InvalidPlatformError(f"invalid endpoints {src!r} -> {dst!r}")
        if specific is not None:
            return specific
        app_bw = self.app_bandwidths.get(app)
        if app_bw is not None:
            return app_bw
        return self.default_bandwidth

    # ------------------------------------------------------------------
    # Classification (paper taxonomy)
    # ------------------------------------------------------------------
    @property
    def has_homogeneous_links(self) -> bool:
        """True when every link (including virtual in/out links and
        per-application overrides) has the platform-wide default bandwidth."""
        tables = (self.links, self.in_links, self.out_links, self.app_bandwidths)
        return all(
            bw == self.default_bandwidth
            for table in tables
            for bw in table.values()
        )

    @property
    def has_per_app_homogeneous_links(self) -> bool:
        """True when link bandwidths may differ across applications but are
        uniform within each application (the comm-homogeneous refinement of
        Theorem 1)."""
        if self.links or self.in_links or self.out_links:
            return False
        return True

    @property
    def has_identical_processors(self) -> bool:
        """True when all processors share one speed set and static energy."""
        first = self.processors[0]
        return all(
            p.speeds == first.speeds and p.static_energy == first.static_energy
            for p in self.processors[1:]
        )

    @property
    def is_uni_modal(self) -> bool:
        """True when every processor has a single execution mode."""
        return all(p.is_uni_modal for p in self.processors)

    @property
    def platform_class(self) -> PlatformClass:
        """Classify the platform into the paper's taxonomy."""
        if self.has_homogeneous_links and self.has_identical_processors:
            return PlatformClass.FULLY_HOMOGENEOUS
        if self.has_homogeneous_links or (
            self.has_per_app_homogeneous_links and self.app_bandwidths
        ):
            return PlatformClass.COMM_HOMOGENEOUS
        return PlatformClass.FULLY_HETEROGENEOUS

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def fastest_processors(self, count: int) -> Tuple[int, ...]:
        """Indices of the ``count`` fastest processors (by maximum speed),
        fastest first; ties broken by index for determinism."""
        if count < 0 or count > self.n_processors:
            raise InvalidPlatformError(
                f"cannot select {count} processors out of {self.n_processors}"
            )
        order = sorted(
            range(self.n_processors),
            key=lambda u: (-self.processors[u].max_speed, u),
        )
        return tuple(order[:count])

    def processors_slowest_first(self) -> Tuple[int, ...]:
        """Indices sorted by increasing maximum speed (Algorithm 1 order)."""
        return tuple(
            sorted(range(self.n_processors), key=lambda u: (self.processors[u].max_speed, u))
        )

    def common_speed_set(self) -> Tuple[float, ...]:
        """The shared speed set of a fully homogeneous platform.

        Raises :class:`InvalidPlatformError` when processors differ.
        """
        if not self.has_identical_processors:
            raise InvalidPlatformError(
                "platform processors are not identical; no common speed set"
            )
        return self.processors[0].speeds
