"""Content-addressed on-disk results cache.

Each campaign cell — one (problem instance, solver configuration) pair —
is keyed by the SHA-256 digest of its canonical JSON serialization, so
the cache key depends only on *content*: the same instance solved with
the same configuration hits the same entry no matter which campaign,
process or machine produced it.  Entries are single JSON files under
``<root>/<key[:2]>/<key>.json``, written atomically (temp file +
``os.replace``) so a campaign killed mid-write never leaves a corrupt
entry behind — the interrupted cell is simply missing and is recomputed
on the next run.

Reads go through a small in-process LRU memo: a warm daemon serving the
same cells repeatedly (the dedup path hits ``get`` on every submission)
would otherwise re-read and re-parse the same JSON file every time.
Memoized records are shared by reference — callers treat cache records
as read-only by contract (the runner and the daemon only ever ``.get``
fields out of them).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from ..core.problem import ProblemInstance
from ..io import problem_to_dict

__all__ = [
    "ResultsCache",
    "cell_key",
    "cell_key_for_payload",
    "combine_digests",
    "instance_digest",
    "solver_digest",
]


def _canonical(payload: Dict[str, Any]) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def instance_digest(problem: ProblemInstance) -> str:
    """Content hash of a problem instance.

    Parameters
    ----------
    problem:
        The instance to fingerprint.

    Returns
    -------
    str
        SHA-256 hex digest of the instance's canonical JSON form
        (:func:`repro.io.problem_to_dict` with sorted keys), so equal
        instances hash equal regardless of how they were constructed.
    """
    return hashlib.sha256(_canonical(problem_to_dict(problem)).encode()).hexdigest()


def solver_digest(solver_payload: Dict[str, Any]) -> str:
    """Content hash of a solver configuration dict.

    Parameters
    ----------
    solver_payload:
        JSON-friendly solver configuration
        (:meth:`repro.experiments.SolverSpec.to_dict`).  The ``name``
        field is excluded: renaming a configuration must not invalidate
        its cached results.

    Returns
    -------
    str
        SHA-256 hex digest of the canonical payload.
    """
    payload = {k: v for k, v in solver_payload.items() if k != "name"}
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def combine_digests(instance: str, solver: str) -> str:
    """Combine an instance digest and a solver digest into one cell key.

    This is the single definition of the key-composition format; both
    :func:`cell_key` and the campaign runner (which precomputes the two
    digests to share them across cells) go through it.

    Parameters
    ----------
    instance:
        Hex digest from :func:`instance_digest`.
    solver:
        Hex digest from :func:`solver_digest`.

    Returns
    -------
    str
        SHA-256 hex digest of ``"<instance>:<solver>"``.
    """
    return hashlib.sha256(f"{instance}:{solver}".encode()).hexdigest()


def cell_key(problem: ProblemInstance, solver_payload: Dict[str, Any]) -> str:
    """Cache key of one campaign cell.

    Parameters
    ----------
    problem:
        The cell's problem instance.
    solver_payload:
        The cell's solver configuration dict.

    Returns
    -------
    str
        SHA-256 hex digest combining :func:`instance_digest` and
        :func:`solver_digest` via :func:`combine_digests`.
    """
    return combine_digests(
        instance_digest(problem), solver_digest(solver_payload)
    )


def cell_key_for_payload(
    problem_payload: Dict[str, Any],
    solver_payload: Optional[Dict[str, Any]] = None,
) -> str:
    """Cell key computed from *wire* payloads, without a daemon.

    The shard router (and any external routing/inspection tool) must
    agree byte-for-byte with the daemon's dedup key for the same
    submission, so this normalizes exactly the way a submission is
    normalized server-side: the problem payload round-trips through
    :func:`repro.io.problem_from_dict` (canonicalizing field order and
    defaults) and the solver payload through
    :class:`~repro.experiments.spec.SolverSpec` (applying the spec's
    defaults; a missing ``name`` gets the daemon's placeholder, which
    the digest excludes anyway).

    Parameters
    ----------
    problem_payload:
        ``problem_to_dict``-shaped instance payload.
    solver_payload:
        Campaign-``solvers``-entry-shaped configuration; ``None`` or
        ``{}`` mean the all-defaults solver, as in a bare submission.

    Returns
    -------
    str
        The same digest :func:`cell_key` yields for the parsed objects
        (asserted against the daemon's key in
        ``tests/server/test_router.py``).
    """
    from ..io import problem_from_dict
    from .spec import SolverSpec

    solver_raw = dict(solver_payload or {})
    solver_raw.setdefault("name", "request")
    solver = SolverSpec.from_dict(solver_raw)
    return combine_digests(
        instance_digest(problem_from_dict(problem_payload)),
        solver_digest(solver.to_dict()),
    )


class ResultsCache:
    """A directory of content-addressed solve results.

    Parameters
    ----------
    root:
        Cache directory; created on first write.  Safe to share between
        campaigns — keys are content hashes, so distinct cells never
        collide and identical cells deduplicate.
    memo_entries:
        Capacity of the in-process LRU memo over parsed records
        (default 128; ``0`` disables memoization).  Entries are content
        addressed and immutable on disk, so the only staleness the memo
        can introduce is against *external* writers of the same key —
        which by construction write the identical record.
    """

    def __init__(
        self, root: Union[str, Path], *, memo_entries: int = 128
    ) -> None:
        self.root = Path(root)
        self.memo_entries = memo_entries
        self._memo: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        #: Monotonic counters: memo hits vs. disk reads, exposed so the
        #: daemon benchmark can show what the memo saves.
        self.memo_hits = 0
        self.memo_misses = 0

    def path(self, key: str) -> Path:
        """Filesystem location of a key's entry (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return key in self._memo or self.path(key).exists()

    def _memoize(self, key: str, record: Dict[str, Any]) -> None:
        if self.memo_entries <= 0:
            return
        self._memo[key] = record
        self._memo.move_to_end(key)
        while len(self._memo) > self.memo_entries:
            self._memo.popitem(last=False)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Fetch a cached record.

        Parameters
        ----------
        key:
            Cell key from :func:`cell_key`.

        Returns
        -------
        dict or None
            The stored record, or ``None`` on a miss.  Repeat lookups
            are answered from the in-process LRU memo without touching
            the filesystem; the returned dict is shared and must be
            treated as read-only.  A corrupt entry (truncated by a
            crash predating atomic writes, or hand edited) is treated
            as a miss and removed so it gets recomputed rather than
            poisoning reports.
        """
        memoized = self._memo.get(key)
        if memoized is not None:
            self._memo.move_to_end(key)
            self.memo_hits += 1
            return memoized
        self.memo_misses += 1
        path = self.path(key)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            return None
        self._memoize(key, record)
        return record

    #: Per-process monotonic counter making concurrent tmp names unique
    #: even when one process writes the same key twice back-to-back.
    _put_counter = itertools.count()

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Store a record atomically; safe under concurrent writers.

        Parameters
        ----------
        key:
            Cell key from :func:`cell_key`.
        record:
            JSON-serializable result record.  The full payload is
            rendered first, written to a writer-private temp file in the
            destination directory (name derived from the key, the
            writer's PID and a per-process counter, opened with
            ``O_CREAT | O_EXCL`` so two writers can never share a temp
            file), then moved into place with ``os.replace`` — readers
            and racing same-key writers never observe a partial entry;
            the last ``replace`` wins whole.
        """
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record, sort_keys=True)
        # A stale tmp from a crashed writer with a recycled PID could
        # collide on O_EXCL; advancing the counter sidesteps it.
        for _attempt in range(8):
            tmp = path.parent / (
                f".{key[:16]}.{os.getpid()}.{next(self._put_counter)}.tmp"
            )
            try:
                fd = os.open(
                    tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                continue
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._memoize(key, record)
            return
        raise OSError(
            f"could not allocate an exclusive temp file for cache key {key}"
        )

    def keys(self) -> Iterator[str]:
        """Iterate over all stored cell keys."""
        if not self.root.exists():
            return
        for entry in sorted(self.root.glob("*/*.json")):
            yield entry.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())
