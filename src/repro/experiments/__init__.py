"""Experiment campaigns: declarative sweeps with a resumable results cache.

The paper's experimental section is a *regime*, not a single run: every
(platform class, communication model, objective) cell of Tables 1-2 gets
swept across instance sizes and seeds.  This package makes such sweeps
declarative and restartable:

* :mod:`repro.experiments.spec` -- :class:`CampaignSpec`, a validated
  scenario grid x solver-configuration product loadable from YAML, JSON
  or a plain dict;
* :mod:`repro.experiments.cache` -- :class:`ResultsCache`, a
  content-addressed on-disk store keyed by (instance hash, solver
  config hash) with atomic writes;
* :mod:`repro.experiments.runner` -- :func:`run_campaign` /
  :func:`campaign_status` / :func:`load_records`, executing the missing
  cells through :func:`repro.service.solve_batch` and resuming
  interrupted campaigns for free.

Quickstart::

    from repro.experiments import load_spec, run_campaign

    spec = load_spec("examples/campaign_small.yaml")
    result = run_campaign(spec, "campaigns/small", workers=4)
    print(result.summary())         # N cells, k cached + m solved ...
    rerun = run_campaign(spec, "campaigns/small")
    assert rerun.n_solved == 0      # second run is pure cache hits

The ``repro-pipelines campaign`` CLI subcommand (``run`` / ``status`` /
``report``) wraps the same functions.
"""

from .cache import (
    ResultsCache,
    cell_key,
    cell_key_for_payload,
    combine_digests,
    instance_digest,
    solver_digest,
)
from .runner import (
    CampaignResult,
    CampaignStatus,
    CellRecord,
    campaign_status,
    load_records,
    run_campaign,
)
from .spec import (
    CampaignSpec,
    CampaignSpecError,
    Scenario,
    ScenarioGrid,
    SolverSpec,
    load_spec,
)

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "CampaignSpecError",
    "CampaignStatus",
    "CellRecord",
    "ResultsCache",
    "Scenario",
    "ScenarioGrid",
    "SolverSpec",
    "campaign_status",
    "cell_key",
    "cell_key_for_payload",
    "combine_digests",
    "instance_digest",
    "load_records",
    "load_spec",
    "run_campaign",
    "solver_digest",
]
