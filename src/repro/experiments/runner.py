"""Campaign execution: enumerate cells, reuse the cache, batch the rest.

:func:`run_campaign` is deliberately a thin deterministic loop on top of
the existing layers — scenarios materialize through
:mod:`repro.generators`, solving goes through
:func:`repro.service.solve_batch` (process-pool fan-out included), and
persistence through :class:`~repro.experiments.cache.ResultsCache`.
Killing a campaign at any point loses at most the in-flight cells;
rerunning the same spec recomputes only what is missing.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..io import mapping_to_dict
from ..service import solve_batch
from ..strategies import SolveTelemetry
from .cache import ResultsCache, combine_digests, instance_digest, solver_digest
from .spec import CampaignSpec, Scenario, SolverSpec

__all__ = [
    "CampaignResult",
    "CampaignStatus",
    "CellRecord",
    "campaign_status",
    "load_records",
    "run_campaign",
]

#: Version stamp written into every cache record.  Schema 2 added the
#: ``telemetry`` field; schema-1 entries simply read back without it.
RECORD_SCHEMA = 2


@dataclass(frozen=True)
class CellRecord:
    """Outcome of one campaign cell (scenario x solver configuration).

    ``status`` mirrors :class:`repro.service.BatchItem`: ``"ok"``,
    ``"infeasible"`` or ``"error"``.  ``cached`` records whether the cell
    was served from the results cache (``True``) or solved during this
    run (``False``).
    """

    scenario: Scenario
    solver: SolverSpec
    key: str
    status: str
    wall_time: float
    cached: bool
    objective: float = math.inf
    values: Optional[Dict[str, float]] = None
    algorithm: Optional[str] = None
    optimal: Optional[bool] = None
    error: Optional[str] = None
    #: Structured per-solve telemetry (strategy spec, evaluations, budget
    #: consumption, portfolio member outcomes); ``None`` for records
    #: written before the strategy layer existed.
    telemetry: Optional[SolveTelemetry] = None

    @property
    def ok(self) -> bool:
        """True when the cell solved successfully."""
        return self.status == "ok"


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of one :func:`run_campaign` call."""

    spec: CampaignSpec
    cache_dir: Path
    records: Tuple[CellRecord, ...]
    #: End-to-end wall-clock of the run, including cache probing.
    total_time: float
    workers: int
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def n_cells(self) -> int:
        """Total cells in the campaign."""
        return len(self.records)

    @property
    def n_cached(self) -> int:
        """Cells served from the results cache without solving."""
        return sum(1 for r in self.records if r.cached)

    @property
    def n_solved(self) -> int:
        """Cells actually solved during this run."""
        return sum(1 for r in self.records if not r.cached)

    @property
    def n_ok(self) -> int:
        """Cells with a successful solution (cached or fresh)."""
        return sum(1 for r in self.records if r.ok)

    @property
    def n_failed(self) -> int:
        """Cells that errored (not merely infeasible)."""
        return sum(1 for r in self.records if r.status == "error")

    def summary(self) -> str:
        """One-line human-readable description of the run."""
        return (
            f"campaign {self.spec.name!r}: {self.n_cells} cells, "
            f"{self.n_cached} cached + {self.n_solved} solved "
            f"({self.n_ok} ok, {self.n_failed} errors) "
            f"workers={self.workers} wall={self.total_time:.3f}s"
        )


@dataclass(frozen=True)
class CampaignStatus:
    """Cache coverage of a campaign spec, without solving anything."""

    spec: CampaignSpec
    cache_dir: Path
    n_cells: int
    n_done: int
    per_solver: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    @property
    def n_missing(self) -> int:
        """Cells not yet present in the results cache."""
        return self.n_cells - self.n_done

    @property
    def complete(self) -> bool:
        """True when every cell is cached."""
        return self.n_missing == 0

    def summary(self) -> str:
        """One-line human-readable description of the coverage."""
        return (
            f"campaign {self.spec.name!r}: {self.n_done}/{self.n_cells} "
            f"cells cached, {self.n_missing} missing"
        )


def _enumerate_cells(
    spec: CampaignSpec,
) -> List[Tuple[Scenario, SolverSpec, Any, str]]:
    """Materialize every (scenario, solver, problem, cache-key) cell.

    Problems and instance digests are computed once per scenario and
    shared across solver configurations, which keeps cache probing
    linear in scenarios + cells rather than re-serializing each instance
    per solver.
    """
    scenarios = spec.scenarios()
    problems = [s.problem() for s in scenarios]
    digests = [instance_digest(p) for p in problems]
    cells = []
    for solver in spec.solvers:
        sd = solver_digest(solver.to_dict())
        for scenario, problem, digest in zip(scenarios, problems, digests):
            cells.append((scenario, solver, problem, combine_digests(digest, sd)))
    return cells


def _record_from_payload(
    scenario: Scenario, solver: SolverSpec, key: str, payload: Dict[str, Any], cached: bool
) -> CellRecord:
    objective = payload.get("objective")
    telemetry = payload.get("telemetry")
    return CellRecord(
        scenario=scenario,
        solver=solver,
        key=key,
        status=payload.get("status", "error"),
        wall_time=float(payload.get("wall_time", 0.0)),
        cached=cached,
        objective=math.inf if objective is None else float(objective),
        values=payload.get("values"),
        algorithm=payload.get("algorithm"),
        optimal=payload.get("optimal"),
        error=payload.get("error"),
        telemetry=(
            None if telemetry is None else SolveTelemetry.from_dict(telemetry)
        ),
    )


def run_campaign(
    spec: CampaignSpec,
    cache_dir: Union[str, Path],
    *,
    workers: Optional[int] = None,
    force: bool = False,
) -> CampaignResult:
    """Execute a campaign, reusing every cached cell.

    Parameters
    ----------
    spec:
        The campaign to run (see :class:`~repro.experiments.CampaignSpec`).
    cache_dir:
        Directory of the content-addressed results cache.  Interrupted
        or extended campaigns pointed at the same directory resume:
        cells already present are *not* re-solved.
    workers:
        Process-pool size for the underlying
        :func:`repro.service.solve_batch` calls (``None``/``<=1`` solves
        sequentially in-process).
    force:
        When ``True``, ignore (and overwrite) cached entries.

    Returns
    -------
    CampaignResult
        One :class:`CellRecord` per cell, in deterministic spec order,
        each flagged ``cached`` or freshly solved.
    """
    cache = ResultsCache(cache_dir)
    t0 = time.perf_counter()
    cells = _enumerate_cells(spec)
    records: List[Optional[CellRecord]] = [None] * len(cells)
    misses: Dict[str, List[int]] = {}
    solvers_by_name = {s.name: s for s in spec.solvers}
    for i, (scenario, solver, problem, key) in enumerate(cells):
        payload = None if force else cache.get(key)
        if payload is not None:
            records[i] = _record_from_payload(scenario, solver, key, payload, cached=True)
        else:
            misses.setdefault(solver.name, []).append(i)

    # Solve in bounded chunks so results reach the cache as the campaign
    # progresses: a kill loses at most one chunk, not a whole solver batch.
    chunk_size = max(16, 4 * (workers or 1))
    effective_workers = 1
    for solver_name, indices in misses.items():
        solver = solvers_by_name[solver_name]
        for start in range(0, len(indices), chunk_size):
            chunk = indices[start : start + chunk_size]
            batch = solve_batch(
                [cells[i][2] for i in chunk],
                objective=solver.objective,
                method=solver.method,
                workers=workers,
                thresholds=solver.thresholds(),
                strategy=solver.strategy,
                budget=solver.budget,
                engine=solver.engine,
            )
            effective_workers = max(effective_workers, batch.workers)
            for item in batch.items:
                i = chunk[item.index]
                scenario, cell_solver, _problem, key = cells[i]
                payload: Dict[str, Any] = {
                    "schema": RECORD_SCHEMA,
                    "status": item.status,
                    "wall_time": item.wall_time,
                    "objective": None,
                    "values": None,
                    "algorithm": None,
                    "optimal": None,
                    "error": item.error,
                    "scenario": scenario.axes(),
                    "solver_spec": cell_solver.to_dict(),
                    "telemetry": (
                        None
                        if item.telemetry is None
                        else item.telemetry.to_dict()
                    ),
                }
                if item.solution is not None:
                    payload.update(
                        objective=item.solution.objective,
                        values={
                            "period": item.solution.values.period,
                            "latency": item.solution.values.latency,
                            "energy": item.solution.values.energy,
                        },
                        algorithm=item.solution.solver,
                        optimal=item.solution.optimal,
                        mapping=mapping_to_dict(item.solution.mapping),
                    )
                cache.put(key, payload)
                records[i] = _record_from_payload(
                    scenario, cell_solver, key, payload, cached=False
                )

    done = [r for r in records if r is not None]
    assert len(done) == len(cells), "every cell must produce a record"
    total = time.perf_counter() - t0
    return CampaignResult(
        spec=spec,
        cache_dir=Path(cache_dir),
        records=tuple(done),
        total_time=total,
        workers=effective_workers,
        stats={
            "n_cells": float(len(cells)),
            "n_cached": float(sum(1 for r in done if r.cached)),
            "solve_time": sum(r.wall_time for r in done if not r.cached),
        },
    )


def campaign_status(
    spec: CampaignSpec, cache_dir: Union[str, Path]
) -> CampaignStatus:
    """Report cache coverage of a campaign without solving anything.

    Parameters
    ----------
    spec:
        The campaign spec to check.
    cache_dir:
        The results-cache directory a previous (possibly interrupted)
        run wrote to.

    Returns
    -------
    CampaignStatus
        Total/done/missing cell counts, plus a per-solver breakdown
        mapping each solver name to ``(done, total)``.
    """
    cache = ResultsCache(cache_dir)
    cells = _enumerate_cells(spec)
    per_solver: Dict[str, List[int]] = {
        s.name: [0, 0] for s in spec.solvers
    }
    n_done = 0
    for _scenario, solver, _problem, key in cells:
        per_solver[solver.name][1] += 1
        if key in cache:
            per_solver[solver.name][0] += 1
            n_done += 1
    return CampaignStatus(
        spec=spec,
        cache_dir=Path(cache_dir),
        n_cells=len(cells),
        n_done=n_done,
        per_solver={k: (v[0], v[1]) for k, v in per_solver.items()},
    )


def load_records(
    spec: CampaignSpec, cache_dir: Union[str, Path]
) -> List[CellRecord]:
    """Load the cached records of a campaign, skipping missing cells.

    Parameters
    ----------
    spec:
        The campaign spec whose cells to look up.
    cache_dir:
        The results-cache directory.

    Returns
    -------
    list of CellRecord
        Records for every cell already present in the cache, in
        deterministic spec order (all flagged ``cached=True``).  Use
        :func:`campaign_status` to see how many cells are missing.
    """
    cache = ResultsCache(cache_dir)
    out = []
    for scenario, solver, _problem, key in _enumerate_cells(spec):
        payload = cache.get(key)
        if payload is not None:
            out.append(_record_from_payload(scenario, solver, key, payload, cached=True))
    return out
