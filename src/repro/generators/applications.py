"""Random application generators (Section 3.1 shapes)."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.application import Application


def random_application(
    rng: np.random.Generator,
    n_stages: int,
    *,
    work_range: Tuple[float, float] = (1.0, 10.0),
    data_range: Tuple[float, float] = (0.0, 5.0),
    weight: float = 1.0,
    integer: bool = False,
    name: str = "",
) -> Application:
    """A pipeline with works and data sizes drawn uniformly from the given
    ranges (``integer=True`` rounds to integers, keeping works >= 1)."""
    lo_w, hi_w = work_range
    lo_d, hi_d = data_range
    works = rng.uniform(lo_w, hi_w, size=n_stages)
    datas = rng.uniform(lo_d, hi_d, size=n_stages + 1)
    if integer:
        works = np.maximum(1, np.rint(works))
        datas = np.rint(datas)
    return Application.from_lists(
        works=[float(w) for w in works],
        output_sizes=[float(d) for d in datas[1:]],
        input_data_size=float(datas[0]),
        weight=weight,
        name=name or f"app-{rng.integers(10**6)}",
    )


def random_applications(
    rng: np.random.Generator,
    n_apps: int,
    *,
    stage_range: Tuple[int, int] = (2, 5),
    work_range: Tuple[float, float] = (1.0, 10.0),
    data_range: Tuple[float, float] = (0.0, 5.0),
    weights: Optional[Sequence[float]] = None,
    integer: bool = False,
) -> Tuple[Application, ...]:
    """A collection of independent random pipelines."""
    if weights is None:
        weights = [1.0] * n_apps
    lo, hi = stage_range
    return tuple(
        random_application(
            rng,
            int(rng.integers(lo, hi + 1)),
            work_range=work_range,
            data_range=data_range,
            weight=weights[a],
            integer=integer,
            name=f"app-{a + 1}",
        )
        for a in range(n_apps)
    )


def special_app_family(
    n_apps: int,
    n_stages: int,
    *,
    work: float = 1.0,
    weights: Optional[Sequence[float]] = None,
) -> Tuple[Application, ...]:
    """The ``special-app`` family of Tables 1-2: identical homogeneous
    pipelines with no communication (the 3-PARTITION gadget shape)."""
    if weights is None:
        weights = [1.0] * n_apps
    return tuple(
        Application.homogeneous(
            n_stages,
            work=work,
            output_size=0.0,
            input_data_size=0.0,
            weight=weights[a],
            name=f"pipeline-{a + 1}",
        )
        for a in range(n_apps)
    )


def streaming_application(
    rng: np.random.Generator,
    n_stages: int,
    *,
    profile: str = "encode",
    weight: float = 1.0,
    name: str = "",
) -> Application:
    """A pipeline shaped after the paper's motivating streaming domains.

    Profiles:

    * ``"encode"`` -- video/audio encoding: heavy middle stages (transform,
      quantization), shrinking data sizes along the chain;
    * ``"filter"`` -- image processing / DSP: near-uniform works, constant
      frame size between stages;
    * ``"analytics"`` -- heavy first stage (parse/decode) then light
      reductions with sharply decreasing data.
    """
    k = np.arange(n_stages)
    if profile == "encode":
        works = 2.0 + 8.0 * np.exp(-0.5 * (k - n_stages / 2) ** 2 / max(1, n_stages / 3))
        datas = np.linspace(8.0, 1.0, n_stages + 1)
    elif profile == "filter":
        works = np.full(n_stages, 5.0)
        datas = np.full(n_stages + 1, 4.0)
    elif profile == "analytics":
        works = np.concatenate(([12.0], 3.0 * np.ones(n_stages - 1)))
        datas = 8.0 * np.exp(-0.7 * np.arange(n_stages + 1))
    else:
        raise ValueError(f"unknown profile {profile!r}")
    works = works * rng.uniform(0.85, 1.15, size=n_stages)
    datas = datas * rng.uniform(0.85, 1.15, size=n_stages + 1)
    return Application.from_lists(
        works=[float(w) for w in works],
        output_sizes=[float(d) for d in datas[1:]],
        input_data_size=float(datas[0]),
        weight=weight,
        name=name or f"{profile}-{n_stages}",
    )
