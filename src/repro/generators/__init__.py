"""Seeded random instance generators for tests, benches and examples.

* :mod:`applications` -- random pipelines, the homogeneous ``special-app``
  family, and workload shapes mimicking the paper's motivating domains
  (stream encoding, image processing);
* :mod:`platforms` -- the three platform classes with DVFS-style speed
  ladders;
* :mod:`scenarios` -- named, fully-assembled problem instances reused by
  the benches and examples.

Every generator takes an explicit ``numpy.random.Generator`` (or an integer
seed through :func:`rng_from`), keeping all experiments reproducible.
"""

from .applications import (
    random_application,
    random_applications,
    special_app_family,
    streaming_application,
)
from .platforms import (
    dvfs_speed_ladder,
    random_comm_homogeneous_platform,
    random_fully_heterogeneous_platform,
    random_fully_homogeneous_platform,
)
from .scenarios import rng_from, small_random_problem

__all__ = [
    "dvfs_speed_ladder",
    "random_application",
    "random_applications",
    "random_comm_homogeneous_platform",
    "random_fully_heterogeneous_platform",
    "random_fully_homogeneous_platform",
    "rng_from",
    "small_random_problem",
    "special_app_family",
    "streaming_application",
]
