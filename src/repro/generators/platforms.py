"""Random platform generators for the three platform classes (Section 3.2).

Speed sets follow DVFS-style ladders: a base frequency scaled by a small set
of multipliers, mimicking the discrete frequency steps of real processors
(the multi-modal model the paper takes from DVFS practice [Hotta et al.]).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.platform import Platform


def dvfs_speed_ladder(
    base: float,
    n_modes: int,
    *,
    top_ratio: float = 2.0,
) -> Tuple[float, ...]:
    """A geometric ladder of ``n_modes`` speeds from ``base`` to
    ``base * top_ratio`` (a single mode returns ``(base,)``)."""
    if n_modes <= 0:
        raise ValueError("n_modes must be positive")
    if n_modes == 1:
        return (base,)
    ratios = np.geomspace(1.0, top_ratio, n_modes)
    return tuple(float(base * r) for r in ratios)


def random_fully_homogeneous_platform(
    rng: np.random.Generator,
    n_processors: int,
    *,
    n_modes: int = 1,
    speed_range: Tuple[float, float] = (1.0, 4.0),
    bandwidth_range: Tuple[float, float] = (1.0, 4.0),
    static_energy: float = 0.0,
) -> Platform:
    """Identical processors (one random DVFS ladder) and identical links."""
    base = float(rng.uniform(*speed_range))
    return Platform.fully_homogeneous(
        n_processors,
        speeds=dvfs_speed_ladder(base, n_modes),
        bandwidth=float(rng.uniform(*bandwidth_range)),
        static_energy=static_energy,
    )


def random_comm_homogeneous_platform(
    rng: np.random.Generator,
    n_processors: int,
    *,
    n_modes: int = 1,
    speed_range: Tuple[float, float] = (1.0, 4.0),
    bandwidth_range: Tuple[float, float] = (1.0, 4.0),
    static_energy: float = 0.0,
) -> Platform:
    """Heterogeneous processors (per-processor DVFS ladders), one link
    bandwidth."""
    speed_sets = [
        dvfs_speed_ladder(float(rng.uniform(*speed_range)), n_modes)
        for _ in range(n_processors)
    ]
    return Platform.comm_homogeneous(
        speed_sets,
        bandwidth=float(rng.uniform(*bandwidth_range)),
        static_energies=[static_energy] * n_processors,
    )


def random_fully_heterogeneous_platform(
    rng: np.random.Generator,
    n_processors: int,
    n_apps: int,
    *,
    n_modes: int = 1,
    speed_range: Tuple[float, float] = (1.0, 4.0),
    bandwidth_range: Tuple[float, float] = (0.5, 4.0),
    static_energy: float = 0.0,
) -> Platform:
    """Heterogeneous processors and per-link bandwidths (including the
    virtual input/output links of each application)."""
    speed_sets = [
        dvfs_speed_ladder(float(rng.uniform(*speed_range)), n_modes)
        for _ in range(n_processors)
    ]
    links: Dict[Tuple[int, int], float] = {}
    for u in range(n_processors):
        for v in range(u + 1, n_processors):
            links[(u, v)] = float(rng.uniform(*bandwidth_range))
    in_links = {
        (a, u): float(rng.uniform(*bandwidth_range))
        for a in range(n_apps)
        for u in range(n_processors)
    }
    out_links = {
        (a, u): float(rng.uniform(*bandwidth_range))
        for a in range(n_apps)
        for u in range(n_processors)
    }
    return Platform.fully_heterogeneous(
        speed_sets,
        links,
        in_links=in_links,
        out_links=out_links,
        static_energies=[static_energy] * n_processors,
    )
