"""Named, fully-assembled scenarios shared by tests, benches and examples."""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..core.problem import ProblemInstance
from ..core.types import CommunicationModel, MappingRule, PlatformClass
from .applications import random_applications
from .platforms import (
    random_comm_homogeneous_platform,
    random_fully_heterogeneous_platform,
    random_fully_homogeneous_platform,
)


def rng_from(seed: Union[int, np.random.Generator]) -> np.random.Generator:
    """Coerce a seed or generator into a ``numpy.random.Generator``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def small_random_problem(
    seed: Union[int, np.random.Generator],
    *,
    platform_class: PlatformClass = PlatformClass.FULLY_HOMOGENEOUS,
    rule: MappingRule = MappingRule.INTERVAL,
    model: CommunicationModel = CommunicationModel.OVERLAP,
    n_apps: int = 2,
    n_procs: Optional[int] = None,
    stage_range: tuple = (2, 4),
    n_modes: int = 1,
) -> ProblemInstance:
    """A small random instance in the requested Table 1/2 cell, sized for
    brute-force validation (total stages typically <= 8)."""
    rng = rng_from(seed)
    apps = random_applications(rng, n_apps, stage_range=stage_range)
    total = sum(a.n_stages for a in apps)
    if n_procs is None:
        n_procs = total + int(rng.integers(0, 2))
    if rule is MappingRule.ONE_TO_ONE:
        n_procs = max(n_procs, total)
    if platform_class is PlatformClass.FULLY_HOMOGENEOUS:
        platform = random_fully_homogeneous_platform(
            rng, n_procs, n_modes=n_modes
        )
    elif platform_class is PlatformClass.COMM_HOMOGENEOUS:
        platform = random_comm_homogeneous_platform(
            rng, n_procs, n_modes=n_modes
        )
    else:
        platform = random_fully_heterogeneous_platform(
            rng, n_procs, n_apps, n_modes=n_modes
        )
    return ProblemInstance(
        apps=apps, platform=platform, rule=rule, model=model
    )
