"""Observability: structured tracing, histogram metrics, exporters.

The :mod:`repro.obs` package is the instrumentation seam threaded
through every serving layer (client → router → daemon → pool worker →
solver engine):

* :mod:`repro.obs.spans` — a lightweight span API.  A *trace id* rides a
  job submission as the ``X-Repro-Trace-Id`` HTTP header and crosses
  executor/pool boundaries inside job configuration; spans record into a
  per-process ring buffer served by ``GET /v1/traces/{trace_id}`` (the
  shard router merges spans across the fleet) and optionally into a
  JSONL sink.  Solver engines report per-phase timings (neighborhood
  generation, batch evaluation, accept replay, fused nopython kernels)
  through near-zero-cost phase accumulators.
* :mod:`repro.obs.metrics` — a small metrics registry: counters, gauges
  and fixed-bucket histograms with per-metric locks, safe to update from
  any thread.
* :mod:`repro.obs.export` — Prometheus text exposition rendered *from*
  the JSON ``/v1/metrics`` payload, so the ``GET /metrics`` families are
  consistent with the JSON counters by construction.
* :mod:`repro.obs.render` — operator surfaces: the ``repro-pipelines
  top`` fleet table, histogram quantile estimation and span-tree
  formatting (also used by the daemon's slow-solve log).

Disable all of it with ``REPRO_OBS=0`` in the environment or
:func:`repro.obs.spans.configure` ``(enabled=False)``; the disabled hot
path is a single context-variable read per instrumentation point.
"""

from . import export, metrics, render, spans

__all__ = ["export", "metrics", "render", "spans"]
