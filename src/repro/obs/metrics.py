"""Minimal metrics primitives: counters, gauges, fixed-bucket histograms.

Each metric guards its state with its own lock, so concurrent observers
(the asyncio event-loop thread, executor callbacks, HTTP scrape threads)
never contend on a global.  Snapshots are plain JSON-serializable dicts;
the Prometheus text exposition in :mod:`repro.obs.export` is rendered
from the same snapshots the JSON ``/v1/metrics`` payload embeds, which
keeps the two surfaces consistent by construction.

Histogram buckets are fixed at construction (cumulative ``le`` bounds in
the Prometheus style); the default latency ladder spans 100 µs – 60 s.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "COUNT_BUCKETS",
    "FAST_LATENCY_BUCKETS",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Solve-wall / queue-wait latencies: 100 µs .. 60 s.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Cache lookups / per-hop forwards: 10 µs .. 1 s.
FAST_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005, 0.001,
    0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

#: Evaluations-per-job style counts: powers of ten up to 10M.
COUNT_BUCKETS: Tuple[float, ...] = (
    1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0, 1000000.0, 10000000.0,
)


class Counter:
    """Monotonic counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins gauge."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class _HistogramSeries:
    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Tuple[float, ...]):
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * len(bounds)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        bounds = self._bounds
        lo, hi = 0, len(bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            if lo < len(bounds):
                self._counts[lo] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            total = self._count
            acc_sum = self._sum
        cumulative: List[List[float]] = []
        running = 0
        for bound, count in zip(self._bounds, counts):
            running += count
            cumulative.append([bound, running])
        return {"buckets": cumulative, "sum": acc_sum, "count": total}


class Histogram:
    """Fixed-bucket cumulative histogram, optionally labelled.

    Without ``labelnames`` observations go straight to a single series.
    With labels, :meth:`labels` returns (creating on first use) a child
    series keyed by the label values, and the snapshot carries a
    ``series`` mapping keyed by ``"|"``-joined label values.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ):
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        if any(math.isnan(b) for b in self.buckets):
            raise ValueError("histogram bucket bounds must not be NaN")
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        if self.labelnames:
            self._series: Optional[Dict[str, _HistogramSeries]] = {}
            self._default: Optional[_HistogramSeries] = None
        else:
            self._series = None
            self._default = _HistogramSeries(self.buckets)

    def observe(self, value: float) -> None:
        if self._default is None:
            raise ValueError(
                "histogram %r has labels %r; use .labels()" % (self.name, self.labelnames)
            )
        self._default.observe(float(value))

    def labels(self, *values: str) -> _HistogramSeries:
        if self._series is None:
            raise ValueError("histogram %r has no labels" % self.name)
        if len(values) != len(self.labelnames):
            raise ValueError(
                "histogram %r expects %d label values, got %d"
                % (self.name, len(self.labelnames), len(values))
            )
        key = "|".join(str(v) for v in values)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.setdefault(key, _HistogramSeries(self.buckets))
        return series

    def snapshot(self) -> Dict[str, Any]:
        if self._default is not None:
            snap = self._default.snapshot()
            snap["type"] = "histogram"
            return snap
        with self._lock:
            items = list(self._series.items())  # type: ignore[union-attr]
        return {
            "type": "histogram",
            "labelnames": list(self.labelnames),
            "series": {key: series.snapshot() for key, series in items},
        }


class MetricsRegistry:
    """Ordered get-or-create store of named metrics."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, factory) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name, help))
        if not isinstance(metric, Counter):
            raise TypeError("metric %r already registered as %s" % (name, metric.kind))
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name, help))
        if not isinstance(metric, Gauge):
            raise TypeError("metric %r already registered as %s" % (name, metric.kind))
        return metric

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = LATENCY_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        metric = self._get_or_create(
            name, lambda: Histogram(name, help, buckets, labelnames)
        )
        if not isinstance(metric, Histogram):
            raise TypeError("metric %r already registered as %s" % (name, metric.kind))
        return metric

    def names(self) -> List[str]:
        with self._lock:
            return list(self._metrics)

    def to_dict(self, kinds: Optional[Iterable[str]] = None) -> Dict[str, Any]:
        """Snapshot every metric (optionally filtered by kind) as JSON."""
        wanted = set(kinds) if kinds is not None else None
        with self._lock:
            items = list(self._metrics.items())
        out: Dict[str, Any] = {}
        for name, metric in items:
            if wanted is not None and metric.kind not in wanted:
                continue
            out[name] = metric.snapshot()
        return out
