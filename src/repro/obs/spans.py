"""Lightweight structured tracing.

Design goals, in priority order:

1. **Near-zero cost when idle.**  Every instrumentation point first does
   a single :class:`contextvars.ContextVar` read; when no trace is
   active (library use, benchmarks with obs disabled) nothing else runs.
2. **Cross-process portability.**  Spans are plain dicts.  A worker
   process records spans into its own per-process ring buffer and the
   batch layer moves them back to the parent attached to result items
   (:func:`take`), so a daemon can ingest solver-phase spans produced
   inside executor/pool workers into its own buffer.
3. **No dependencies.**  Stdlib only; the ring buffer is a deque behind
   one lock, and the optional JSONL sink is a plain append-mode file.

Span schema (one JSON object per span)::

    {
      "trace_id": "t-4f2a9c11d03b",   # shared by every span of a request
      "span_id":  "s-1a2b-3",         # unique within the fleet
      "parent_id": "s-..." | None,    # tree edge
      "name": "solve.evaluate",       # dotted phase name
      "start": 1754640000.123,        # wall clock (time.time), for display
      "duration": 0.00042,            # seconds, from a monotonic clock
      "proc": "daemon-0",             # recording process label
      "attrs": {...},                 # optional small payload
    }

Phase accumulation: per-span recording inside a hill-climb step would
flood the buffer (thousands of spans per solve), so engines use
:func:`track` to accumulate (total seconds, call count) per phase name
into a context-local dict opened by :func:`collect`; when the enclosing
collect span closes, one *aggregated* child span is emitted per phase
with a ``calls`` attribute.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "TRACE_HEADER",
    "PARENT_HEADER",
    "CLIENT_SEND_HEADER",
    "SpanRecorder",
    "collect",
    "configure",
    "current_parent_id",
    "current_trace_id",
    "enabled",
    "new_span_id",
    "new_trace_id",
    "record_span",
    "recorder",
    "set_ambient_trace",
    "span",
    "trace_context",
    "track",
]

TRACE_HEADER = "X-Repro-Trace-Id"
PARENT_HEADER = "X-Repro-Parent-Id"
CLIENT_SEND_HEADER = "X-Repro-Client-Send"

DEFAULT_RING_SIZE = 8192

# (trace_id, parent_span_id) of the active trace, or None when no trace
# is being recorded.  One ContextVar for both halves keeps the disabled
# fast path to a single .get().
_TRACE: ContextVar[Optional[Tuple[str, Optional[str]]]] = ContextVar(
    "repro_obs_trace", default=None
)

# Phase accumulator opened by collect(); maps phase name -> [total_s, calls].
_PHASES: ContextVar[Optional[Dict[str, List[float]]]] = ContextVar(
    "repro_obs_phases", default=None
)

_ENABLED = os.environ.get("REPRO_OBS", "1") not in ("0", "false", "no", "off")

_id_counter = itertools.count(1)
_id_lock = threading.Lock()


def _next_seq() -> int:
    with _id_lock:
        return next(_id_counter)


def new_trace_id() -> str:
    """Return a fresh trace id (fleet-unique with high probability)."""
    return "t-%08x%04x" % (
        int(time.time() * 1000) & 0xFFFFFFFF,
        (os.getpid() * 31 + _next_seq()) & 0xFFFF,
    )


def new_span_id() -> str:
    """Return a span id unique within the fleet (pid + process counter)."""
    return "s-%x-%x" % (os.getpid(), _next_seq())


class SpanRecorder:
    """Thread-safe in-process ring buffer of finished spans."""

    def __init__(self, ring_size: int = DEFAULT_RING_SIZE, proc: Optional[str] = None):
        self._lock = threading.Lock()
        self._ring_size = int(ring_size)
        self._spans: List[Dict[str, Any]] = []
        self._ids: set = set()
        self._jsonl_path: Optional[str] = None
        self._proc = proc

    @property
    def proc(self) -> str:
        # Computed per call rather than cached at construction: a forked
        # pool worker inherits the parent's recorder, and a cached label
        # would stamp the worker's spans with the parent's pid.
        return self._proc or ("pid-%d" % os.getpid())

    def configure(
        self,
        *,
        ring_size: Optional[int] = None,
        jsonl_path: Optional[str] = None,
        proc: Optional[str] = None,
    ) -> None:
        with self._lock:
            if ring_size is not None:
                self._ring_size = int(ring_size)
                self._evict_locked()
            if jsonl_path is not None:
                self._jsonl_path = jsonl_path or None
            if proc is not None:
                self._proc = proc

    def _evict_locked(self) -> None:
        excess = len(self._spans) - self._ring_size
        if excess > 0:
            for evicted in self._spans[:excess]:
                self._ids.discard(evicted.get("span_id"))
            del self._spans[:excess]

    def record(self, span_dict: Dict[str, Any]) -> None:
        span_dict.setdefault("proc", self.proc)
        with self._lock:
            self._spans.append(span_dict)
            sid = span_dict.get("span_id")
            if sid is not None:
                self._ids.add(sid)
            self._evict_locked()
            path = self._jsonl_path
        if path:
            try:
                with open(path, "a", encoding="utf-8") as handle:
                    handle.write(json.dumps(span_dict, sort_keys=True) + "\n")
            except OSError:
                pass

    def ingest(self, spans: Iterable[Dict[str, Any]]) -> int:
        """Record spans produced by another process, keeping their proc.

        Idempotent per span id: a span already in the ring is skipped.
        A fork-started pool worker inherits this ring's contents, so the
        pre-dispatch spans of a trace ride back on the first result item
        the worker returns; without the guard they would appear twice.
        """
        n = 0
        for span_dict in spans:
            if not isinstance(span_dict, dict):
                continue
            sid = span_dict.get("span_id")
            with self._lock:
                if sid is not None and sid in self._ids:
                    continue
            self.record(dict(span_dict))
            n += 1
        return n

    def spans_for(self, trace_id: str) -> List[Dict[str, Any]]:
        with self._lock:
            found = [dict(s) for s in self._spans if s.get("trace_id") == trace_id]
        found.sort(key=lambda s: (s.get("start", 0.0), s.get("span_id", "")))
        return found

    def take(self, trace_id: str) -> List[Dict[str, Any]]:
        """Remove and return all spans of ``trace_id`` (for hand-off)."""
        with self._lock:
            taken = [s for s in self._spans if s.get("trace_id") == trace_id]
            if taken:
                self._spans = [s for s in self._spans if s.get("trace_id") != trace_id]
                for s in taken:
                    self._ids.discard(s.get("span_id"))
        taken.sort(key=lambda s: (s.get("start", 0.0), s.get("span_id", "")))
        return taken

    def trace_ids(self) -> List[str]:
        with self._lock:
            seen: Dict[str, None] = {}
            for s in self._spans:
                seen.setdefault(s.get("trace_id", ""), None)
        return [t for t in seen if t]

    def clear(self) -> None:
        with self._lock:
            self._spans = []
            self._ids = set()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_RECORDER = SpanRecorder()


def recorder() -> SpanRecorder:
    """Return the per-process global span recorder."""
    return _RECORDER


def configure(
    *,
    enabled: Optional[bool] = None,
    ring_size: Optional[int] = None,
    jsonl_path: Optional[str] = None,
    proc: Optional[str] = None,
) -> None:
    """Configure process-wide tracing (enable flag, ring, sink, label)."""
    global _ENABLED
    if enabled is not None:
        _ENABLED = bool(enabled)
    _RECORDER.configure(ring_size=ring_size, jsonl_path=jsonl_path, proc=proc)


def enabled() -> bool:
    return _ENABLED


def current_trace_id() -> Optional[str]:
    ctx = _TRACE.get()
    return ctx[0] if ctx is not None else None


def current_parent_id() -> Optional[str]:
    ctx = _TRACE.get()
    return ctx[1] if ctx is not None else None


def set_ambient_trace(trace_id: Optional[str], parent_id: Optional[str] = None) -> None:
    """Set the trace context for the rest of this thread/process.

    Used by pool workers at startup: unlike :func:`trace_context` there is
    no scope to restore — the worker's whole lifetime belongs to whatever
    job context it was handed.
    """
    _TRACE.set((trace_id, parent_id) if trace_id else None)


@contextmanager
def trace_context(
    trace_id: Optional[str], parent_id: Optional[str] = None
) -> Iterator[None]:
    """Run a block with ``trace_id`` as the ambient trace (scoped)."""
    token = _TRACE.set((trace_id, parent_id) if trace_id else None)
    try:
        yield
    finally:
        _TRACE.reset(token)


def record_span(
    name: str,
    *,
    start: float,
    duration: float,
    trace_id: Optional[str] = None,
    parent_id: Optional[str] = None,
    span_id: Optional[str] = None,
    **attrs: Any,
) -> Optional[str]:
    """Record a span from explicit timestamps (e.g. queue-wait).

    ``trace_id``/``parent_id`` default to the ambient context.  Returns
    the span id, or ``None`` when tracing is off / no trace is active.
    """
    if not _ENABLED:
        return None
    if trace_id is None:
        ctx = _TRACE.get()
        if ctx is None:
            return None
        trace_id = ctx[0]
        if parent_id is None:
            parent_id = ctx[1]
    sid = span_id or new_span_id()
    _RECORDER.record(
        {
            "trace_id": trace_id,
            "span_id": sid,
            "parent_id": parent_id,
            "name": name,
            "start": float(start),
            "duration": float(duration),
            "attrs": attrs,
        }
    )
    return sid


class span:
    """Context manager recording one span around a block.

    No-op (and allocation-light) when tracing is disabled or no trace is
    active.  Exposes ``span_id`` (``None`` when inactive) and a mutable
    ``attrs`` dict that can be filled before exit.
    """

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "_token",
        "_start_wall",
        "_start_perf",
    )

    def __init__(self, name: str, **attrs: Any):
        self.name = name
        self.attrs = attrs
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None

    def __enter__(self) -> "span":
        ctx = _TRACE.get()
        if ctx is None or not _ENABLED:
            return self
        self.trace_id, self.parent_id = ctx
        self.span_id = new_span_id()
        self._token = _TRACE.set((self.trace_id, self.span_id))
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.span_id is None:
            return False
        duration = time.perf_counter() - self._start_perf
        _TRACE.reset(self._token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        _RECORDER.record(
            {
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "name": self.name,
                "start": self._start_wall,
                "duration": duration,
                "attrs": self.attrs,
            }
        )
        return False


class _NullTrack:
    """Shared no-op phase tracker (returned when no collector is open)."""

    __slots__ = ()

    def __enter__(self) -> "_NullTrack":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_TRACK = _NullTrack()


class _Track:
    __slots__ = ("_acc", "_name", "_t0")

    def __init__(self, acc: Dict[str, List[float]], name: str):
        self._acc = acc
        self._name = name

    def __enter__(self) -> "_Track":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._t0
        entry = self._acc.get(self._name)
        if entry is None:
            self._acc[self._name] = [elapsed, 1.0]
        else:
            entry[0] += elapsed
            entry[1] += 1.0
        return False


def track(name: str):
    """Accumulate a phase timing into the innermost :func:`collect` block.

    Returns a shared no-op when no collector is open, so instrumenting a
    hot loop costs one ContextVar read per call in the common case.
    """
    acc = _PHASES.get()
    if acc is None:
        return _NULL_TRACK
    return _Track(acc, name)


@contextmanager
def collect(name: str, **attrs: Any) -> Iterator[Optional[Dict[str, List[float]]]]:
    """Open a parent span plus a phase accumulator for :func:`track`.

    On exit, emits the parent span and one aggregated child span per
    tracked phase (duration = summed seconds, ``calls`` attribute =
    number of invocations).  Yields the accumulator dict, or ``None``
    when tracing is inactive.
    """
    ctx = _TRACE.get()
    if ctx is None or not _ENABLED:
        yield None
        return
    acc: Dict[str, List[float]] = {}
    token = _PHASES.set(acc)
    parent = span(name, **attrs)
    try:
        with parent:
            yield acc
    finally:
        _PHASES.reset(token)
        if parent.span_id is not None and acc:
            start = parent._start_wall
            for phase_name, (total, calls) in acc.items():
                record_span(
                    phase_name,
                    start=start,
                    duration=total,
                    trace_id=parent.trace_id,
                    parent_id=parent.span_id,
                    calls=int(calls),
                    aggregated=True,
                )
