"""Prometheus text exposition for ``GET /metrics``.

The exposition is rendered *from* the JSON ``/v1/metrics`` payload (the
daemon's :meth:`SolveService.metrics` or the router's fleet aggregate),
never from live metric objects: both surfaces therefore describe the
same atomic snapshot and every histogram bucket count in the text
format matches the ``histograms`` section of the JSON payload by
construction.

Only the subset of the exposition format we emit is implemented:
``# HELP`` / ``# TYPE`` comments, ``metric{label="v"} value`` samples,
and the cumulative ``_bucket``/``_sum``/``_count`` histogram triplet
with the mandatory ``+Inf`` bucket.  All families carry the ``repro_``
prefix.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = ["parse_prometheus", "to_prometheus"]

_PREFIX = "repro"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _fmt_labels(labels: Optional[Mapping[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (k, _escape_label(v)) for k, v in labels.items()
    )
    return "{%s}" % inner


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self._seen_header: Dict[str, None] = {}

    def header(self, name: str, kind: str, help: str) -> None:
        if name in self._seen_header:
            return
        self._seen_header[name] = None
        self.lines.append("# HELP %s %s" % (name, help))
        self.lines.append("# TYPE %s %s" % (name, kind))

    def sample(
        self,
        name: str,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.lines.append(
            "%s%s %s" % (name, _fmt_labels(labels), _fmt_value(value))
        )

    def counter(
        self,
        name: str,
        value: float,
        help: str,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.header(name, "counter", help)
        self.sample(name, value, labels)

    def gauge(
        self,
        name: str,
        value: float,
        help: str,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.header(name, "gauge", help)
        self.sample(name, value, labels)

    def histogram(
        self,
        name: str,
        snapshot: Mapping[str, Any],
        help: str,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.header(name, "histogram", help)
        base = dict(labels) if labels else {}
        for bound, cumulative in snapshot.get("buckets", []):
            bucket_labels = dict(base)
            bucket_labels["le"] = _fmt_value(float(bound))
            self.sample(name + "_bucket", cumulative, bucket_labels)
        inf_labels = dict(base)
        inf_labels["le"] = "+Inf"
        self.sample(name + "_bucket", snapshot.get("count", 0), inf_labels)
        self.sample(name + "_sum", snapshot.get("sum", 0.0), base or None)
        self.sample(name + "_count", snapshot.get("count", 0), base or None)

    def render(self) -> str:
        return "\n".join(self.lines) + "\n"


def _emit_histograms(
    writer: _Writer,
    histograms: Mapping[str, Any],
    extra_labels: Optional[Mapping[str, str]] = None,
) -> None:
    for raw_name, snap in sorted(histograms.items()):
        name = "%s_%s" % (_PREFIX, raw_name)
        help_text = "distribution of %s" % raw_name.replace("_", " ")
        if "series" in snap:
            labelnames = snap.get("labelnames") or ["label"]
            for key, series in sorted(snap["series"].items()):
                labels = dict(extra_labels or {})
                labels.update(zip(labelnames, key.split("|")))
                writer.histogram(name, series, help_text, labels)
        else:
            writer.histogram(name, snap, help_text, extra_labels)


def _emit_daemon(
    writer: _Writer,
    payload: Mapping[str, Any],
    labels: Optional[Mapping[str, str]] = None,
) -> None:
    """Emit one daemon's families (optionally labelled with its shard)."""
    queue = payload.get("queue", {})
    jobs = payload.get("jobs", {})
    solver = payload.get("solver", {})
    cache = payload.get("cache", {})

    writer.gauge(
        "%s_uptime_seconds" % _PREFIX,
        float(payload.get("uptime_s", 0.0)),
        "seconds since the service started",
        labels,
    )
    writer.gauge(
        "%s_queue_depth" % _PREFIX,
        float(queue.get("depth", 0)),
        "cells waiting in the queue",
        labels,
    )
    writer.gauge(
        "%s_queue_running" % _PREFIX,
        float(queue.get("running", 0)),
        "cells currently solving",
        labels,
    )
    writer.gauge(
        "%s_queue_concurrency" % _PREFIX,
        float(queue.get("concurrency", 0)),
        "configured solve concurrency",
        labels,
    )
    if queue.get("max_depth") is not None:
        writer.gauge(
            "%s_queue_max_depth" % _PREFIX,
            float(queue["max_depth"]),
            "bound on queued cells",
            labels,
        )
    if "jobs_in_flight" in payload:
        writer.gauge(
            "%s_jobs_in_flight" % _PREFIX,
            float(payload["jobs_in_flight"]),
            "accepted jobs not yet finished",
            labels,
        )
    for key in sorted(jobs):
        writer.counter(
            "%s_jobs_%s_total" % (_PREFIX, key),
            float(jobs[key]),
            "jobs %s since start" % key,
            labels,
        )
    writer.counter(
        "%s_solver_evaluations_total" % _PREFIX,
        float(solver.get("evaluations", 0)),
        "solver mapping evaluations",
        labels,
    )
    writer.counter(
        "%s_solver_solve_time_seconds_total" % _PREFIX,
        float(solver.get("solve_time_s", 0.0)),
        "cumulative cell solve wall-clock",
        labels,
    )
    if "entries" in cache:
        writer.gauge(
            "%s_cache_entries" % _PREFIX,
            float(cache["entries"]),
            "results-cache entries",
            labels,
        )
    _emit_histograms(writer, payload.get("histograms", {}), labels)


def _daemon_to_prometheus(payload: Mapping[str, Any]) -> str:
    writer = _Writer()
    info_labels = {"version": str(payload.get("version", ""))}
    if payload.get("shard"):
        info_labels["shard"] = str(payload["shard"])
    if payload.get("engine"):
        info_labels["engine"] = str(payload["engine"])
    writer.gauge(
        "%s_build_info" % _PREFIX, 1.0, "daemon build/identity info", info_labels
    )
    shard_labels = (
        {"shard": str(payload["shard"])} if payload.get("shard") else None
    )
    _emit_daemon(writer, payload, shard_labels)
    return writer.render()


def _router_to_prometheus(payload: Mapping[str, Any]) -> str:
    writer = _Writer()
    writer.gauge(
        "%s_build_info" % _PREFIX,
        1.0,
        "router build/identity info",
        {"version": str(payload.get("version", "")), "role": "router"},
    )
    writer.gauge(
        "%s_router_uptime_seconds" % _PREFIX,
        float(payload.get("uptime_s", 0.0)),
        "seconds since the router started",
    )
    router = payload.get("router", {})
    for key in sorted(router):
        value = router[key]
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            writer.counter(
                "%s_router_%s_total" % (_PREFIX, key),
                float(value),
                "router %s since start" % key,
            )
    ring = payload.get("ring", {})
    if "nodes" in ring:
        # HashRing.describe() reports the node *names*; older shapes a
        # bare count — accept both.
        nodes = ring["nodes"]
        count = len(nodes) if isinstance(nodes, (list, tuple)) else nodes
        writer.gauge(
            "%s_ring_nodes" % _PREFIX,
            float(count),
            "shards on the hash ring",
        )
    health_entries = payload.get("shard_health", [])
    if isinstance(health_entries, Mapping):  # tolerate dict-keyed shapes
        health_entries = [
            {"name": name, **entry}
            for name, entry in sorted(health_entries.items())
        ]
    for health in sorted(
        health_entries, key=lambda h: str(h.get("name", ""))
    ):
        labels = {"shard": str(health.get("name", ""))}
        writer.gauge(
            "%s_shard_up" % _PREFIX,
            1.0 if health.get("up") else 0.0,
            "shard health as seen by the router",
            labels,
        )
        if "consecutive_failures" in health:
            writer.gauge(
                "%s_shard_consecutive_failures" % _PREFIX,
                float(health["consecutive_failures"]),
                "consecutive probe/forward failures",
                labels,
            )
    fleet = payload.get("fleet", {})
    for key in sorted(fleet.get("jobs", {})):
        writer.counter(
            "%s_fleet_jobs_%s_total" % (_PREFIX, key),
            float(fleet["jobs"][key]),
            "fleet-wide jobs %s" % key,
        )
    solver = fleet.get("solver", {})
    if solver:
        writer.counter(
            "%s_fleet_solver_evaluations_total" % _PREFIX,
            float(solver.get("evaluations", 0)),
            "fleet-wide solver evaluations",
        )
        writer.counter(
            "%s_fleet_solver_solve_time_seconds_total" % _PREFIX,
            float(solver.get("solve_time_s", 0.0)),
            "fleet-wide solve wall-clock",
        )
    _emit_histograms(writer, payload.get("histograms", {}))
    # Per-shard daemon families, labelled by shard name.
    for shard, sub in sorted(payload.get("shards", {}).items()):
        if not isinstance(sub, Mapping) or "error" in sub:
            continue
        _emit_daemon(writer, sub, {"shard": str(shard)})
    return writer.render()


def to_prometheus(payload: Mapping[str, Any]) -> str:
    """Render a ``/v1/metrics`` JSON payload as Prometheus text."""
    if payload.get("role") == "router":
        return _router_to_prometheus(payload)
    return _daemon_to_prometheus(payload)


def parse_prometheus(
    text: str,
) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse exposition text back into ``{family: [(labels, value)]}``.

    A deliberately small parser used by tests and CI smoke checks to
    assert the text format is well-formed and consistent with the JSON
    payload; not a general-purpose Prometheus client.
    """
    out: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            metric_part, value_part = line.rsplit(None, 1)
        except ValueError:
            raise ValueError("malformed sample line: %r" % line)
        labels: Dict[str, str] = {}
        name = metric_part
        if "{" in metric_part:
            if not metric_part.endswith("}"):
                raise ValueError("malformed labels in line: %r" % line)
            name, _, label_blob = metric_part.partition("{")
            label_blob = label_blob[:-1]
            if label_blob:
                for chunk in _split_labels(label_blob):
                    key, _, raw = chunk.partition("=")
                    if not (raw.startswith('"') and raw.endswith('"')):
                        raise ValueError("malformed label value: %r" % chunk)
                    labels[key] = _unescape_label(raw[1:-1])
        if value_part == "+Inf":
            value = math.inf
        elif value_part == "-Inf":
            value = -math.inf
        else:
            value = float(value_part)
        out.setdefault(name, []).append((labels, value))
    return out


def _unescape_label(raw: str) -> str:
    # Sequential str.replace cannot undo the escaping: "\\n" (escaped
    # backslash, then "n") would wrongly turn into a newline.  Walk the
    # escapes left to right instead.
    out: List[str] = []
    escaped = False
    for char in raw:
        if escaped:
            out.append("\n" if char == "n" else char)
            escaped = False
        elif char == "\\":
            escaped = True
        else:
            out.append(char)
    return "".join(out)


def _split_labels(blob: str) -> List[str]:
    chunks: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in blob:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            chunks.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        chunks.append("".join(current))
    return chunks
