"""Operator-facing rendering: quantiles, the ``top`` table, span trees.

Everything here consumes the same JSON payloads the HTTP endpoints
serve (``/v1/metrics``, ``/v1/traces/{id}``), so the CLI ``top`` and
``trace`` verbs and the daemon's slow-solve log share one code path
with no extra wire format.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

__all__ = [
    "format_span_tree",
    "histogram_quantile",
    "render_top",
]


def histogram_quantile(snapshot: Mapping[str, Any], q: float) -> Optional[float]:
    """Estimate the ``q``-quantile from a cumulative histogram snapshot.

    Linear interpolation within the winning bucket (Prometheus
    ``histogram_quantile`` semantics, lower bound 0 for the first
    bucket).  Returns ``None`` for an empty histogram; observations
    above the last bound clamp to the last finite bound.
    """
    buckets = snapshot.get("buckets") or []
    total = snapshot.get("count", 0)
    if not total or not buckets:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1], got %r" % q)
    rank = q * total
    prev_bound = 0.0
    prev_cum = 0
    for bound, cumulative in buckets:
        if cumulative >= rank:
            in_bucket = cumulative - prev_cum
            if in_bucket <= 0:
                return float(bound)
            frac = (rank - prev_cum) / in_bucket
            return prev_bound + (float(bound) - prev_bound) * frac
        prev_bound = float(bound)
        prev_cum = cumulative
    return float(buckets[-1][0])


def _fmt_latency(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 0.001:
        return "%.0fus" % (seconds * 1e6)
    if seconds < 1.0:
        return "%.1fms" % (seconds * 1e3)
    return "%.2fs" % seconds


def _fmt_ratio(numerator: float, denominator: float) -> str:
    if denominator <= 0:
        return "-"
    return "%.0f%%" % (100.0 * numerator / denominator)


def _shard_row(name: str, payload: Mapping[str, Any], up: bool) -> List[str]:
    if not up or "error" in payload:
        return [name, "DOWN", "-", "-", "-", "-", "-", "-", "-", "-"]
    queue = payload.get("queue", {})
    jobs = payload.get("jobs", {})
    hist = (payload.get("histograms") or {}).get("solve_wall_seconds", {})
    submitted = jobs.get("submitted", 0)
    return [
        name,
        "up",
        str(payload.get("engine") or "default"),
        "%d/%s" % (
            queue.get("depth", 0),
            queue.get("max_depth") if queue.get("max_depth") is not None else "inf",
        ),
        str(queue.get("running", 0)),
        _fmt_ratio(queue.get("shed", 0), submitted + queue.get("shed", 0)),
        _fmt_ratio(jobs.get("cache_hits", 0), submitted),
        _fmt_latency(histogram_quantile(hist, 0.50)),
        _fmt_latency(histogram_quantile(hist, 0.95)),
        _fmt_latency(histogram_quantile(hist, 0.99)),
    ]


_TOP_HEADER = [
    "SHARD", "STATE", "ENGINE", "QUEUE", "RUN",
    "SHED", "HIT", "P50", "P95", "P99",
]


def _format_table(rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(row[i]) for row in rows) for i in range(len(rows[0]))
    ]
    lines = []
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_top(payload: Mapping[str, Any]) -> str:
    """Render a ``/v1/metrics`` payload as the ``top`` fleet table."""
    rows: List[List[str]] = [list(_TOP_HEADER)]
    if payload.get("role") == "router":
        raw_health = payload.get("shard_health") or {}
        if isinstance(raw_health, Mapping):
            health = {str(name): dict(entry) for name, entry in raw_health.items()}
        else:
            # The router serves health as a list of Shard.describe() dicts.
            health = {str(h.get("name")): h for h in raw_health}
        shards = payload.get("shards", {})
        for name in sorted(shards):
            sub = shards[name] if isinstance(shards[name], Mapping) else {}
            up = bool(health.get(name, {}).get("up", True))
            rows.append(_shard_row(name, sub, up))
        fleet_jobs = payload.get("fleet", {}).get("jobs", {})
        summary = (
            "router up %ds · %d shard(s) · fleet jobs: %d submitted, "
            "%d completed, %d shed"
            % (
                int(payload.get("uptime_s", 0)),
                len(shards),
                fleet_jobs.get("submitted", 0),
                fleet_jobs.get("completed", 0),
                fleet_jobs.get("shed", 0),
            )
        )
    else:
        name = payload.get("shard") or "local"
        rows.append(_shard_row(str(name), payload, up=True))
        jobs = payload.get("jobs", {})
        summary = "daemon up %ds · jobs: %d submitted, %d completed, %d shed" % (
            int(payload.get("uptime_s", 0)),
            jobs.get("submitted", 0),
            jobs.get("completed", 0),
            jobs.get("shed", 0),
        )
    return summary + "\n" + _format_table(rows)


def format_span_tree(spans: Sequence[Mapping[str, Any]]) -> str:
    """Render spans as an indented tree, children sorted by start time.

    Spans whose parent is absent from the set (e.g. the remote half of
    a cross-process trace) are treated as roots, so partial traces
    still render.
    """
    if not spans:
        return "(no spans)"
    by_id: Dict[str, Mapping[str, Any]] = {
        s["span_id"]: s for s in spans if s.get("span_id")
    }
    children: Dict[Optional[str], List[Mapping[str, Any]]] = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(s)
    for bucket in children.values():
        bucket.sort(key=lambda s: (s.get("start", 0.0), s.get("span_id", "")))

    lines: List[str] = []

    def _walk(span: Mapping[str, Any], depth: int) -> None:
        attrs = span.get("attrs") or {}
        extras = []
        if span.get("proc"):
            extras.append("proc=%s" % span["proc"])
        extras.extend("%s=%s" % (k, attrs[k]) for k in sorted(attrs))
        line = "%s%-28s %9s  %s" % (
            "  " * depth,
            span.get("name", "?"),
            _fmt_latency(span.get("duration")),
            " ".join(extras),
        )
        lines.append(line.rstrip())
        for child in children.get(span.get("span_id"), []):
            _walk(child, depth + 1)

    for root in children.get(None, []):
        _walk(root, 0)
    return "\n".join(lines)
