"""Job records of the solve-service daemon.

A *job* is one client submission: a problem instance plus a solver
configuration (the same :class:`~repro.experiments.SolverSpec` shape a
campaign uses), identified by the content-addressed cell key of
:func:`repro.experiments.cell_key`.  Jobs move through a small
lifecycle::

    QUEUED ──> RUNNING ──> DONE
       └────────────────> CANCELLED

Several jobs may share one *cell* (identical instance + solver): the
queue solves the cell once and resolves every attached job from that
single outcome (see :mod:`repro.server.service`).  A job served from
the results cache is born ``DONE``.
"""

from __future__ import annotations

import secrets
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional, Tuple

from ..core.problem import ProblemInstance, Solution
from ..experiments.spec import SolverSpec
from ..io import solution_from_dict
from ..strategies import SolveTelemetry

__all__ = ["JobOutcome", "JobRecord", "JobState", "new_job_id"]

#: Monotonic per-process sequence baked into job ids so they sort in
#: submission order even within one clock tick.
_JOB_SEQ = 0


def new_job_id() -> str:
    """A fresh job id: submission-ordered prefix + random suffix."""
    global _JOB_SEQ
    _JOB_SEQ += 1
    return f"j{_JOB_SEQ:06d}-{secrets.token_hex(4)}"


class JobState(str, Enum):
    """Lifecycle state of a job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        """True for the two terminal states."""
        return self in (JobState.DONE, JobState.CANCELLED)


@dataclass(frozen=True)
class JobOutcome:
    """Terminal result of one solved (or cache-served) cell.

    ``status`` mirrors :class:`repro.service.BatchItem`: ``"ok"``
    (``solution`` set), ``"infeasible"`` or ``"error"`` (``error``
    holds the message).
    """

    status: str
    wall_time: float = 0.0
    solution: Optional[Solution] = None
    telemetry: Optional[SolveTelemetry] = None
    error: Optional[str] = None
    #: Trace spans recorded in the worker process that solved the cell
    #: (plain dicts, see :mod:`repro.obs.spans`); empty when untraced.
    #: The service ingests them into its own span ring buffer so
    #: ``GET /v1/traces/{id}`` covers the solver phases too.
    spans: Tuple[Dict[str, Any], ...] = ()

    @property
    def ok(self) -> bool:
        """True when the solve produced a solution."""
        return self.status == "ok"

    @classmethod
    def from_batch_item(cls, item: Any) -> "JobOutcome":
        """Build from a :class:`repro.service.BatchItem` (or any
        duck-typed stand-in a test runner returns — ``spans`` is
        optional there)."""
        return cls(
            status=item.status,
            wall_time=item.wall_time,
            solution=item.solution,
            telemetry=item.telemetry,
            error=item.error,
            spans=tuple(getattr(item, "spans", ()) or ()),
        )

    @classmethod
    def from_cache_payload(cls, payload: Dict[str, Any]) -> "JobOutcome":
        """Rebuild from a results-cache record.

        Understands both record flavours sharing the cache:

        * daemon-written records embed the full solution payload under
          ``"solution"`` (:func:`repro.io.solution_to_dict`);
        * campaign-written records (:mod:`repro.experiments.runner`)
          carry the mapping plus the three global criteria — the
          per-application breakdown is not stored, so it reads back
          empty.
        """
        status = str(payload.get("status", "error"))
        solution: Optional[Solution] = None
        if status == "ok":
            if payload.get("solution") is not None:
                solution = solution_from_dict(payload["solution"])
            elif payload.get("mapping") is not None:
                from ..core.evaluation import CriteriaValues
                from ..io import mapping_from_dict

                values = payload.get("values") or {}
                solution = Solution(
                    mapping=mapping_from_dict(payload["mapping"]),
                    objective=float(payload.get("objective", 0.0)),
                    values=CriteriaValues(
                        periods={},
                        latencies={},
                        period=float(values.get("period", 0.0)),
                        latency=float(values.get("latency", 0.0)),
                        energy=float(values.get("energy", 0.0)),
                    ),
                    solver=str(payload.get("algorithm") or ""),
                    optimal=bool(payload.get("optimal", False)),
                )
            else:
                status = "error"
        telemetry_raw = payload.get("telemetry")
        return cls(
            status=status,
            wall_time=float(payload.get("wall_time", 0.0)),
            solution=solution,
            telemetry=(
                None
                if telemetry_raw is None
                else SolveTelemetry.from_dict(telemetry_raw)
            ),
            error=payload.get("error"),
        )


@dataclass
class JobRecord:
    """One client submission and its current state.

    Mutable by design — the service mutates it as the job advances; all
    mutation happens on the event-loop thread, so no locking is needed.
    ``source`` records how the outcome was produced: ``"solved"`` (this
    job's cell was executed), ``"cache"`` (served from the results cache
    without solving) or ``"coalesced"`` (rode along on another job's
    identical in-flight cell).

    The ``*_at`` timestamps are wall-clock (``time.time``) and exist
    for display and API payloads only.  Every *duration* (queue wait,
    time-to-finish) must come from the parallel ``*_mono`` fields,
    which are ``time.monotonic`` readings immune to wall-clock
    adjustment (NTP step, manual set).  ``trace_id`` correlates the job
    with its spans in ``GET /v1/traces/{trace_id}`` when the submission
    was traced.
    """

    id: str
    key: str
    priority: int
    problem: ProblemInstance
    solver: SolverSpec
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    source: Optional[str] = None
    outcome: Optional[JobOutcome] = None
    trace_id: Optional[str] = None
    submitted_mono: float = field(default_factory=time.monotonic)
    started_mono: Optional[float] = None
    finished_mono: Optional[float] = None

    def request_summary(self) -> Dict[str, Any]:
        """Compact description of what was submitted (for listings)."""
        spec: Dict[str, Any] = {"objective": self.solver.objective}
        if self.solver.strategy is not None:
            spec["strategy"] = self.solver.strategy
        else:
            spec["method"] = self.solver.method
        if self.solver.budget is not None:
            spec["budget"] = self.solver.budget.to_dict()
        return {
            "apps": self.problem.n_apps,
            "stages": self.problem.n_stages_total,
            "processors": self.problem.platform.n_processors,
            "platform": self.problem.platform_class.value,
            "rule": self.problem.rule.value,
            "model": self.problem.model.value,
            "solver": spec,
        }

    @property
    def queue_wait(self) -> Optional[float]:
        """Seconds spent queued before the solve started (monotonic
        delta; ``None`` while still queued)."""
        if self.started_mono is None:
            return None
        return self.started_mono - self.submitted_mono

    def mark_running(self, now: Optional[float] = None) -> None:
        """QUEUED → RUNNING.  ``now`` optionally pins the *display*
        wall-clock timestamp (coalesced jobs share the cell's); the
        monotonic reading is always taken fresh."""
        self.state = JobState.RUNNING
        self.started_at = time.time() if now is None else now
        self.started_mono = time.monotonic()

    def resolve(self, outcome: JobOutcome, source: str) -> None:
        """Terminal transition into DONE with the cell's outcome."""
        self.outcome = outcome
        self.source = source
        self.state = JobState.DONE
        self.finished_at = time.time()
        self.finished_mono = time.monotonic()

    def cancel(self) -> None:
        """Terminal transition into CANCELLED (queued jobs only)."""
        self.state = JobState.CANCELLED
        self.finished_at = time.time()
        self.finished_mono = time.monotonic()
