"""Anytime Pareto fronts served by the solve daemon.

A *front* is one ``POST /v1/fronts`` submission: a problem instance whose
period/energy trade-off curve the daemon computes as a fan-out of
epsilon-constraint *cells* — ordinary solve jobs submitted through
:class:`~repro.server.service.SolveService`, so every cell rides the
existing dedup/cache/priority machinery (two overlapping fronts, or a
front overlapping ad-hoc jobs, coalesce cell-by-cell for free).

The sweep plan comes from :func:`repro.analysis.front_engine.plan_front`:
the deduped threshold list shared with the offline exact sweep, submitted
in bisection order so the queue solves the coarse skeleton of the curve
first.  As cells finish, :meth:`FrontRecord.refresh` folds their achieved
``(period, energy)`` points — and the achieved points of every feasible
*member* of a composite strategy run (portfolio contributors, via
``SolveTelemetry.values``) — into an
:class:`~repro.analysis.front_engine.IncrementalFront`, so ``GET
/v1/fronts/{id}`` always returns the best front known so far plus
hypervolume and done/total telemetry.

With the default per-cell solvers (``"auto"`` on polynomial cells,
``"exact"`` elsewhere — :func:`repro.analysis.front_engine.cell_dispatch_method`)
the finished merge is byte-identical to
:func:`repro.analysis.pareto.period_energy_front_exact`.
"""

from __future__ import annotations

import secrets
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..analysis.front_engine import (
    IncrementalFront,
    cell_dispatch_method,
    plan_front,
)
from ..core.problem import ProblemInstance
from ..experiments.spec import SolverSpec
from ..strategies import SolveTelemetry
from .jobs import JobRecord
from .service import SolveService, UnknownJobError

__all__ = ["FrontRecord", "FrontStore", "new_front_id"]

#: Monotonic per-process sequence baked into front ids (same scheme as
#: :func:`repro.server.jobs.new_job_id`).
_FRONT_SEQ = 0


def new_front_id() -> str:
    """A fresh front id: submission-ordered prefix + random suffix."""
    global _FRONT_SEQ
    _FRONT_SEQ += 1
    return f"f{_FRONT_SEQ:06d}-{secrets.token_hex(4)}"


def _member_points(
    telemetry: Optional[SolveTelemetry],
) -> List[Tuple[float, float]]:
    """Achieved ``(period, energy)`` points of every successful run in a
    telemetry tree.  Every member of a portfolio evaluated a real mapping,
    so its achieved values are valid front contributions even when it lost
    the race."""
    if telemetry is None:
        return []
    out: List[Tuple[float, float]] = []
    stack = [telemetry]
    while stack:
        node = stack.pop()
        if node.ok and node.values is not None:
            out.append((node.values[0], node.values[2]))
        stack.extend(node.members)
    return out


@dataclass
class FrontRecord:
    """One front submission and its merge state.

    Mutable by design, like :class:`~repro.server.jobs.JobRecord`; all
    mutation happens on the daemon's event-loop thread.
    """

    id: str
    problem: ProblemInstance
    thresholds: List[float]
    jobs: List[JobRecord]
    priority: int = 0
    submitted_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)
    merged: IncrementalFront = field(default_factory=IncrementalFront)
    n_infeasible: int = 0
    n_failed: int = 0
    _folded: Set[str] = field(default_factory=set)

    @property
    def total(self) -> int:
        """Number of sweep cells."""
        return len(self.jobs)

    @property
    def done(self) -> int:
        """Number of cells in a terminal state."""
        return len(self._folded)

    @property
    def finished(self) -> bool:
        """True once every cell reached a terminal state."""
        return self.done == self.total

    def refresh(self) -> None:
        """Fold every newly finished cell into the merged front."""
        changed = False
        for job in self.jobs:
            if job.id in self._folded or not job.state.finished:
                continue
            self._folded.add(job.id)
            changed = True
            outcome = job.outcome
            if outcome is None:  # cancelled before running
                self.n_failed += 1
                continue
            if outcome.status == "infeasible":
                self.n_infeasible += 1
                continue
            if not outcome.ok or outcome.solution is None:
                self.n_failed += 1
                continue
            values = outcome.solution.values
            self.merged.add((values.period, values.energy))
            for point in _member_points(outcome.telemetry):
                self.merged.add(point)
        if changed:
            self.updated_at = time.time()

    def to_dict(self) -> Dict[str, Any]:
        """Status view for ``GET /v1/fronts/{id}`` (refresh first)."""
        front = self.merged.front()
        return {
            "id": self.id,
            "state": "done" if self.finished else "running",
            "total": self.total,
            "done": self.done,
            "infeasible": self.n_infeasible,
            "failed": self.n_failed,
            "priority": self.priority,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "points_merged": self.merged.n_added,
            "front": [list(p) for p in front],
            "hypervolume": self.merged.hypervolume(),
            "reference": (
                None
                if self.merged.reference() is None
                else list(self.merged.reference())
            ),
            "thresholds": {
                "count": len(self.thresholds),
                "min": self.thresholds[0] if self.thresholds else None,
                "max": self.thresholds[-1] if self.thresholds else None,
            },
            "jobs": [job.id for job in self.jobs],
        }


class FrontStore:
    """Front records of one daemon, keyed by front id.

    Lives next to the :class:`SolveService` inside
    :class:`~repro.server.http.SolveServer`; cells are plain service jobs,
    so the store adds no execution machinery of its own — it only plans,
    submits and merges.
    """

    def __init__(self, service: SolveService, *, max_fronts: int = 256) -> None:
        self.service = service
        self.max_fronts = max_fronts
        self._fronts: Dict[str, FrontRecord] = {}

    def submit(
        self,
        problem: ProblemInstance,
        *,
        template: Optional[Dict[str, Any]] = None,
        max_points: int = 200,
        priority: int = 0,
    ) -> FrontRecord:
        """Plan the sweep and submit every cell.

        ``template`` optionally overrides the per-cell solver
        (strategy/method/budget/engine, the
        :func:`~repro.server.protocol.parse_front_payload` shape); by
        default each cell uses the dispatch that keeps the finished front
        byte-identical to the offline exact sweep.  Cells are submitted in
        bisection order at equal priority — FIFO tie-breaking inside the
        queue preserves the coarse-to-fine schedule.

        Raises whatever :meth:`SolveService.submit` raises
        (``ServiceClosedError``, ``ServiceOverloadedError``).  On overload
        mid-fan-out no front is registered; already-submitted cells stay
        queued as ordinary jobs and warm the cache for a retry.
        """
        thresholds, order = plan_front(problem, max_points=max_points)
        base = dict(template or {})
        base.setdefault("name", "front-cell")
        if "strategy" not in base:
            base.setdefault("method", cell_dispatch_method(problem))
        jobs: List[JobRecord] = []
        for index in order:
            solver = SolverSpec.from_dict(
                {
                    **base,
                    "objective": "energy",
                    "max_period": thresholds[index],
                }
            )
            jobs.append(
                self.service.submit(problem, solver, priority=priority)
            )
        record = FrontRecord(
            id=new_front_id(),
            problem=problem,
            thresholds=thresholds,
            jobs=jobs,
            priority=priority,
        )
        record.refresh()  # cache-served cells are merged immediately
        self._fronts[record.id] = record
        self._evict()
        return record

    def front(self, front_id: str) -> FrontRecord:
        """Look up a front by id, refreshed to the latest merge state."""
        try:
            record = self._fronts[front_id]
        except KeyError:
            raise UnknownJobError(f"unknown front id {front_id!r}") from None
        record.refresh()
        return record

    def fronts(self) -> List[FrontRecord]:
        """All retained fronts, newest first, refreshed."""
        out = sorted(
            self._fronts.values(), key=lambda r: r.submitted_at, reverse=True
        )
        for record in out:
            record.refresh()
        return out

    def _evict(self) -> None:
        """Drop the oldest *finished* fronts beyond the retention cap."""
        if len(self._fronts) <= self.max_fronts:
            return
        for record in sorted(
            list(self._fronts.values()), key=lambda r: r.submitted_at
        ):
            if len(self._fronts) <= self.max_fronts:
                break
            record.refresh()
            if record.finished:
                del self._fronts[record.id]
