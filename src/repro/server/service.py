"""The asynchronous solve queue behind the daemon's HTTP API.

Design notes
------------
* **One cell, many jobs.**  Submissions are content-addressed with the
  campaign cache key (:func:`repro.experiments.cell_key`), so identical
  (instance, solver) submissions — whether queued, running or already
  solved — collapse onto one *cell*.  The solver runs once per cell;
  every attached job is resolved from that single outcome, and a
  submission whose key is already in the results cache completes
  immediately without touching the queue.
* **Priority queue, FIFO ties.**  Cells wait in a binary heap ordered
  by ``(-priority, submission sequence)``: larger ``priority`` runs
  first, equal priorities run in submission order.  A coalescing
  submission with a higher priority bumps its cell (lazy re-push; stale
  heap entries are skipped on pop).
* **Execution reuses the batch service.**  Each cell is handed to an
  executor (a process pool by default — solving is CPU-bound Python)
  that runs :func:`repro.service.solve_batch` on the single instance,
  so strategies, budgets and telemetry behave exactly as in batch and
  campaign runs.  The cache record written afterwards is
  campaign-compatible: a later ``repro-pipelines campaign run`` over
  the same cells reuses daemon-solved results and vice versa.
* **Bounded queue, explicit shedding.**  With ``max_queue_depth`` set,
  a submission that would *grow* the queue beyond the bound is rejected
  up front with :class:`ServiceOverloadedError` (HTTP 429 + a
  ``Retry-After`` hint derived from observed solve times) — before any
  job record exists, so an accepted job is never dropped.  Coalescing
  and cache-hit submissions are always admitted: they complete without
  adding queue work.
* **Graceful shutdown.**  :meth:`SolveService.shutdown` stops intake,
  cancels still-queued cells (unless asked to drain them) and waits for
  in-flight solves to finish and resolve their jobs.
"""

from __future__ import annotations

import asyncio
import functools
import heapq
import inspect
import sys
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .. import __version__
from ..core.exceptions import ReproError
from ..core.problem import ProblemInstance
from ..experiments.cache import ResultsCache, cell_key
from ..experiments.runner import RECORD_SCHEMA
from ..experiments.spec import SolverSpec
from ..io import solution_to_dict
from ..obs import metrics as obs_metrics
from ..obs import spans as obs_spans
from ..service import solve_batch
from .jobs import JobOutcome, JobRecord, JobState, new_job_id

__all__ = [
    "MemoryCache",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "SolveService",
    "UnknownJobError",
    "solve_cell",
]


class ServiceClosedError(ReproError):
    """Raised when submitting to a service that is shutting down."""


class UnknownJobError(ReproError):
    """Raised when a job id is not known to the service."""


class ServiceOverloadedError(ReproError):
    """Raised when a submission is shed by the bounded queue.

    ``retry_after`` is the service's own estimate (seconds) of when
    capacity frees up — surfaced as the HTTP ``Retry-After`` header.
    The submission was rejected *before* a job record was created;
    nothing about it is retained server-side.
    """

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def solve_cell(
    problem: ProblemInstance,
    solver: SolverSpec,
    transport: str = "auto",
    engine: Optional[str] = None,
    trace_id: Optional[str] = None,
    parent_id: Optional[str] = None,
):
    """Solve one cell through the batch service (executor-side).

    Module-level (hence picklable) so it crosses a
    ``ProcessPoolExecutor`` boundary; returns the single
    :class:`repro.service.BatchItem`, which carries status, solution,
    wall-clock and telemetry.  ``transport`` is threaded through to
    :func:`repro.service.solve_batch` (it only engages when a runner
    fans a cell out over workers; single-instance cells solve inline).
    ``engine`` is the daemon-level default neighborhood engine; a
    solver spec that pins its own ``engine`` wins.  ``trace_id`` /
    ``parent_id`` re-establish the submission's trace context in the
    executor process; the recorded solver-phase spans ride back to the
    daemon on the returned item (``BatchItem.spans``).
    """
    with obs_spans.trace_context(trace_id, parent_id):
        batch = solve_batch(
            [problem],
            objective=solver.objective,
            thresholds=solver.thresholds(),
            method=solver.method,
            strategy=solver.strategy,
            budget=solver.budget,
            workers=None,
            transport=transport,
            engine=solver.engine if solver.engine is not None else engine,
        )
    return batch.items[0]


class MemoryCache:
    """Dict-backed stand-in for :class:`~repro.experiments.ResultsCache`.

    Used when the daemon runs without a cache directory: dedup against
    previously solved cells still works for the lifetime of the
    process, it just is not persistent or shared.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[str, Any]] = {}

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._entries.get(key)

    def put(self, key: str, record: Dict[str, Any]) -> None:
        self._entries[key] = record

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class _Cell:
    """One unit of solving work, shared by all coalesced jobs."""

    key: str
    problem: ProblemInstance
    solver: SolverSpec
    priority: int
    seq: int
    state: JobState = JobState.QUEUED
    jobs: List[JobRecord] = field(default_factory=list)
    #: Bumped on every (re-)push; heap entries carrying an older id are
    #: stale and skipped on pop (lazy deletion).
    entry_id: int = 0
    #: Trace context of the submission that created the cell (queue-wait
    #: / dispatch / cache-write spans parent onto it); ``None`` untraced.
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None
    #: Monotonic enqueue instant — queue-wait is measured from this, so
    #: a wall-clock adjustment mid-wait cannot skew the histogram.
    submitted_mono: float = field(default_factory=time.monotonic)


def _make_executor(executor: Union[str, Executor], concurrency: int) -> Tuple[Executor, bool]:
    """Resolve the ``executor`` parameter to an instance + owned flag."""
    if isinstance(executor, str):
        if executor == "process":
            return ProcessPoolExecutor(max_workers=concurrency), True
        if executor == "thread":
            return ThreadPoolExecutor(max_workers=concurrency), True
        raise ValueError(
            f"unknown executor {executor!r}; expected 'process', 'thread' "
            "or an Executor instance"
        )
    return executor, False


class SolveService:
    """Priority job queue with cache-backed dedup and coalescing.

    Parameters
    ----------
    cache:
        A :class:`~repro.experiments.ResultsCache`, a directory path for
        one, or ``None`` for an in-process :class:`MemoryCache`.
        Submissions whose cell key is present complete instantly.
    concurrency:
        Number of cells solved at once (also the default executor
        size).
    executor:
        ``"process"`` (default; real parallelism for CPU-bound solves),
        ``"thread"`` (cheap, used in tests), or a ready-made
        ``concurrent.futures.Executor``.
    runner:
        The callable executed per cell, ``(problem, solver) ->
        BatchItem``-like.  Defaults to :func:`solve_cell`; tests inject
        counting or blocking stubs here.
    max_jobs_retained:
        Finished jobs kept for status/result queries; the oldest are
        evicted beyond this.
    max_queue_depth:
        Bound on *queued* (not running) cells.  ``None`` (default)
        queues unboundedly; with a bound, a submission that would grow
        the queue past it raises :class:`ServiceOverloadedError` (the
        HTTP layer maps this to ``429`` + ``Retry-After``).  Coalescing
        and cache-hit submissions are exempt — they add no queue work.
    transport:
        Instance transport handed to the default :func:`solve_cell`
        runner (``"auto"``/``"shm"``/``"pickle"``, see
        :func:`repro.service.solve_batch`); reported in
        :meth:`metrics`.  Ignored for custom runners.
    shard:
        Optional shard identity of this daemon in a routed fleet
        (``repro-pipelines serve --shard-name``).  Surfaced in
        :meth:`metrics` and ``/v1/healthz`` so the router and operators
        can attribute fleet-wide counters to the daemon that produced
        them; ``None`` for a standalone daemon.
    engine:
        Daemon-level default neighborhood engine for the local-search
        heuristics (``repro-pipelines serve --engine``), any name from
        :func:`repro.algorithms.heuristics.local_search.engine_names`;
        a solver spec that pins its own ``engine`` overrides it per
        job.  ``None`` keeps the library default.  Surfaced in
        :meth:`metrics` and ``/v1/healthz``.  Ignored for custom
        runners.
    slow_solve_threshold:
        Seconds; a solved cell whose wall time exceeds it gets its span
        tree dumped to stderr (``repro-pipelines serve
        --slow-solve-threshold``).  ``None`` (default) disables the
        slow-solve log.

    All public methods must be called from the event-loop thread (the
    HTTP handlers do); no internal locking is performed.
    """

    def __init__(
        self,
        *,
        cache: Union[ResultsCache, MemoryCache, str, Path, None] = None,
        concurrency: int = 2,
        executor: Union[str, Executor] = "process",
        runner: Optional[Callable[[ProblemInstance, SolverSpec], Any]] = None,
        max_jobs_retained: int = 4096,
        max_queue_depth: Optional[int] = None,
        transport: str = "auto",
        shard: Optional[str] = None,
        engine: Optional[str] = None,
        slow_solve_threshold: Optional[float] = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1 or None, got {max_queue_depth}"
            )
        if engine is not None:
            from ..algorithms.heuristics.local_search import _resolve_engine

            engine = _resolve_engine(engine)  # fail fast on unknown names
        if isinstance(cache, (str, Path)):
            cache = ResultsCache(cache)
        self.cache = cache if cache is not None else MemoryCache()
        self.concurrency = concurrency
        self.max_queue_depth = max_queue_depth
        self.transport = transport
        self.shard = shard
        self.engine = engine
        self._executor, self._owns_executor = _make_executor(
            executor, concurrency
        )
        self._runner = (
            runner
            if runner is not None
            else functools.partial(solve_cell, transport=transport, engine=engine)
        )
        # Custom runners (test stubs included) usually take a bare
        # ``(problem, solver)``; only pass the trace context through
        # when the runner's signature accepts it.
        try:
            params = inspect.signature(self._runner).parameters
            self._runner_takes_trace = "trace_id" in params
        except (TypeError, ValueError):  # pragma: no cover - builtins etc.
            self._runner_takes_trace = False
        self.slow_solve_threshold = slow_solve_threshold
        self._max_jobs_retained = max_jobs_retained

        self._jobs: Dict[str, JobRecord] = {}
        self._job_order: List[str] = []
        self._inflight: Dict[str, _Cell] = {}
        self._heap: List[Tuple[int, int, int, _Cell]] = []
        self._seq = 0
        self._cond: Optional[asyncio.Condition] = None
        self._workers: List[asyncio.Task] = []
        self._running_cells = 0
        self._closing = False
        self._started_at = time.time()
        self._started_mono = time.monotonic()
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "solved": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "cancelled": 0,
            "errors": 0,
            "infeasible": 0,
            "shed": 0,
        }
        self._evaluations_total = 0
        self._solve_time_total = 0.0
        #: EWMA of recent solve wall times (alpha=0.25), used by the
        #: ``Retry-After`` hint so it tracks the current workload mix
        #: instead of the lifetime mean; ``None`` before the first solve.
        self._solve_time_recent: Optional[float] = None
        self.metrics_registry = obs_metrics.MetricsRegistry()
        self._h_queue_wait = self.metrics_registry.histogram(
            "queue_wait_seconds",
            "Time cells spent queued before their solve started.",
            obs_metrics.LATENCY_BUCKETS,
        )
        self._h_solve_wall = self.metrics_registry.histogram(
            "solve_wall_seconds",
            "Wall-clock time of executed solves (cache hits excluded).",
            obs_metrics.LATENCY_BUCKETS,
        )
        self._h_cache_lookup = self.metrics_registry.histogram(
            "cache_lookup_seconds",
            "Duration of the dedup/cache lookup on the submit path.",
            obs_metrics.FAST_LATENCY_BUCKETS,
        )
        self._h_evaluations = self.metrics_registry.histogram(
            "evaluations_per_job",
            "Solver evaluations performed per executed cell.",
            obs_metrics.COUNT_BUCKETS,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        if self._workers:
            return
        self._cond = asyncio.Condition()
        self._closing = False
        self._started_at = time.time()
        self._started_mono = time.monotonic()
        self._workers = [
            asyncio.create_task(self._worker(), name=f"solve-worker-{i}")
            for i in range(self.concurrency)
        ]

    async def shutdown(self, *, drain_queue: bool = False) -> None:
        """Stop the service gracefully.

        In-flight cells always run to completion and resolve their jobs
        (*draining*).  Still-queued cells are cancelled unless
        ``drain_queue=True``, in which case the whole queue is worked
        off first.  New submissions are rejected from the first call on.
        """
        self._closing = True
        if self._cond is None:
            self._shutdown_executor()
            return
        async with self._cond:
            if not drain_queue:
                for cell in list(self._inflight.values()):
                    if cell.state is JobState.QUEUED:
                        self._cancel_cell(cell)
                self._heap.clear()
            self._cond.notify_all()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._shutdown_executor()

    def _shutdown_executor(self) -> None:
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    @property
    def uptime(self) -> float:
        """Seconds since :meth:`start` (or construction) — a monotonic
        delta, immune to wall-clock adjustment; ``_started_at`` remains
        the wall-clock display timestamp."""
        return time.monotonic() - self._started_mono

    # ------------------------------------------------------------------
    # submission / queries
    # ------------------------------------------------------------------
    def submit(
        self,
        problem: ProblemInstance,
        solver: SolverSpec,
        *,
        priority: int = 0,
        trace_id: Optional[str] = None,
    ) -> JobRecord:
        """Submit one (instance, solver) job.

        Returns the job record, which may already be ``DONE`` (cache
        hit).  Identical submissions of an in-flight cell coalesce onto
        it — the solver runs once for all of them.  ``trace_id``
        correlates the job with a distributed trace (defaults to the
        ambient trace context the HTTP layer establishes from the
        ``X-Repro-Trace-Id`` header).

        Raises
        ------
        ServiceClosedError
            When the service is shutting down.
        ServiceOverloadedError
            When ``max_queue_depth`` is set and the submission would
            grow the queue past it.  The check runs *before* the job
            record is created: once ``submit`` returns a record, that
            job is never dropped.  Coalescing and cache-hit submissions
            are admitted even at full depth (they add no queue work).
        """
        if self._closing:
            raise ServiceClosedError("service is shutting down")
        if trace_id is None:
            trace_id = obs_spans.current_trace_id()
        parent_id = obs_spans.current_parent_id()

        lookup_wall = time.time()
        lookup_t0 = time.perf_counter()
        key = cell_key(problem, solver.to_dict())
        cell = self._inflight.get(key)
        coalesce = cell is not None and not cell.state.finished
        payload = None
        if not coalesce:
            payload = self.cache.get(key)
        cache_hit = payload is not None and payload.get("status") in (
            "ok",
            "infeasible",
        )
        lookup_s = time.perf_counter() - lookup_t0
        self._h_cache_lookup.observe(lookup_s)
        if trace_id is not None:
            obs_spans.record_span(
                "daemon.dedup_lookup",
                start=lookup_wall,
                duration=lookup_s,
                trace_id=trace_id,
                parent_id=parent_id,
                coalesced=coalesce,
                cache_hit=cache_hit,
            )

        if coalesce:
            job = self._accept(key, problem, solver, priority, trace_id)
            cell.jobs.append(job)
            self._counters["coalesced"] += 1
            if priority > cell.priority and cell.state is JobState.QUEUED:
                cell.priority = priority
                self._push_cell(cell)
            if cell.state is JobState.RUNNING:
                job.mark_running(cell.jobs[0].started_at)
            return job

        if cache_hit:
            job = self._accept(key, problem, solver, priority, trace_id)
            outcome = JobOutcome.from_cache_payload(payload)
            job.resolve(outcome, source="cache")
            self._counters["cache_hits"] += 1
            self._count_completion(outcome)
            return job

        if (
            self.max_queue_depth is not None
            and self.queue_depth >= self.max_queue_depth
        ):
            self._counters["shed"] += 1
            raise ServiceOverloadedError(
                f"queue is full ({self.queue_depth}/{self.max_queue_depth} "
                "cells queued); retry later",
                retry_after=self._retry_after_hint(),
            )

        job = self._accept(key, problem, solver, priority, trace_id)
        cell = _Cell(
            key=key,
            problem=problem,
            solver=solver,
            priority=priority,
            seq=self._next_seq(),
            jobs=[job],
            trace_id=trace_id,
            parent_span_id=parent_id,
        )
        self._inflight[key] = cell
        self._push_cell(cell)
        return job

    def _accept(
        self,
        key: str,
        problem: ProblemInstance,
        solver: SolverSpec,
        priority: int,
        trace_id: Optional[str] = None,
    ) -> JobRecord:
        """Create and retain the job record for an *admitted* submission
        (everything after this point completes, one way or another)."""
        job = JobRecord(
            id=new_job_id(),
            key=key,
            priority=priority,
            problem=problem,
            solver=solver,
            trace_id=trace_id,
        )
        self._remember(job)
        self._counters["submitted"] += 1
        return job

    @property
    def queue_depth(self) -> int:
        """Number of cells waiting in the queue (excluding running)."""
        return sum(
            1
            for c in self._inflight.values()
            if c.state is JobState.QUEUED
        )

    def _retry_after_hint(self) -> float:
        """Estimate (seconds) until queue capacity frees up: *recent*
        solve time (EWMA, alpha=0.25) x queued cells / concurrency,
        floored at 0.1s (1.0s is assumed before any cell has been
        solved).  The sliding estimate tracks workload shifts — one
        early batch of hour-long solves no longer poisons the hint for
        the rest of the process lifetime the way a lifetime mean did."""
        mean = (
            self._solve_time_recent
            if self._solve_time_recent is not None
            else 1.0
        )
        depth = max(1, self.queue_depth)
        return max(0.1, round(mean * depth / self.concurrency, 2))

    def job(self, job_id: str) -> JobRecord:
        """Look up a job record by id."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(f"unknown job id {job_id!r}") from None

    def jobs(
        self, *, state: Optional[JobState] = None, limit: Optional[int] = None
    ) -> List[JobRecord]:
        """All retained jobs, newest first, optionally filtered."""
        out: List[JobRecord] = []
        for job_id in reversed(self._job_order):
            if limit is not None and len(out) >= limit:
                break
            job = self._jobs[job_id]
            if state is not None and job.state is not state:
                continue
            out.append(job)
        return out

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job.

        Returns ``True`` when the job was still queued and is now
        cancelled; ``False`` for running or finished jobs (in-flight
        work is never aborted mid-solve).  When the last job of a
        queued cell is cancelled the cell itself leaves the queue.
        """
        job = self.job(job_id)
        if job.state is not JobState.QUEUED:
            return False
        cell = self._inflight.get(job.key)
        job.cancel()
        self._counters["cancelled"] += 1
        if cell is not None and job in cell.jobs:
            cell.jobs.remove(job)
            if not cell.jobs and cell.state is JobState.QUEUED:
                cell.state = JobState.CANCELLED
                del self._inflight[cell.key]
        return True

    async def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> JobRecord:
        """Wait until a job reaches a terminal state (poll-free for the
        caller; the service itself polls its own loop cheaply)."""
        job = self.job(job_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        while not job.state.finished:
            if deadline is not None and time.monotonic() >= deadline:
                raise asyncio.TimeoutError(
                    f"job {job_id} not finished within {timeout}s"
                )
            await asyncio.sleep(0.005)
        return job

    @property
    def jobs_in_flight(self) -> int:
        """Retained jobs not yet in a terminal state (queued or
        running, coalesced riders included)."""
        return sum(
            1 for job in self._jobs.values() if not job.state.finished
        )

    def metrics(self) -> Dict[str, Any]:
        """Counters and gauges for ``GET /v1/metrics``.

        The shape is additive-only across releases: existing keys keep
        their meaning, new telemetry lands under new keys
        (``jobs_in_flight``, ``histograms``, ``solver.solve_time_recent_s``).
        The Prometheus text of ``GET /metrics`` is rendered from this
        very payload (:func:`repro.obs.export.to_prometheus`), so the
        two views cannot drift apart.
        """
        return {
            "version": __version__,
            "shard": self.shard,
            "uptime_s": self.uptime,
            "queue": {
                "depth": self.queue_depth,
                "running": self._running_cells,
                "concurrency": self.concurrency,
                "max_depth": self.max_queue_depth,
                "shed": self._counters["shed"],
            },
            "transport": self.transport,
            "engine": self.engine,
            "jobs": dict(self._counters),
            "jobs_in_flight": self.jobs_in_flight,
            "solver": {
                "evaluations": self._evaluations_total,
                "solve_time_s": self._solve_time_total,
                "solve_time_recent_s": self._solve_time_recent,
            },
            "cache": {"entries": len(self.cache)}
            if hasattr(self.cache, "__len__")
            else {},
            "histograms": self.metrics_registry.to_dict(
                kinds=("histogram",)
            ),
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _remember(self, job: JobRecord) -> None:
        self._jobs[job.id] = job
        self._job_order.append(job.id)
        while len(self._job_order) > self._max_jobs_retained:
            oldest = self._job_order[0]
            if not self._jobs[oldest].state.finished:
                break  # never evict live jobs
            self._job_order.pop(0)
            del self._jobs[oldest]

    def _push_cell(self, cell: _Cell) -> None:
        cell.entry_id += 1
        heapq.heappush(
            self._heap, (-cell.priority, cell.seq, cell.entry_id, cell)
        )
        if self._cond is not None:
            cond = self._cond

            async def _notify() -> None:
                async with cond:
                    cond.notify()

            try:
                asyncio.get_running_loop()
            except RuntimeError:
                return  # no loop yet; workers will see the heap on start
            asyncio.ensure_future(_notify())

    def _cancel_cell(self, cell: _Cell) -> None:
        cell.state = JobState.CANCELLED
        for job in cell.jobs:
            if not job.state.finished:
                job.cancel()
                self._counters["cancelled"] += 1
        self._inflight.pop(cell.key, None)

    async def _next_cell(self) -> Optional[_Cell]:
        assert self._cond is not None
        async with self._cond:
            while True:
                while self._heap:
                    _, _, entry_id, cell = heapq.heappop(self._heap)
                    if (
                        cell.state is JobState.QUEUED
                        and entry_id == cell.entry_id
                    ):
                        cell.state = JobState.RUNNING
                        self._running_cells += 1
                        return cell
                if self._closing:
                    return None
                await self._cond.wait()

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            cell = await self._next_cell()
            if cell is None:
                return
            now = time.time()
            queue_wait = time.monotonic() - cell.submitted_mono
            self._h_queue_wait.observe(queue_wait)
            if cell.trace_id is not None:
                obs_spans.record_span(
                    "daemon.queue_wait",
                    start=now - queue_wait,
                    duration=queue_wait,
                    trace_id=cell.trace_id,
                    parent_id=cell.parent_span_id,
                )
            for job in cell.jobs:
                job.mark_running(now)
            # Pre-allocate the dispatch span id so executor-side spans
            # can parent onto it before the span itself is recorded.
            dispatch_id = (
                obs_spans.new_span_id()
                if cell.trace_id is not None
                else None
            )
            t0 = time.perf_counter()
            try:
                if dispatch_id is not None and self._runner_takes_trace:
                    runner = functools.partial(
                        self._runner,
                        cell.problem,
                        cell.solver,
                        trace_id=cell.trace_id,
                        parent_id=dispatch_id,
                    )
                    item = await loop.run_in_executor(self._executor, runner)
                else:
                    item = await loop.run_in_executor(
                        self._executor,
                        self._runner,
                        cell.problem,
                        cell.solver,
                    )
                outcome = JobOutcome.from_batch_item(item)
            except Exception as exc:  # contained: one bad cell, one error
                outcome = JobOutcome(
                    status="error",
                    wall_time=time.perf_counter() - t0,
                    error=f"{type(exc).__name__}: {exc}",
                )
            if dispatch_id is not None:
                obs_spans.record_span(
                    "daemon.pool_dispatch",
                    start=now,
                    duration=time.perf_counter() - t0,
                    trace_id=cell.trace_id,
                    parent_id=cell.parent_span_id,
                    span_id=dispatch_id,
                    executor=type(self._executor).__name__,
                    status=outcome.status,
                )
            self._finish_cell(cell, outcome)

    def _finish_cell(self, cell: _Cell, outcome: JobOutcome) -> None:
        cell.state = JobState.DONE
        self._running_cells -= 1
        self._inflight.pop(cell.key, None)
        if outcome.spans:
            # Solver-phase spans recorded in the executor process ride
            # back on the outcome; fold them into this daemon's ring so
            # GET /v1/traces/{id} serves the whole tree.
            obs_spans.recorder().ingest(outcome.spans)
        if outcome.status in ("ok", "infeasible"):
            # Deterministic outcomes persist; transient errors do not,
            # so a resubmission after a crash re-solves the cell.
            write_wall = time.time()
            write_t0 = time.perf_counter()
            self.cache.put(cell.key, self._cache_record(cell, outcome))
            if cell.trace_id is not None:
                obs_spans.record_span(
                    "daemon.cache_write",
                    start=write_wall,
                    duration=time.perf_counter() - write_t0,
                    trace_id=cell.trace_id,
                    parent_id=cell.parent_span_id,
                )
        self._counters["solved"] += 1
        self._solve_time_total += outcome.wall_time
        self._h_solve_wall.observe(outcome.wall_time)
        alpha = 0.25
        self._solve_time_recent = (
            outcome.wall_time
            if self._solve_time_recent is None
            else alpha * outcome.wall_time
            + (1.0 - alpha) * self._solve_time_recent
        )
        if outcome.telemetry is not None:
            self._evaluations_total += outcome.telemetry.evaluations
            self._h_evaluations.observe(outcome.telemetry.evaluations)
        for i, job in enumerate(cell.jobs):
            if job.state.finished:
                continue
            job.resolve(outcome, source="solved" if i == 0 else "coalesced")
            self._count_completion(outcome)
        if (
            self.slow_solve_threshold is not None
            and outcome.wall_time > self.slow_solve_threshold
        ):
            self._log_slow_solve(cell, outcome)

    def _log_slow_solve(self, cell: _Cell, outcome: JobOutcome) -> None:
        """Dump a slow cell's span tree to stderr (operator surface)."""
        from ..obs.render import format_span_tree

        header = (
            f"[slow-solve] cell {cell.key[:12]} wall={outcome.wall_time:.3f}s"
            f" threshold={self.slow_solve_threshold:g}s"
            f" status={outcome.status} trace={cell.trace_id or '-'}"
        )
        lines = [header]
        if cell.trace_id is not None:
            spans = obs_spans.recorder().spans_for(cell.trace_id)
            if spans:
                lines.append(format_span_tree(spans))
        print("\n".join(lines), file=sys.stderr, flush=True)

    def _count_completion(self, outcome: JobOutcome) -> None:
        self._counters["completed"] += 1
        if outcome.status == "error":
            self._counters["errors"] += 1
        elif outcome.status == "infeasible":
            self._counters["infeasible"] += 1

    def _cache_record(
        self, cell: _Cell, outcome: JobOutcome
    ) -> Dict[str, Any]:
        """A campaign-compatible cache record, plus the full solution
        payload the daemon serves back (per-application criteria
        included)."""
        from ..io import mapping_to_dict

        record: Dict[str, Any] = {
            "schema": RECORD_SCHEMA,
            "status": outcome.status,
            "wall_time": outcome.wall_time,
            "objective": None,
            "values": None,
            "algorithm": None,
            "optimal": None,
            "error": outcome.error,
            "solver_spec": cell.solver.to_dict(),
            "telemetry": (
                None
                if outcome.telemetry is None
                else outcome.telemetry.to_dict()
            ),
        }
        if outcome.solution is not None:
            record.update(
                objective=outcome.solution.objective,
                values={
                    "period": outcome.solution.values.period,
                    "latency": outcome.solution.values.latency,
                    "energy": outcome.solution.values.energy,
                },
                algorithm=outcome.solution.solver,
                optimal=outcome.solution.optimal,
                mapping=mapping_to_dict(outcome.solution.mapping),
                solution=solution_to_dict(
                    outcome.solution, telemetry=outcome.telemetry
                ),
            )
        return record
