"""The asynchronous solve queue behind the daemon's HTTP API.

Design notes
------------
* **One cell, many jobs.**  Submissions are content-addressed with the
  campaign cache key (:func:`repro.experiments.cell_key`), so identical
  (instance, solver) submissions — whether queued, running or already
  solved — collapse onto one *cell*.  The solver runs once per cell;
  every attached job is resolved from that single outcome, and a
  submission whose key is already in the results cache completes
  immediately without touching the queue.
* **Priority queue, FIFO ties.**  Cells wait in a binary heap ordered
  by ``(-priority, submission sequence)``: larger ``priority`` runs
  first, equal priorities run in submission order.  A coalescing
  submission with a higher priority bumps its cell (lazy re-push; stale
  heap entries are skipped on pop).
* **Execution reuses the batch service.**  Each cell is handed to an
  executor (a process pool by default — solving is CPU-bound Python)
  that runs :func:`repro.service.solve_batch` on the single instance,
  so strategies, budgets and telemetry behave exactly as in batch and
  campaign runs.  The cache record written afterwards is
  campaign-compatible: a later ``repro-pipelines campaign run`` over
  the same cells reuses daemon-solved results and vice versa.
* **Bounded queue, explicit shedding.**  With ``max_queue_depth`` set,
  a submission that would *grow* the queue beyond the bound is rejected
  up front with :class:`ServiceOverloadedError` (HTTP 429 + a
  ``Retry-After`` hint derived from observed solve times) — before any
  job record exists, so an accepted job is never dropped.  Coalescing
  and cache-hit submissions are always admitted: they complete without
  adding queue work.
* **Graceful shutdown.**  :meth:`SolveService.shutdown` stops intake,
  cancels still-queued cells (unless asked to drain them) and waits for
  in-flight solves to finish and resolve their jobs.
"""

from __future__ import annotations

import asyncio
import functools
import heapq
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .. import __version__
from ..core.exceptions import ReproError
from ..core.problem import ProblemInstance
from ..experiments.cache import ResultsCache, cell_key
from ..experiments.runner import RECORD_SCHEMA
from ..experiments.spec import SolverSpec
from ..io import solution_to_dict
from ..service import solve_batch
from .jobs import JobOutcome, JobRecord, JobState, new_job_id

__all__ = [
    "MemoryCache",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "SolveService",
    "UnknownJobError",
    "solve_cell",
]


class ServiceClosedError(ReproError):
    """Raised when submitting to a service that is shutting down."""


class UnknownJobError(ReproError):
    """Raised when a job id is not known to the service."""


class ServiceOverloadedError(ReproError):
    """Raised when a submission is shed by the bounded queue.

    ``retry_after`` is the service's own estimate (seconds) of when
    capacity frees up — surfaced as the HTTP ``Retry-After`` header.
    The submission was rejected *before* a job record was created;
    nothing about it is retained server-side.
    """

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def solve_cell(
    problem: ProblemInstance,
    solver: SolverSpec,
    transport: str = "auto",
    engine: Optional[str] = None,
):
    """Solve one cell through the batch service (executor-side).

    Module-level (hence picklable) so it crosses a
    ``ProcessPoolExecutor`` boundary; returns the single
    :class:`repro.service.BatchItem`, which carries status, solution,
    wall-clock and telemetry.  ``transport`` is threaded through to
    :func:`repro.service.solve_batch` (it only engages when a runner
    fans a cell out over workers; single-instance cells solve inline).
    ``engine`` is the daemon-level default neighborhood engine; a
    solver spec that pins its own ``engine`` wins.
    """
    batch = solve_batch(
        [problem],
        objective=solver.objective,
        thresholds=solver.thresholds(),
        method=solver.method,
        strategy=solver.strategy,
        budget=solver.budget,
        workers=None,
        transport=transport,
        engine=solver.engine if solver.engine is not None else engine,
    )
    return batch.items[0]


class MemoryCache:
    """Dict-backed stand-in for :class:`~repro.experiments.ResultsCache`.

    Used when the daemon runs without a cache directory: dedup against
    previously solved cells still works for the lifetime of the
    process, it just is not persistent or shared.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[str, Any]] = {}

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._entries.get(key)

    def put(self, key: str, record: Dict[str, Any]) -> None:
        self._entries[key] = record

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class _Cell:
    """One unit of solving work, shared by all coalesced jobs."""

    key: str
    problem: ProblemInstance
    solver: SolverSpec
    priority: int
    seq: int
    state: JobState = JobState.QUEUED
    jobs: List[JobRecord] = field(default_factory=list)
    #: Bumped on every (re-)push; heap entries carrying an older id are
    #: stale and skipped on pop (lazy deletion).
    entry_id: int = 0


def _make_executor(executor: Union[str, Executor], concurrency: int) -> Tuple[Executor, bool]:
    """Resolve the ``executor`` parameter to an instance + owned flag."""
    if isinstance(executor, str):
        if executor == "process":
            return ProcessPoolExecutor(max_workers=concurrency), True
        if executor == "thread":
            return ThreadPoolExecutor(max_workers=concurrency), True
        raise ValueError(
            f"unknown executor {executor!r}; expected 'process', 'thread' "
            "or an Executor instance"
        )
    return executor, False


class SolveService:
    """Priority job queue with cache-backed dedup and coalescing.

    Parameters
    ----------
    cache:
        A :class:`~repro.experiments.ResultsCache`, a directory path for
        one, or ``None`` for an in-process :class:`MemoryCache`.
        Submissions whose cell key is present complete instantly.
    concurrency:
        Number of cells solved at once (also the default executor
        size).
    executor:
        ``"process"`` (default; real parallelism for CPU-bound solves),
        ``"thread"`` (cheap, used in tests), or a ready-made
        ``concurrent.futures.Executor``.
    runner:
        The callable executed per cell, ``(problem, solver) ->
        BatchItem``-like.  Defaults to :func:`solve_cell`; tests inject
        counting or blocking stubs here.
    max_jobs_retained:
        Finished jobs kept for status/result queries; the oldest are
        evicted beyond this.
    max_queue_depth:
        Bound on *queued* (not running) cells.  ``None`` (default)
        queues unboundedly; with a bound, a submission that would grow
        the queue past it raises :class:`ServiceOverloadedError` (the
        HTTP layer maps this to ``429`` + ``Retry-After``).  Coalescing
        and cache-hit submissions are exempt — they add no queue work.
    transport:
        Instance transport handed to the default :func:`solve_cell`
        runner (``"auto"``/``"shm"``/``"pickle"``, see
        :func:`repro.service.solve_batch`); reported in
        :meth:`metrics`.  Ignored for custom runners.
    shard:
        Optional shard identity of this daemon in a routed fleet
        (``repro-pipelines serve --shard-name``).  Surfaced in
        :meth:`metrics` and ``/v1/healthz`` so the router and operators
        can attribute fleet-wide counters to the daemon that produced
        them; ``None`` for a standalone daemon.
    engine:
        Daemon-level default neighborhood engine for the local-search
        heuristics (``repro-pipelines serve --engine``), any name from
        :func:`repro.algorithms.heuristics.local_search.engine_names`;
        a solver spec that pins its own ``engine`` overrides it per
        job.  ``None`` keeps the library default.  Surfaced in
        :meth:`metrics` and ``/v1/healthz``.  Ignored for custom
        runners.

    All public methods must be called from the event-loop thread (the
    HTTP handlers do); no internal locking is performed.
    """

    def __init__(
        self,
        *,
        cache: Union[ResultsCache, MemoryCache, str, Path, None] = None,
        concurrency: int = 2,
        executor: Union[str, Executor] = "process",
        runner: Optional[Callable[[ProblemInstance, SolverSpec], Any]] = None,
        max_jobs_retained: int = 4096,
        max_queue_depth: Optional[int] = None,
        transport: str = "auto",
        shard: Optional[str] = None,
        engine: Optional[str] = None,
    ) -> None:
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1 or None, got {max_queue_depth}"
            )
        if engine is not None:
            from ..algorithms.heuristics.local_search import _resolve_engine

            engine = _resolve_engine(engine)  # fail fast on unknown names
        if isinstance(cache, (str, Path)):
            cache = ResultsCache(cache)
        self.cache = cache if cache is not None else MemoryCache()
        self.concurrency = concurrency
        self.max_queue_depth = max_queue_depth
        self.transport = transport
        self.shard = shard
        self.engine = engine
        self._executor, self._owns_executor = _make_executor(
            executor, concurrency
        )
        self._runner = (
            runner
            if runner is not None
            else functools.partial(solve_cell, transport=transport, engine=engine)
        )
        self._max_jobs_retained = max_jobs_retained

        self._jobs: Dict[str, JobRecord] = {}
        self._job_order: List[str] = []
        self._inflight: Dict[str, _Cell] = {}
        self._heap: List[Tuple[int, int, int, _Cell]] = []
        self._seq = 0
        self._cond: Optional[asyncio.Condition] = None
        self._workers: List[asyncio.Task] = []
        self._running_cells = 0
        self._closing = False
        self._started_at = time.time()
        self._counters = {
            "submitted": 0,
            "completed": 0,
            "solved": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "cancelled": 0,
            "errors": 0,
            "infeasible": 0,
            "shed": 0,
        }
        self._evaluations_total = 0
        self._solve_time_total = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        if self._workers:
            return
        self._cond = asyncio.Condition()
        self._closing = False
        self._started_at = time.time()
        self._workers = [
            asyncio.create_task(self._worker(), name=f"solve-worker-{i}")
            for i in range(self.concurrency)
        ]

    async def shutdown(self, *, drain_queue: bool = False) -> None:
        """Stop the service gracefully.

        In-flight cells always run to completion and resolve their jobs
        (*draining*).  Still-queued cells are cancelled unless
        ``drain_queue=True``, in which case the whole queue is worked
        off first.  New submissions are rejected from the first call on.
        """
        self._closing = True
        if self._cond is None:
            self._shutdown_executor()
            return
        async with self._cond:
            if not drain_queue:
                for cell in list(self._inflight.values()):
                    if cell.state is JobState.QUEUED:
                        self._cancel_cell(cell)
                self._heap.clear()
            self._cond.notify_all()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._shutdown_executor()

    def _shutdown_executor(self) -> None:
        if self._owns_executor:
            self._executor.shutdown(wait=True)

    @property
    def uptime(self) -> float:
        """Seconds since :meth:`start` (or construction)."""
        return time.time() - self._started_at

    # ------------------------------------------------------------------
    # submission / queries
    # ------------------------------------------------------------------
    def submit(
        self,
        problem: ProblemInstance,
        solver: SolverSpec,
        *,
        priority: int = 0,
    ) -> JobRecord:
        """Submit one (instance, solver) job.

        Returns the job record, which may already be ``DONE`` (cache
        hit).  Identical submissions of an in-flight cell coalesce onto
        it — the solver runs once for all of them.

        Raises
        ------
        ServiceClosedError
            When the service is shutting down.
        ServiceOverloadedError
            When ``max_queue_depth`` is set and the submission would
            grow the queue past it.  The check runs *before* the job
            record is created: once ``submit`` returns a record, that
            job is never dropped.  Coalescing and cache-hit submissions
            are admitted even at full depth (they add no queue work).
        """
        if self._closing:
            raise ServiceClosedError("service is shutting down")
        key = cell_key(problem, solver.to_dict())

        cell = self._inflight.get(key)
        if cell is not None and not cell.state.finished:
            job = self._accept(key, problem, solver, priority)
            cell.jobs.append(job)
            self._counters["coalesced"] += 1
            if priority > cell.priority and cell.state is JobState.QUEUED:
                cell.priority = priority
                self._push_cell(cell)
            if cell.state is JobState.RUNNING:
                job.mark_running(cell.jobs[0].started_at)
            return job

        payload = self.cache.get(key)
        if payload is not None and payload.get("status") in ("ok", "infeasible"):
            job = self._accept(key, problem, solver, priority)
            outcome = JobOutcome.from_cache_payload(payload)
            job.resolve(outcome, source="cache")
            self._counters["cache_hits"] += 1
            self._count_completion(outcome)
            return job

        if (
            self.max_queue_depth is not None
            and self.queue_depth >= self.max_queue_depth
        ):
            self._counters["shed"] += 1
            raise ServiceOverloadedError(
                f"queue is full ({self.queue_depth}/{self.max_queue_depth} "
                "cells queued); retry later",
                retry_after=self._retry_after_hint(),
            )

        job = self._accept(key, problem, solver, priority)
        cell = _Cell(
            key=key,
            problem=problem,
            solver=solver,
            priority=priority,
            seq=self._next_seq(),
            jobs=[job],
        )
        self._inflight[key] = cell
        self._push_cell(cell)
        return job

    def _accept(
        self,
        key: str,
        problem: ProblemInstance,
        solver: SolverSpec,
        priority: int,
    ) -> JobRecord:
        """Create and retain the job record for an *admitted* submission
        (everything after this point completes, one way or another)."""
        job = JobRecord(
            id=new_job_id(),
            key=key,
            priority=priority,
            problem=problem,
            solver=solver,
        )
        self._remember(job)
        self._counters["submitted"] += 1
        return job

    @property
    def queue_depth(self) -> int:
        """Number of cells waiting in the queue (excluding running)."""
        return sum(
            1
            for c in self._inflight.values()
            if c.state is JobState.QUEUED
        )

    def _retry_after_hint(self) -> float:
        """Estimate (seconds) until queue capacity frees up: observed
        mean solve time x queued cells / concurrency, floored at 0.1s
        (1.0s mean is assumed before any cell has been solved)."""
        solved = self._counters["solved"]
        mean = (self._solve_time_total / solved) if solved else 1.0
        depth = max(1, self.queue_depth)
        return max(0.1, round(mean * depth / self.concurrency, 2))

    def job(self, job_id: str) -> JobRecord:
        """Look up a job record by id."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(f"unknown job id {job_id!r}") from None

    def jobs(
        self, *, state: Optional[JobState] = None, limit: Optional[int] = None
    ) -> List[JobRecord]:
        """All retained jobs, newest first, optionally filtered."""
        out: List[JobRecord] = []
        for job_id in reversed(self._job_order):
            if limit is not None and len(out) >= limit:
                break
            job = self._jobs[job_id]
            if state is not None and job.state is not state:
                continue
            out.append(job)
        return out

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job.

        Returns ``True`` when the job was still queued and is now
        cancelled; ``False`` for running or finished jobs (in-flight
        work is never aborted mid-solve).  When the last job of a
        queued cell is cancelled the cell itself leaves the queue.
        """
        job = self.job(job_id)
        if job.state is not JobState.QUEUED:
            return False
        cell = self._inflight.get(job.key)
        job.cancel()
        self._counters["cancelled"] += 1
        if cell is not None and job in cell.jobs:
            cell.jobs.remove(job)
            if not cell.jobs and cell.state is JobState.QUEUED:
                cell.state = JobState.CANCELLED
                del self._inflight[cell.key]
        return True

    async def wait(
        self, job_id: str, timeout: Optional[float] = None
    ) -> JobRecord:
        """Wait until a job reaches a terminal state (poll-free for the
        caller; the service itself polls its own loop cheaply)."""
        job = self.job(job_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        while not job.state.finished:
            if deadline is not None and time.monotonic() >= deadline:
                raise asyncio.TimeoutError(
                    f"job {job_id} not finished within {timeout}s"
                )
            await asyncio.sleep(0.005)
        return job

    def metrics(self) -> Dict[str, Any]:
        """Counters and gauges for ``GET /v1/metrics``."""
        return {
            "version": __version__,
            "shard": self.shard,
            "uptime_s": self.uptime,
            "queue": {
                "depth": self.queue_depth,
                "running": self._running_cells,
                "concurrency": self.concurrency,
                "max_depth": self.max_queue_depth,
                "shed": self._counters["shed"],
            },
            "transport": self.transport,
            "engine": self.engine,
            "jobs": dict(self._counters),
            "solver": {
                "evaluations": self._evaluations_total,
                "solve_time_s": self._solve_time_total,
            },
            "cache": {"entries": len(self.cache)}
            if hasattr(self.cache, "__len__")
            else {},
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _remember(self, job: JobRecord) -> None:
        self._jobs[job.id] = job
        self._job_order.append(job.id)
        while len(self._job_order) > self._max_jobs_retained:
            oldest = self._job_order[0]
            if not self._jobs[oldest].state.finished:
                break  # never evict live jobs
            self._job_order.pop(0)
            del self._jobs[oldest]

    def _push_cell(self, cell: _Cell) -> None:
        cell.entry_id += 1
        heapq.heappush(
            self._heap, (-cell.priority, cell.seq, cell.entry_id, cell)
        )
        if self._cond is not None:
            cond = self._cond

            async def _notify() -> None:
                async with cond:
                    cond.notify()

            try:
                asyncio.get_running_loop()
            except RuntimeError:
                return  # no loop yet; workers will see the heap on start
            asyncio.ensure_future(_notify())

    def _cancel_cell(self, cell: _Cell) -> None:
        cell.state = JobState.CANCELLED
        for job in cell.jobs:
            if not job.state.finished:
                job.cancel()
                self._counters["cancelled"] += 1
        self._inflight.pop(cell.key, None)

    async def _next_cell(self) -> Optional[_Cell]:
        assert self._cond is not None
        async with self._cond:
            while True:
                while self._heap:
                    _, _, entry_id, cell = heapq.heappop(self._heap)
                    if (
                        cell.state is JobState.QUEUED
                        and entry_id == cell.entry_id
                    ):
                        cell.state = JobState.RUNNING
                        self._running_cells += 1
                        return cell
                if self._closing:
                    return None
                await self._cond.wait()

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            cell = await self._next_cell()
            if cell is None:
                return
            now = time.time()
            for job in cell.jobs:
                job.mark_running(now)
            t0 = time.perf_counter()
            try:
                item = await loop.run_in_executor(
                    self._executor, self._runner, cell.problem, cell.solver
                )
                outcome = JobOutcome.from_batch_item(item)
            except Exception as exc:  # contained: one bad cell, one error
                outcome = JobOutcome(
                    status="error",
                    wall_time=time.perf_counter() - t0,
                    error=f"{type(exc).__name__}: {exc}",
                )
            self._finish_cell(cell, outcome)

    def _finish_cell(self, cell: _Cell, outcome: JobOutcome) -> None:
        cell.state = JobState.DONE
        self._running_cells -= 1
        self._inflight.pop(cell.key, None)
        if outcome.status in ("ok", "infeasible"):
            # Deterministic outcomes persist; transient errors do not,
            # so a resubmission after a crash re-solves the cell.
            self.cache.put(cell.key, self._cache_record(cell, outcome))
        self._counters["solved"] += 1
        self._solve_time_total += outcome.wall_time
        if outcome.telemetry is not None:
            self._evaluations_total += outcome.telemetry.evaluations
        for i, job in enumerate(cell.jobs):
            if job.state.finished:
                continue
            job.resolve(outcome, source="solved" if i == 0 else "coalesced")
            self._count_completion(outcome)

    def _count_completion(self, outcome: JobOutcome) -> None:
        self._counters["completed"] += 1
        if outcome.status == "error":
            self._counters["errors"] += 1
        elif outcome.status == "infeasible":
            self._counters["infeasible"] += 1

    def _cache_record(
        self, cell: _Cell, outcome: JobOutcome
    ) -> Dict[str, Any]:
        """A campaign-compatible cache record, plus the full solution
        payload the daemon serves back (per-application criteria
        included)."""
        from ..io import mapping_to_dict

        record: Dict[str, Any] = {
            "schema": RECORD_SCHEMA,
            "status": outcome.status,
            "wall_time": outcome.wall_time,
            "objective": None,
            "values": None,
            "algorithm": None,
            "optimal": None,
            "error": outcome.error,
            "solver_spec": cell.solver.to_dict(),
            "telemetry": (
                None
                if outcome.telemetry is None
                else outcome.telemetry.to_dict()
            ),
        }
        if outcome.solution is not None:
            record.update(
                objective=outcome.solution.objective,
                values={
                    "period": outcome.solution.values.period,
                    "latency": outcome.solution.values.latency,
                    "energy": outcome.solution.values.energy,
                },
                algorithm=outcome.solution.solver,
                optimal=outcome.solution.optimal,
                mapping=mapping_to_dict(outcome.solution.mapping),
                solution=solution_to_dict(
                    outcome.solution, telemetry=outcome.telemetry
                ),
            )
        return record
