"""Consistent-hash ring: the pure data structure behind the shard router.

A :class:`HashRing` places every shard at :attr:`~HashRing.vnodes`
pseudo-random points on a 64-bit circle (SHA-256 of ``"{node}#{i}"``)
and owns each key to the first shard point at or after the key's own
hash point, wrapping around.  The classic consequences, both asserted by
``tests/server/test_ring_property.py``:

* **stability** — the mapping is a pure function of (node names,
  ``vnodes``): two processes, two machines or two router restarts with
  the same membership agree on every key's owner, with no coordination;
* **minimal disruption** — removing one of ``N`` shards remaps only the
  keys that shard owned (~``1/N`` of them); every other key keeps its
  owner, so a dead shard invalidates only its own share of the
  fleet-wide cache;
* **balance** — at the default ``vnodes=192`` the heaviest shard owns
  at most ~1.5x the lightest shard's key share.

Keys are expected to be :func:`repro.experiments.cell_key` digests but
any string works.  The structure is plain and synchronous; the router
guards membership changes with its own event-loop discipline.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["DEFAULT_VNODES", "HashRing"]

#: Default virtual nodes per shard.  Empirically (20k sampled keys,
#: 2-12 shards), 192 points keep the max/min key-share ratio under
#: ~1.35; 64 points can exceed 1.6.
DEFAULT_VNODES = 192


def _point(label: str) -> int:
    """64-bit ring position of a label (first 8 bytes of SHA-256)."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Consistent-hash ring over named shards.

    Parameters
    ----------
    nodes:
        Initial shard names (order-independent: membership is a set).
    vnodes:
        Virtual nodes per shard; more points = better balance, larger
        ring.  Must be >= 1.
    """

    def __init__(
        self, nodes: Iterable[str] = (), *, vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._nodes: Dict[str, Tuple[int, ...]] = {}
        self._points: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        """Add a shard (idempotent)."""
        if not node:
            raise ValueError("node name must be a non-empty string")
        if node in self._nodes:
            return
        points = tuple(
            _point(f"{node}#{i}") for i in range(self.vnodes)
        )
        self._nodes[node] = points
        for p in points:
            index = bisect.bisect_left(self._points, p)
            self._points.insert(index, p)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Remove a shard (idempotent); its keys fall to ring neighbors."""
        if node not in self._nodes:
            return
        del self._nodes[node]
        keep = [
            (p, owner)
            for p, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [p for p, _ in keep]
        self._owners = [owner for _, owner in keep]

    @property
    def nodes(self) -> List[str]:
        """Current shard names, sorted."""
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def node_for(self, key: str) -> str:
        """The shard owning ``key``.

        Raises
        ------
        LookupError
            When the ring is empty.
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        index = bisect.bisect_right(self._points, _point(key))
        return self._owners[index % len(self._owners)]

    def nodes_for(self, key: str, count: int) -> List[str]:
        """Up to ``count`` *distinct* shards in ring order from ``key``.

        The first entry is the owner (:meth:`node_for`); the rest are
        the fallback replicas the router walks on connect failure or
        load shedding — a deterministic preference order shared by every
        router instance.
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        count = min(count, len(self._nodes))
        start = bisect.bisect_right(self._points, _point(key))
        out: List[str] = []
        n = len(self._owners)
        for offset in range(n):
            owner = self._owners[(start + offset) % n]
            if owner not in out:
                out.append(owner)
                if len(out) >= count:
                    break
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def shares(self, keys: Sequence[str]) -> Dict[str, int]:
        """Owned-key counts over a sample of ``keys`` (balance probes)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts

    def describe(self) -> Dict[str, object]:
        """Ring summary for metrics payloads."""
        return {
            "nodes": self.nodes,
            "vnodes": self.vnodes,
            "points": len(self._points),
        }
