"""Shard router: one HTTP front door over a fleet of solve daemons.

The router re-exports the daemon's ``/v1/*`` API unchanged and spreads
work over ``N`` :mod:`repro.server` daemons by **cell key**: every
submission is parsed with the daemon's own validation, its
content-addressed :func:`repro.experiments.cell_key` is computed, and a
consistent-hash ring (:class:`~repro.server.ring.HashRing`) picks the
*owning* shard.  Identical submissions — from any client, through any
router — land on the same shard, so the daemon's in-flight coalescing
and content-addressed cache keep deduplicating fleet-wide exactly as
they do on a single daemon.

Failure semantics
-----------------
* **Health checks.**  A background loop probes every shard's
  ``/v1/healthz``; ``fail_threshold`` consecutive failures mark a shard
  *down* (its keys fall to ring neighbors), the first success marks it
  back *up* (its keys return — consistent hashing remaps only that
  shard's share either way).
* **Bounded retry-to-next-replica.**  A submission that cannot reach
  its owner (connect failure/timeout — the shard is marked down on the
  spot) or is shed by it (HTTP 429) is retried against the next
  distinct shards in ring order, up to ``max_hops`` attempts total.
  Retrying a submit is safe: dedup makes it idempotent.  When every
  candidate sheds, the last ``429`` (``Retry-After`` included) is
  relayed to the client; when none is reachable, the client gets
  ``503``.
* **Job affinity.**  Responses rewrite job ids to ``<id>@<shard>``;
  status/result/cancel requests are routed straight back to the shard
  that owns the job record — statelessly, so a router restart loses
  nothing.
* **Front affinity.**  ``POST /v1/fronts`` routes by a front-level key
  derived from the *instance alone*, so every front (and re-front) of
  the same problem lands on one shard and its sweep cells coalesce with
  each other and with ad-hoc jobs there.  Front ids are rewritten like
  job ids (``<id>@<shard>``, including the embedded cell-job ids), and
  ``GET /v1/fronts/{id}`` routes back by suffix.

``GET /v1/metrics`` aggregates the fleet (per-shard metrics plus summed
job counters); ``GET /v1/jobs`` merges the shards' listings.  With
``redirect_results=True`` the router answers result fetches with a
``307`` redirect to the owning shard instead of proxying the payload
bytes through itself.
"""

from __future__ import annotations

import asyncio
import functools
import json
import re
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import urlsplit

from .. import __version__
from ..experiments.cache import cell_key
from ..obs import metrics as obs_metrics
from ..obs import spans as obs_spans
from ..obs.export import to_prometheus
from .http import (
    SolveServer,
    _HttpError,
    _PlainText,
    _read_request,
    _response,
)
from .protocol import ProtocolError, parse_front_payload, parse_job_payload
from .ring import DEFAULT_VNODES, HashRing

__all__ = [
    "RouterThread",
    "Shard",
    "ShardRouter",
    "parse_shard_spec",
    "routed_job_id",
    "run_router",
    "serve_router",
    "spawn_local_fleet",
    "split_job_id",
]

#: Separator between a shard-local job id and the shard name in the ids
#: the router hands out.  ``@`` cannot appear in daemon job ids
#: (``j000001-ab12cd34``) and is legal in a URL path segment.
_ID_SEP = "@"


def routed_job_id(raw_id: str, shard: str) -> str:
    """The fleet-wide job id for a shard-local one."""
    return f"{raw_id}{_ID_SEP}{shard}"


def split_job_id(job_id: str) -> Tuple[str, Optional[str]]:
    """Split a routed job id into ``(shard_local_id, shard_name)``.

    Ids without a shard suffix return ``(id, None)`` — the router
    cannot locate those (it keeps no job table by design).
    """
    raw, sep, shard = job_id.rpartition(_ID_SEP)
    if not sep:
        return job_id, None
    return raw, shard


def parse_shard_spec(spec: str) -> Tuple[str, str]:
    """Parse one ``--shard`` value into ``(name, base_url)``.

    Accepts ``http://host:port`` (named ``host:port``) or an explicit
    ``name=http://host:port``.
    """
    name, sep, url = spec.partition("=")
    if not sep:
        name, url = "", spec
    url = url.rstrip("/")
    parsed = urlsplit(url)
    if parsed.scheme not in ("http", "https") or not parsed.netloc:
        raise ValueError(
            f"shard spec {spec!r}: expected [name=]http://host:port"
        )
    return (name or parsed.netloc), url


@dataclass
class Shard:
    """One routed daemon and its health bookkeeping."""

    name: str
    url: str
    up: bool = True
    consecutive_failures: int = 0
    last_error: Optional[str] = None
    marked_down_at: Optional[float] = None
    forwarded: int = 0
    #: Local child process when the router spawned this shard itself.
    process: Optional[subprocess.Popen] = field(
        default=None, repr=False, compare=False
    )

    def describe(self) -> Dict[str, Any]:
        """Health view for ``/v1/healthz`` and ``/v1/metrics``."""
        return {
            "name": self.name,
            "url": self.url,
            "up": self.up,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
            "forwarded": self.forwarded,
        }


class _UpstreamError(Exception):
    """A shard could not be reached (connect failure or timeout)."""


class ShardRouter:
    """Routing core + HTTP front end over a fleet of solve daemons.

    Parameters
    ----------
    shards:
        ``(name, base_url)`` pairs (see :func:`parse_shard_spec`).
        Names must be unique; they become the ring's node names and the
        ``@shard`` suffix of fleet job ids.
    vnodes:
        Virtual nodes per shard on the hash ring.
    max_hops:
        Total shards tried per submission (owner + fallbacks) on
        connect failure or 429.
    health_interval:
        Seconds between background health sweeps.
    fail_threshold:
        Consecutive probe/forward failures that mark a shard down.
    upstream_timeout:
        Socket timeout for forwarded requests (health probes use
        ``min(2.0, upstream_timeout)``).
    redirect_results:
        Answer ``GET /v1/jobs/{id}/result`` with a ``307`` to the
        owning shard instead of proxying the payload.
    host / port:
        Listening address (``port=0`` binds an ephemeral port).
    """

    def __init__(
        self,
        shards: Sequence[Tuple[str, str]],
        *,
        vnodes: int = DEFAULT_VNODES,
        max_hops: int = 3,
        health_interval: float = 1.0,
        fail_threshold: int = 2,
        upstream_timeout: float = 10.0,
        redirect_results: bool = False,
        host: str = "127.0.0.1",
        port: int = 8786,
    ) -> None:
        if not shards:
            raise ValueError("router needs at least one shard")
        names = [name for name, _ in shards]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names: {sorted(names)}")
        self.shards: Dict[str, Shard] = {
            name: Shard(name=name, url=url.rstrip("/"))
            for name, url in shards
        }
        self.ring = HashRing(names, vnodes=vnodes)
        self.max_hops = max(1, max_hops)
        self.health_interval = health_interval
        self.fail_threshold = max(1, fail_threshold)
        self.upstream_timeout = upstream_timeout
        self.redirect_results = redirect_results
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._health_task: Optional[asyncio.Task] = None
        self._pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(shards)),
            thread_name_prefix="router-upstream",
        )
        self._started_at = time.time()
        self._started_mono = time.monotonic()
        self._counters = {
            "submitted": 0,
            "forwarded": 0,
            "retries": 0,
            "relayed_429": 0,
            "markdowns": 0,
            "markups": 0,
            "unroutable": 0,
        }
        self.metrics_registry = obs_metrics.MetricsRegistry()
        self._h_forward = self.metrics_registry.histogram(
            "forward_seconds",
            "Per-hop latency of requests forwarded to a shard daemon.",
            obs_metrics.LATENCY_BUCKETS,
            labelnames=("shard",),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def url(self) -> str:
        """Base URL clients should target."""
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind the listening socket and launch the health loop."""
        self._started_at = time.time()
        self._started_mono = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._health_task = asyncio.create_task(
            self._health_loop(), name="router-health"
        )

    async def close(self) -> None:
        """Stop accepting connections; spawned shards are left to the
        owner (see :func:`run_router` for the CLI's teardown)."""
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def _mark_down(self, shard: Shard, error: str) -> None:
        shard.consecutive_failures += 1
        shard.last_error = error
        if shard.up and shard.consecutive_failures >= self.fail_threshold:
            shard.up = False
            shard.marked_down_at = time.time()
            self._counters["markdowns"] += 1

    def _mark_up(self, shard: Shard) -> None:
        shard.consecutive_failures = 0
        shard.last_error = None
        if not shard.up:
            shard.up = True
            shard.marked_down_at = None
            self._counters["markups"] += 1

    async def _health_loop(self) -> None:
        probe_timeout = min(2.0, self.upstream_timeout)
        while True:
            await asyncio.gather(
                *(self._probe(s, probe_timeout) for s in self.shards.values())
            )
            await asyncio.sleep(self.health_interval)

    async def _probe(self, shard: Shard, timeout: float) -> None:
        try:
            status, _headers, _payload = await self._forward(
                shard, "GET", "/v1/healthz", timeout=timeout, count=False
            )
        except _UpstreamError as exc:
            self._mark_down(shard, str(exc))
            return
        if status == 200:
            self._mark_up(shard)
        else:
            self._mark_down(shard, f"healthz returned HTTP {status}")

    async def check_health(self) -> None:
        """One immediate health sweep (tests use this to avoid waiting
        out ``health_interval``)."""
        probe_timeout = min(2.0, self.upstream_timeout)
        await asyncio.gather(
            *(self._probe(s, probe_timeout) for s in self.shards.values())
        )

    # ------------------------------------------------------------------
    # upstream transport
    # ------------------------------------------------------------------
    def _forward_blocking(
        self,
        url: str,
        method: str,
        body: Optional[bytes],
        timeout: float,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        request = urllib.request.Request(
            url,
            data=body,
            method=method,
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                payload = json.loads(resp.read().decode() or "{}")
                return resp.status, dict(resp.headers.items()), payload
        except urllib.error.HTTPError as exc:
            # An HTTP status from a *live* shard: pass it upward as data.
            try:
                payload = json.loads(exc.read().decode() or "{}")
            except (json.JSONDecodeError, UnicodeDecodeError):
                payload = {"error": str(exc)}
            return exc.code, dict(exc.headers.items()), payload
        except (
            urllib.error.URLError,
            ConnectionError,
            TimeoutError,
            OSError,
        ) as exc:
            raise _UpstreamError(f"{method} {url}: {exc}") from None

    async def _forward(
        self,
        shard: Shard,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        *,
        timeout: Optional[float] = None,
        count: bool = True,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], Dict[str, Any]]:
        loop = asyncio.get_running_loop()
        if count:
            self._counters["forwarded"] += 1
            shard.forwarded += 1
        t0 = time.perf_counter()
        try:
            return await loop.run_in_executor(
                self._pool,
                functools.partial(
                    self._forward_blocking,
                    f"{shard.url}{path}",
                    method,
                    body,
                    self.upstream_timeout if timeout is None else timeout,
                    headers,
                ),
            )
        finally:
            # Health probes (count=False) stay out of the hop-latency
            # histogram — they would flood it with sub-ms samples.
            if count:
                self._h_forward.labels(shard.name).observe(
                    time.perf_counter() - t0
                )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def candidates_for(self, key: str) -> List[Shard]:
        """Shards to try for a cell key, in ring preference order.

        Up shards first (owner, then fallback replicas), truncated to
        ``max_hops``.  When *every* shard is marked down the full ring
        order is returned anyway — attempting a marked-down shard beats
        refusing service on stale health state.
        """
        ordered = [
            self.shards[name]
            for name in self.ring.nodes_for(key, len(self.shards))
        ]
        up = [s for s in ordered if s.up]
        return (up or ordered)[: self.max_hops]

    def owner_for(self, key: str) -> Shard:
        """The ring owner of a key, health ignored."""
        return self.shards[self.ring.node_for(key)]

    async def _submit(
        self, body: bytes, req_headers: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        try:
            payload = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None
        try:
            problem, solver, _priority = parse_job_payload(payload)
        except ProtocolError as exc:
            raise _HttpError(400, str(exc)) from None
        key = cell_key(problem, solver.to_dict())
        self._counters["submitted"] += 1

        # The router is the client's first hop: it records the
        # ``client.submit`` root span (consuming X-Repro-Client-Send)
        # and forwards only trace id + its own routing span as the
        # parent, so the daemon's spans nest under ``router.submit``.
        trace_id, parent_id = SolveServer._trace_headers(req_headers or {})
        route_span_id = (
            obs_spans.new_span_id() if trace_id is not None else None
        )
        fwd_headers: Optional[Dict[str, str]] = None
        if trace_id is not None:
            fwd_headers = {
                obs_spans.TRACE_HEADER: trace_id,
                obs_spans.PARENT_HEADER: route_span_id,
            }
        route_wall = time.time()
        route_t0 = time.perf_counter()
        routed_to: Optional[str] = None

        shed: Optional[Tuple[int, Dict[str, str], Dict[str, Any]]] = None
        tried: List[str] = []
        try:
            for hop, shard in enumerate(self.candidates_for(key)):
                if hop:
                    self._counters["retries"] += 1
                tried.append(shard.name)
                try:
                    status, headers, resp = await self._forward(
                        shard, "POST", "/v1/jobs", body, headers=fwd_headers
                    )
                except _UpstreamError as exc:
                    # Connect failure: this shard is gone right now — mark
                    # it down immediately (the health loop marks it back
                    # up).
                    shard.consecutive_failures = max(
                        shard.consecutive_failures, self.fail_threshold - 1
                    )
                    self._mark_down(shard, str(exc))
                    continue
                self._mark_up(shard)
                if status == 429:
                    # Shed by this shard's bounded queue: remember the
                    # hint, try the next replica (dedup keeps this
                    # idempotent).
                    shed = (status, headers, resp)
                    continue
                if status in (200, 202):
                    routed_to = shard.name
                    return status, self._rewrite_job(resp, shard.name), {}
                routed_to = shard.name
                return status, resp, {}  # validation errors pass through
            if shed is not None:
                self._counters["relayed_429"] += 1
                status, headers, resp = shed
                out_headers = {}
                if headers.get("Retry-After"):
                    out_headers["Retry-After"] = headers["Retry-After"]
                resp.setdefault("tried", tried)
                return status, resp, out_headers
            self._counters["unroutable"] += 1
            raise _HttpError(
                503,
                f"no shard reachable for this key (tried {tried})",
                extra={"tried": tried},
            )
        finally:
            if route_span_id is not None:
                obs_spans.record_span(
                    "router.submit",
                    start=route_wall,
                    duration=time.perf_counter() - route_t0,
                    trace_id=trace_id,
                    parent_id=parent_id,
                    span_id=route_span_id,
                    shard=routed_to,
                    tried=",".join(tried),
                )

    async def _submit_front(
        self, body: bytes
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        try:
            payload = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None
        try:
            problem, _template, _points, _priority = parse_front_payload(
                payload
            )
        except ProtocolError as exc:
            raise _HttpError(400, str(exc)) from None
        # Instance-only affinity: every front over the same problem owns
        # the same shard, so sweep cells coalesce across fronts there.
        key = cell_key(problem, {"front": True})
        self._counters["submitted"] += 1

        shed: Optional[Tuple[int, Dict[str, str], Dict[str, Any]]] = None
        tried: List[str] = []
        for hop, shard in enumerate(self.candidates_for(key)):
            if hop:
                self._counters["retries"] += 1
            tried.append(shard.name)
            try:
                status, headers, resp = await self._forward(
                    shard, "POST", "/v1/fronts", body
                )
            except _UpstreamError as exc:
                shard.consecutive_failures = max(
                    shard.consecutive_failures, self.fail_threshold - 1
                )
                self._mark_down(shard, str(exc))
                continue
            self._mark_up(shard)
            if status == 429:
                shed = (status, headers, resp)
                continue
            if status in (200, 202):
                return status, self._rewrite_front(resp, shard.name), {}
            return status, resp, {}  # validation errors etc. pass through
        if shed is not None:
            self._counters["relayed_429"] += 1
            status, headers, resp = shed
            out_headers = {}
            if headers.get("Retry-After"):
                out_headers["Retry-After"] = headers["Retry-After"]
            resp.setdefault("tried", tried)
            return status, resp, out_headers
        self._counters["unroutable"] += 1
        raise _HttpError(
            503,
            f"no shard reachable for this key (tried {tried})",
            extra={"tried": tried},
        )

    async def _front_request(
        self, front_id: str
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        raw, shard_name = split_job_id(front_id)
        if shard_name is None:
            raise _HttpError(
                404,
                f"front id {front_id!r} carries no shard suffix; the "
                "router only resolves ids it issued (<id>@<shard>)",
            )
        shard = self.shards.get(shard_name)
        if shard is None:
            raise _HttpError(
                404, f"unknown shard {shard_name!r} in front id {front_id!r}"
            )
        try:
            status, _headers, resp = await self._forward(
                shard, "GET", f"/v1/fronts/{raw}"
            )
        except _UpstreamError as exc:
            self._mark_down(shard, str(exc))
            raise _HttpError(
                503,
                f"shard {shard.name!r} holding front {front_id!r} is "
                f"unreachable: {exc}",
            ) from None
        self._mark_up(shard)
        return status, self._rewrite_front(resp, shard.name), {}

    def _shard_for_job(self, job_id: str) -> Tuple[str, Shard]:
        raw, shard_name = split_job_id(job_id)
        if shard_name is None:
            raise _HttpError(
                404,
                f"job id {job_id!r} carries no shard suffix; the router "
                "only resolves ids it issued (<id>@<shard>)",
            )
        shard = self.shards.get(shard_name)
        if shard is None:
            raise _HttpError(
                404, f"unknown shard {shard_name!r} in job id {job_id!r}"
            )
        return raw, shard

    async def _job_request(
        self, method: str, job_id: str, suffix: str = ""
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        raw, shard = self._shard_for_job(job_id)
        try:
            status, _headers, resp = await self._forward(
                shard, method, f"/v1/jobs/{raw}{suffix}"
            )
        except _UpstreamError as exc:
            self._mark_down(shard, str(exc))
            raise _HttpError(
                503,
                f"shard {shard.name!r} holding job {job_id!r} is "
                f"unreachable: {exc}",
            ) from None
        self._mark_up(shard)
        return status, self._rewrite_job(resp, shard.name), {}

    async def _result(
        self, job_id: str
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        if self.redirect_results:
            raw, shard = self._shard_for_job(job_id)
            if shard.up:
                return (
                    307,
                    {"location": f"{shard.url}/v1/jobs/{raw}/result"},
                    {"Location": f"{shard.url}/v1/jobs/{raw}/result"},
                )
            # Fall through to proxying: a 307 at a down shard would
            # just bounce the client into the same connect failure.
        return await self._job_request("GET", job_id, "/result")

    async def _list_jobs(
        self, query: str
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        suffix = f"?{query}" if query else ""
        shards = [s for s in self.shards.values() if s.up]
        results = await asyncio.gather(
            *(self._forward(s, "GET", f"/v1/jobs{suffix}") for s in shards),
            return_exceptions=True,
        )
        jobs: List[Dict[str, Any]] = []
        unavailable: List[str] = []
        for shard, result in zip(shards, results):
            if isinstance(result, BaseException):
                if isinstance(result, _UpstreamError):
                    self._mark_down(shard, str(result))
                    unavailable.append(shard.name)
                    continue
                raise result
            status, _headers, resp = result
            if status != 200:
                unavailable.append(shard.name)
                continue
            for job in resp.get("jobs", []):
                jobs.append(self._rewrite_job(job, shard.name))
        jobs.sort(key=lambda j: j.get("submitted_at") or 0.0, reverse=True)
        payload: Dict[str, Any] = {"jobs": jobs, "count": len(jobs)}
        if unavailable:
            payload["unavailable_shards"] = unavailable
        return 200, payload, {}

    async def _trace_request(
        self, trace_id: str
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        """Merged trace view: the router's own spans (client.submit,
        router.submit) plus every up shard's, sorted by start time.
        Span ids embed the recording pid, so the merge needs no
        renumbering — dedup by id guards against double-reporting."""
        spans: List[Dict[str, Any]] = list(
            obs_spans.recorder().spans_for(trace_id)
        )
        shards = [s for s in self.shards.values() if s.up]
        results = await asyncio.gather(
            *(
                self._forward(
                    s, "GET", f"/v1/traces/{trace_id}", count=False
                )
                for s in shards
            ),
            return_exceptions=True,
        )
        seen = {span.get("span_id") for span in spans}
        for shard, result in zip(shards, results):
            if isinstance(result, BaseException):
                if isinstance(result, _UpstreamError):
                    continue  # a down shard just contributes no spans
                raise result
            status, _headers, resp = result
            if status != 200:
                continue
            for span in resp.get("spans", []):
                if span.get("span_id") in seen:
                    continue
                seen.add(span.get("span_id"))
                spans.append(span)
        if not spans:
            raise _HttpError(
                404, f"no spans recorded for trace {trace_id!r}"
            )
        spans.sort(key=lambda s: (s.get("start") or 0.0, s.get("name", "")))
        return 200, {
            "trace_id": trace_id,
            "count": len(spans),
            "spans": spans,
        }, {}

    async def _metrics(self) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        shards = list(self.shards.values())
        results = await asyncio.gather(
            *(
                self._forward(s, "GET", "/v1/metrics", count=False)
                for s in shards
            ),
            return_exceptions=True,
        )
        per_shard: Dict[str, Any] = {}
        fleet_jobs: Dict[str, int] = {}
        fleet_solver = {"evaluations": 0, "solve_time_s": 0.0}
        for shard, result in zip(shards, results):
            if isinstance(result, BaseException):
                if isinstance(result, _UpstreamError):
                    per_shard[shard.name] = {"error": str(result)}
                    continue
                raise result
            status, _headers, resp = result
            if status != 200:
                per_shard[shard.name] = {"error": f"HTTP {status}"}
                continue
            per_shard[shard.name] = resp
            for counter, value in resp.get("jobs", {}).items():
                fleet_jobs[counter] = fleet_jobs.get(counter, 0) + int(value)
            solver = resp.get("solver", {})
            fleet_solver["evaluations"] += int(solver.get("evaluations", 0))
            fleet_solver["solve_time_s"] += float(
                solver.get("solve_time_s", 0.0)
            )
        return 200, {
            "version": __version__,
            "role": "router",
            "uptime_s": time.monotonic() - self._started_mono,
            "router": dict(self._counters),
            "ring": self.ring.describe(),
            "shard_health": [s.describe() for s in shards],
            "fleet": {"jobs": fleet_jobs, "solver": fleet_solver},
            "shards": per_shard,
            "histograms": self.metrics_registry.to_dict(
                kinds=("histogram",)
            ),
        }, {}

    def _healthz(self) -> Dict[str, Any]:
        up = sum(1 for s in self.shards.values() if s.up)
        return {
            "status": "ok" if up else "degraded",
            "role": "router",
            "version": __version__,
            "uptime_s": time.monotonic() - self._started_mono,
            "shards_up": up,
            "shards_total": len(self.shards),
            "shards": [s.describe() for s in self.shards.values()],
        }

    @staticmethod
    def _rewrite_job(payload: Dict[str, Any], shard: str) -> Dict[str, Any]:
        """Stamp a shard-local job payload with its fleet identity."""
        if isinstance(payload.get("id"), str) and payload["id"]:
            payload["id"] = routed_job_id(payload["id"], shard)
        payload.setdefault("shard", shard)
        return payload

    @staticmethod
    def _rewrite_front(payload: Dict[str, Any], shard: str) -> Dict[str, Any]:
        """Stamp a shard-local front payload (front id + embedded cell-job
        ids) with its fleet identity."""
        if isinstance(payload.get("id"), str) and payload["id"]:
            payload["id"] = routed_job_id(payload["id"], shard)
        if isinstance(payload.get("jobs"), list):
            payload["jobs"] = [
                routed_job_id(j, shard) if isinstance(j, str) else j
                for j in payload["jobs"]
            ]
        payload.setdefault("shard", shard)
        return payload

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, req_headers, body = await _read_request(
                    reader
                )
                status, payload, headers = await self._route(
                    method, target, body, req_headers
                )
            except _HttpError as exc:
                status, payload, headers = (
                    exc.status,
                    {"error": exc.message, **exc.extra},
                    exc.headers,
                )
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as exc:  # never leak a traceback to the socket
                status, payload, headers = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }, {}
            writer.write(_response(status, payload, headers))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # client went away
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    async def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        req_headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
        split = urlsplit(target)
        parts = [p for p in split.path.split("/") if p]
        if parts == ["metrics"]:
            # Prometheus scrape target: fleet-aggregated text rendered
            # from the same payload GET /v1/metrics serves as JSON.
            self._expect(method, "GET")
            _status, payload, _headers = await self._metrics()
            return 200, _PlainText(to_prometheus(payload)), {}
        if parts[:1] != ["v1"]:
            raise _HttpError(404, f"unknown path {split.path!r}")
        rest = parts[1:]
        if rest == ["healthz"]:
            self._expect(method, "GET")
            return 200, self._healthz(), {}
        if rest == ["metrics"]:
            self._expect(method, "GET")
            return await self._metrics()
        if len(rest) == 2 and rest[0] == "traces":
            self._expect(method, "GET")
            return await self._trace_request(rest[1])
        if rest == ["jobs"]:
            if method == "POST":
                return await self._submit(body, req_headers)
            self._expect(method, "GET")
            return await self._list_jobs(split.query)
        if len(rest) == 2 and rest[0] == "jobs":
            if method == "DELETE":
                return await self._job_request("DELETE", rest[1])
            self._expect(method, "GET")
            return await self._job_request("GET", rest[1])
        if len(rest) == 3 and rest[0] == "jobs" and rest[2] == "result":
            self._expect(method, "GET")
            return await self._result(rest[1])
        if rest == ["fronts"]:
            self._expect(method, "POST")
            return await self._submit_front(body)
        if len(rest) == 2 and rest[0] == "fronts":
            self._expect(method, "GET")
            return await self._front_request(rest[1])
        raise _HttpError(404, f"unknown path {split.path!r}")

    @staticmethod
    def _expect(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"method {method} not allowed here")


# ----------------------------------------------------------------------
# embedding / entry points
# ----------------------------------------------------------------------
async def serve_router(
    shards: Sequence[Tuple[str, str]],
    *,
    host: str = "127.0.0.1",
    port: int = 8786,
    **router_kwargs: Any,
) -> ShardRouter:
    """Build, start and return a :class:`ShardRouter`."""
    router = ShardRouter(shards, host=host, port=port, **router_kwargs)
    await router.start()
    return router


class RouterThread:
    """Host a :class:`ShardRouter` on a background thread.

    Mirrors :class:`~repro.server.http.ServerThread`: :meth:`start`
    blocks until the socket is bound, usable as a context manager.
    Tests and benchmarks embed a live router this way.
    """

    def __init__(
        self,
        shards: Sequence[Tuple[str, str]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        **router_kwargs: Any,
    ) -> None:
        self._shards = list(shards)
        self._host = host
        self._port = port
        self._router_kwargs = router_kwargs
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None
        self.router: Optional[ShardRouter] = None

    @property
    def url(self) -> str:
        """Base URL of the running router."""
        assert self.router is not None, "router not started"
        return self.router.url

    def start(self, timeout: float = 30.0) -> "RouterThread":
        """Launch the thread and wait for the socket to be bound."""
        self._thread = threading.Thread(
            target=self._run, name="shard-router", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("router thread did not start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"router failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Request shutdown and join."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def run_sync(self, coro_factory) -> Any:
        """Run ``coro_factory(router)`` on the router's loop (tests use
        this to trigger an immediate health sweep)."""
        assert self._loop is not None and self.router is not None
        future = asyncio.run_coroutine_threadsafe(
            coro_factory(self.router), self._loop
        )
        return future.result(timeout=30.0)

    def __enter__(self) -> "RouterThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.router = await serve_router(
                self._shards,
                host=self._host,
                port=self._port,
                **self._router_kwargs,
            )
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.router.close()


#: Pattern the daemon prints on startup; the spawner parses the bound
#: (possibly ephemeral) URL out of it.
_LISTENING_RE = re.compile(r"listening on (http://\S+)")


def spawn_local_fleet(
    count: int,
    *,
    cache_dir: Union[str, Path, None] = None,
    executor: str = "process",
    concurrency: int = 2,
    extra_args: Sequence[str] = (),
    startup_timeout: float = 60.0,
) -> List[Shard]:
    """Spawn ``count`` solve daemons on ephemeral ports.

    Each shard is a real child process running ``repro-pipelines serve
    --port 0 --shard-name shard{i}``; with ``cache_dir`` set, shard
    ``i`` caches under ``<cache_dir>/shard{i}`` (per-shard caches — the
    ring, not a shared directory, is what makes dedup fleet-wide).
    Returns :class:`Shard` handles carrying the child processes; the
    caller owns their lifetime (see :func:`run_router`).
    """
    shards: List[Shard] = []
    package_root = str(Path(__file__).resolve().parents[2])
    try:
        for i in range(count):
            name = f"shard{i}"
            argv = [
                sys.executable,
                "-c",
                "import sys; from repro.cli import main; sys.exit(main())",
                "serve",
                "--port",
                "0",
                "--shard-name",
                name,
                "--executor",
                executor,
                "--concurrency",
                str(concurrency),
                *extra_args,
            ]
            if cache_dir is not None:
                shard_cache = Path(cache_dir) / name
                shard_cache.mkdir(parents=True, exist_ok=True)
                argv += ["--cache-dir", str(shard_cache)]
            import os

            env = dict(os.environ)
            env["PYTHONPATH"] = package_root + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            env["PYTHONUNBUFFERED"] = "1"
            proc = subprocess.Popen(
                argv,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
            url = _wait_for_url(proc, startup_timeout)
            shards.append(Shard(name=name, url=url, process=proc))
    except BaseException:
        terminate_fleet(shards)
        raise
    return shards


def _wait_for_url(proc: subprocess.Popen, timeout: float) -> str:
    """Read the child's stdout until it announces its bound URL."""
    deadline = time.monotonic() + timeout
    lines: List[str] = []
    assert proc.stdout is not None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            if proc.poll() is not None:
                break
            time.sleep(0.05)
            continue
        lines.append(line)
        match = _LISTENING_RE.search(line)
        if match:
            return match.group(1)
    raise RuntimeError(
        "spawned daemon did not announce its URL within "
        f"{timeout}s; output so far:\n{''.join(lines)}"
    )


def terminate_fleet(shards: Sequence[Shard]) -> None:
    """Terminate (then kill) every spawned shard process."""
    for shard in shards:
        if shard.process is not None and shard.process.poll() is None:
            shard.process.terminate()
    deadline = time.monotonic() + 10.0
    for shard in shards:
        if shard.process is None:
            continue
        remaining = max(0.1, deadline - time.monotonic())
        try:
            shard.process.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            shard.process.kill()
            shard.process.wait(timeout=5.0)


def run_router(
    shards: Sequence[Tuple[str, str]] = (),
    *,
    host: str = "127.0.0.1",
    port: int = 8786,
    spawn: int = 0,
    cache_dir: Union[str, Path, None] = None,
    executor: str = "process",
    concurrency: int = 2,
    spawn_args: Sequence[str] = (),
    **router_kwargs: Any,
) -> None:
    """Blocking entry point used by ``repro-pipelines route``.

    Fronts the given shard URLs, optionally spawning ``spawn`` local
    daemons first; runs until SIGINT/SIGTERM, then closes the router
    and terminates any spawned shards.
    """
    import signal

    spawned: List[Shard] = []
    shard_specs = list(shards)
    if spawn:
        spawned = spawn_local_fleet(
            spawn,
            cache_dir=cache_dir,
            executor=executor,
            concurrency=concurrency,
            extra_args=spawn_args,
        )
        shard_specs += [(s.name, s.url) for s in spawned]

    async def _main() -> None:
        router = await serve_router(
            shard_specs, host=host, port=port, **router_kwargs
        )
        for shard in spawned:
            router.shards[shard.name].process = shard.process
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        handled = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
                handled.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        roster = " ".join(f"{n}={u}" for n, u in shard_specs)
        print(
            f"repro-pipelines shard router v{__version__} "
            f"listening on {router.url} fronting {len(shard_specs)} "
            f"shard(s): {roster}",
            flush=True,
        )
        try:
            await stop.wait()
            print("router shutting down", flush=True)
        finally:
            for sig in handled:
                loop.remove_signal_handler(sig)
            await router.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - handler fallback path
        print("router shutting down", flush=True)
    finally:
        terminate_fleet(spawned)
