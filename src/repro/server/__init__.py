"""Solve-service daemon: a persistent HTTP front end over the solvers.

One-shot CLI and batch runs re-pay pool startup and re-solve repeated
instances; this package turns the solve pipeline into a *service*: a
long-lived asyncio daemon with

* an HTTP API (stdlib only) — ``POST /v1/jobs``, ``GET /v1/jobs/{id}``,
  ``GET /v1/jobs/{id}/result``, ``POST /v1/fronts``,
  ``GET /v1/fronts/{id}``, ``GET /v1/metrics``, ``GET /v1/healthz``
  (:mod:`repro.server.http`);
* a priority job queue with configurable concurrency executing through
  :func:`repro.service.solve_batch` (:mod:`repro.server.service`);
* content-addressed dedup against the campaign results cache
  (:func:`repro.experiments.cell_key`): identical submissions — queued,
  running or previously solved — coalesce to one solve and are answered
  with zero extra evaluations (:mod:`repro.server.jobs`);
* the :mod:`repro.io`-based wire format (:mod:`repro.server.protocol`).

Quickstart::

    # daemon:  repro-pipelines serve --port 8787 --cache-dir cache/
    from repro.client import SolveClient

    client = SolveClient("http://127.0.0.1:8787")
    result = client.solve(problem, objective="period")
    print(result.solution.objective, result.source)   # "solved" | "cache"

Embedding (tests, benchmarks)::

    from repro.server import ServerThread

    with ServerThread(cache=tmp_dir, concurrency=2) as server:
        client = SolveClient(server.url)
        ...
"""

from .fronts import FrontRecord, FrontStore, new_front_id
from .http import ServerThread, SolveServer, run_server, serve
from .jobs import JobOutcome, JobRecord, JobState, new_job_id
from .protocol import (
    ProtocolError,
    job_to_dict,
    parse_front_payload,
    parse_job_payload,
    result_to_dict,
)
from .ring import DEFAULT_VNODES, HashRing
from .router import (
    RouterThread,
    Shard,
    ShardRouter,
    parse_shard_spec,
    routed_job_id,
    run_router,
    serve_router,
    spawn_local_fleet,
    split_job_id,
)
from .service import (
    MemoryCache,
    ServiceClosedError,
    ServiceOverloadedError,
    SolveService,
    UnknownJobError,
    solve_cell,
)

__all__ = [
    "DEFAULT_VNODES",
    "FrontRecord",
    "FrontStore",
    "HashRing",
    "JobOutcome",
    "JobRecord",
    "JobState",
    "MemoryCache",
    "ProtocolError",
    "RouterThread",
    "ServerThread",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "Shard",
    "ShardRouter",
    "SolveServer",
    "SolveService",
    "UnknownJobError",
    "job_to_dict",
    "new_front_id",
    "new_job_id",
    "parse_front_payload",
    "parse_job_payload",
    "parse_shard_spec",
    "result_to_dict",
    "routed_job_id",
    "run_router",
    "run_server",
    "serve",
    "serve_router",
    "solve_cell",
    "spawn_local_fleet",
    "split_job_id",
]
