"""Wire format of the solve-service HTTP API.

Requests and responses are plain JSON built from the existing
:mod:`repro.io` serializers: a job submission carries a problem payload
(:func:`repro.io.problem_to_dict` format) plus a solver configuration in
the exact shape of a campaign ``solvers`` entry
(:meth:`repro.experiments.SolverSpec.from_dict` — same keys, same strict
validation), and a result is served as a
:func:`repro.io.solution_to_dict` payload with the solve's telemetry
embedded.

Submission payload::

    {
      "problem": { ... problem_to_dict ... },
      "solver": {                      # optional; defaults shown
        "objective": "period",         # period | latency | energy
        "method": "registry",          # or "strategy": "portfolio(...)"
        "budget": {"time_limit": 1.0, "max_evaluations": 10000, "seed": 0},
        "max_period": 2.0              # thresholds, energy needs max_period
      },
      "priority": 0                    # larger runs earlier
    }
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..core.exceptions import ReproError
from ..core.problem import ProblemInstance
from ..experiments.spec import CampaignSpecError, SolverSpec
from ..io import SerializationError, problem_from_dict, solution_to_dict
from .jobs import JobRecord

__all__ = [
    "ProtocolError",
    "job_to_dict",
    "parse_front_payload",
    "parse_job_payload",
    "result_to_dict",
]

#: Solver name injected when the request does not provide one (the name
#: is excluded from the cache digest, so it never affects dedup).
DEFAULT_SOLVER_NAME = "request"


class ProtocolError(ReproError):
    """A malformed request payload (maps to HTTP 400)."""


def parse_job_payload(
    payload: Any,
) -> Tuple[ProblemInstance, SolverSpec, int]:
    """Validate a submission payload into (problem, solver, priority).

    Raises
    ------
    ProtocolError
        On any malformed part; the message names the offending field.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    unknown = sorted(set(payload) - {"problem", "solver", "priority"})
    if unknown:
        raise ProtocolError(
            f"unknown key(s) {unknown}; allowed: ['priority', 'problem', 'solver']"
        )
    if "problem" not in payload:
        raise ProtocolError("missing required key 'problem'")
    try:
        problem = problem_from_dict(payload["problem"])
    except (SerializationError, ReproError, TypeError, KeyError) as exc:
        raise ProtocolError(f"invalid 'problem': {exc}") from None
    solver_raw = payload.get("solver") or {}
    if not isinstance(solver_raw, dict):
        raise ProtocolError("'solver' must be a JSON object")
    solver_raw = dict(solver_raw)
    solver_raw.setdefault("name", DEFAULT_SOLVER_NAME)
    try:
        solver = SolverSpec.from_dict(solver_raw)
    except CampaignSpecError as exc:
        raise ProtocolError(f"invalid 'solver': {exc}") from None
    priority = payload.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ProtocolError(f"'priority' must be an int, got {priority!r}")
    return problem, solver, priority


#: Solver keys a front submission may set: the sweep owns the objective
#: and the period threshold, so neither may appear in the template.
_FRONT_SOLVER_KEYS = ("name", "strategy", "method", "budget", "engine")


def parse_front_payload(
    payload: Any,
) -> Tuple[ProblemInstance, Dict[str, Any], int, int]:
    """Validate a ``POST /v1/fronts`` payload into
    ``(problem, solver_template, max_points, priority)``.

    The solver template is a *partial* solver configuration applied to
    every sweep cell (strategy/method/budget/engine); the front engine
    fills in ``objective="energy"`` and the per-cell ``max_period``, so a
    template carrying either of those — or any other job-payload key —
    is rejected.

    Raises
    ------
    ProtocolError
        On any malformed part; the message names the offending field.
    """
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")
    allowed = {"problem", "solver", "points", "priority"}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ProtocolError(
            f"unknown key(s) {unknown}; allowed: {sorted(allowed)}"
        )
    if "problem" not in payload:
        raise ProtocolError("missing required key 'problem'")
    try:
        problem = problem_from_dict(payload["problem"])
    except (SerializationError, ReproError, TypeError, KeyError) as exc:
        raise ProtocolError(f"invalid 'problem': {exc}") from None
    template = payload.get("solver") or {}
    if not isinstance(template, dict):
        raise ProtocolError("'solver' must be a JSON object")
    bad = sorted(set(template) - set(_FRONT_SOLVER_KEYS))
    if bad:
        raise ProtocolError(
            f"front solver template: unknown/forbidden key(s) {bad}; "
            f"allowed: {sorted(_FRONT_SOLVER_KEYS)} (the sweep sets "
            "'objective' and 'max_period' itself)"
        )
    template = dict(template)
    template.setdefault("name", DEFAULT_SOLVER_NAME)
    # Validate strategy/method/budget/engine by building a probe spec on
    # a placeholder threshold; the engine re-builds per cell.
    try:
        SolverSpec.from_dict(
            {**template, "objective": "energy", "max_period": 1.0}
        )
    except CampaignSpecError as exc:
        raise ProtocolError(f"invalid 'solver': {exc}") from None
    points = payload.get("points", 200)
    if isinstance(points, bool) or not isinstance(points, int) or points < 1:
        raise ProtocolError(f"'points' must be a positive int, got {points!r}")
    priority = payload.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ProtocolError(f"'priority' must be an int, got {priority!r}")
    return problem, template, points, priority


def job_to_dict(job: JobRecord) -> Dict[str, Any]:
    """Status view of a job (``GET /v1/jobs/{id}``): lifecycle, timing,
    outcome summary and telemetry — everything except the solution
    payload, which ``/result`` serves."""
    outcome = job.outcome
    out: Dict[str, Any] = {
        "id": job.id,
        "key": job.key,
        "state": job.state.value,
        "priority": job.priority,
        "source": job.source,
        "submitted_at": job.submitted_at,
        "started_at": job.started_at,
        "finished_at": job.finished_at,
        "trace_id": job.trace_id,
        "queue_wait": job.queue_wait,
        "request": job.request_summary(),
        "status": None,
        "objective": None,
        "wall_time": None,
        "error": None,
        "telemetry": None,
    }
    if outcome is not None:
        out.update(
            status=outcome.status,
            objective=(
                None if outcome.solution is None else outcome.solution.objective
            ),
            wall_time=outcome.wall_time,
            error=outcome.error,
            telemetry=(
                None
                if outcome.telemetry is None
                else outcome.telemetry.to_dict()
            ),
        )
    return out


def result_to_dict(job: JobRecord) -> Optional[Dict[str, Any]]:
    """Result view of a finished job (``GET /v1/jobs/{id}/result``).

    ``None`` while the job is still queued or running.  The
    ``"solution"`` sub-payload is the :func:`repro.io.solution_to_dict`
    wire format (telemetry embedded); it is absent for infeasible,
    errored or cancelled jobs.
    """
    if not job.state.finished:
        return None
    out: Dict[str, Any] = {
        "id": job.id,
        "state": job.state.value,
        "source": job.source,
        "status": None,
        "wall_time": None,
        "error": None,
        "telemetry": None,
        "solution": None,
    }
    outcome = job.outcome
    if outcome is not None:
        out.update(
            status=outcome.status,
            wall_time=outcome.wall_time,
            error=outcome.error,
            telemetry=(
                None
                if outcome.telemetry is None
                else outcome.telemetry.to_dict()
            ),
        )
        if outcome.solution is not None:
            out["solution"] = solution_to_dict(
                outcome.solution, telemetry=outcome.telemetry
            )
    return out
