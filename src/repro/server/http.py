"""Stdlib-only asyncio HTTP front end of the solve service.

A deliberately small HTTP/1.1 implementation on ``asyncio.start_server``
(no web framework — the repo's no-new-runtime-deps rule applies to the
daemon too): one request per connection, JSON in, JSON out.

Routes
------
=======  ============================  =======================================
Method   Path                          Meaning
=======  ============================  =======================================
POST     ``/v1/jobs``                  submit a job (``202``; ``200`` when
                                       served from cache immediately; ``429``
                                       + ``Retry-After`` when the bounded
                                       queue sheds the submission)
GET      ``/v1/jobs``                  list retained jobs (``?state=&limit=``)
GET      ``/v1/jobs/{id}``             job status + telemetry
GET      ``/v1/jobs/{id}/result``      solution payload of a finished job
DELETE   ``/v1/jobs/{id}``             cancel a queued job
POST     ``/v1/fronts``                submit an anytime Pareto-front sweep
                                       (``202``; ``200`` when every cell was
                                       answered from cache immediately)
GET      ``/v1/fronts/{id}``           front-so-far + hypervolume +
                                       done/total telemetry
GET      ``/v1/metrics``               queue/job/solver counters (JSON)
GET      ``/metrics``                  the same counters + histograms in
                                       Prometheus text exposition format
GET      ``/v1/traces/{trace_id}``     recorded spans of one distributed
                                       trace (``404`` when none)
GET      ``/v1/healthz``               liveness + version
=======  ============================  =======================================

Tracing: a ``POST /v1/jobs`` carrying ``X-Repro-Trace-Id`` runs its
submission under that trace — the daemon records its own spans
(submit, dedup lookup, queue wait, dispatch, solver phases, cache
write) against it, and ``GET /v1/traces/{trace_id}`` returns them.
``X-Repro-Parent-Id`` parents the daemon's spans onto the caller's
span; ``X-Repro-Client-Send`` (a wall-clock send timestamp) makes the
first server hop record the ``client.submit`` root span, so the tree
includes time spent on the wire.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from ..obs import spans as obs_spans
from ..obs.export import to_prometheus
from .fronts import FrontStore
from .jobs import JobState
from .protocol import (
    ProtocolError,
    job_to_dict,
    parse_front_payload,
    parse_job_payload,
    result_to_dict,
)
from .service import (
    ServiceClosedError,
    ServiceOverloadedError,
    SolveService,
    UnknownJobError,
)

__all__ = ["ServerThread", "SolveServer", "serve", "run_server"]

#: Largest accepted request body (a problem payload is a few KB; this is
#: headroom, not a promise).
MAX_BODY_BYTES = 32 * 1024 * 1024

_STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Internal: abort the request with a status + JSON error body
    (plus optional extra response headers, e.g. ``Retry-After``)."""

    def __init__(
        self,
        status: int,
        message: str,
        *,
        headers: Optional[Dict[str, str]] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}
        self.extra = extra or {}


class _PlainText(str):
    """Marker type: a route returned pre-rendered plain text (the
    Prometheus exposition endpoint), not a JSON-serializable payload."""


#: Content type of the Prometheus text exposition format, version
#: included (what official scrapers send in ``Accept``).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _response(
    status: int,
    payload: Any,
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    if isinstance(payload, _PlainText):
        body = payload.encode()
        content_type = PROMETHEUS_CONTENT_TYPE
    else:
        body = json.dumps(payload).encode()
        content_type = "application/json"
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    head = (
        f"HTTP/1.1 {status} {phrase}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"{extra}"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode() + body


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 request into (method, target, headers, body)."""
    request_line = await reader.readline()
    if not request_line:
        raise _HttpError(400, "empty request")
    try:
        method, target, _version = request_line.decode("latin-1").split()
    except ValueError:
        raise _HttpError(400, "malformed request line") from None
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) > 100:
            raise _HttpError(400, "too many headers")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise _HttpError(400, "malformed header") from None
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


class SolveServer:
    """The HTTP server wrapping one :class:`SolveService`."""

    def __init__(
        self,
        service: SolveService,
        *,
        host: str = "127.0.0.1",
        port: int = 8787,
    ) -> None:
        self.service = service
        self.fronts = FrontStore(service)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def url(self) -> str:
        """Base URL clients should target."""
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Start the queue workers and bind the listening socket.

        With ``port=0`` the OS assigns an ephemeral port, reflected in
        :attr:`port` afterwards.
        """
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self, *, drain_queue: bool = False) -> None:
        """Stop accepting connections and shut the queue down
        gracefully (see :meth:`SolveService.shutdown`)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.shutdown(drain_queue=drain_queue)

    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, target, req_headers, body = await _read_request(
                    reader
                )
                status, payload = self._route(
                    method, target, body, req_headers
                )
                headers: Dict[str, str] = {}
            except _HttpError as exc:
                status, payload, headers = (
                    exc.status,
                    {"error": exc.message, **exc.extra},
                    exc.headers,
                )
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            except Exception as exc:  # never leak a traceback to the socket
                status, payload, headers = 500, {
                    "error": f"{type(exc).__name__}: {exc}"
                }, {}
            writer.write(_response(status, payload, headers))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # client went away
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    def _route(
        self,
        method: str,
        target: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        split = urlsplit(target)
        parts = [p for p in split.path.split("/") if p]
        query = parse_qs(split.query)
        if parts == ["metrics"]:
            # Prometheus scrape target: text exposition rendered from
            # the same payload GET /v1/metrics serves as JSON.
            self._expect(method, "GET")
            return 200, _PlainText(to_prometheus(self.service.metrics()))
        if parts[:1] != ["v1"]:
            raise _HttpError(404, f"unknown path {split.path!r}")
        rest = parts[1:]
        if rest == ["healthz"]:
            self._expect(method, "GET")
            return 200, self._healthz()
        if rest == ["metrics"]:
            self._expect(method, "GET")
            return 200, self.service.metrics()
        if len(rest) == 2 and rest[0] == "traces":
            self._expect(method, "GET")
            return 200, self._trace(rest[1])
        if rest == ["jobs"]:
            if method == "POST":
                return self._submit(body, headers or {})
            self._expect(method, "GET")
            return 200, self._list_jobs(query)
        if len(rest) == 2 and rest[0] == "jobs":
            job_id = rest[1]
            if method == "DELETE":
                return self._cancel(job_id)
            self._expect(method, "GET")
            return 200, job_to_dict(self._job(job_id))
        if len(rest) == 3 and rest[:1] == ["jobs"] and rest[2] == "result":
            self._expect(method, "GET")
            return self._result(rest[1])
        if rest == ["fronts"]:
            self._expect(method, "POST")
            return self._submit_front(body)
        if len(rest) == 2 and rest[0] == "fronts":
            self._expect(method, "GET")
            return 200, self._front(rest[1]).to_dict()
        raise _HttpError(404, f"unknown path {split.path!r}")

    @staticmethod
    def _expect(method: str, expected: str) -> None:
        if method != expected:
            raise _HttpError(405, f"method {method} not allowed here")

    def _healthz(self) -> Dict[str, Any]:
        from ..algorithms.heuristics.local_search import engine_info

        info = engine_info()
        return {
            "status": "ok",
            "version": __version__,
            "shard": self.service.shard,
            "uptime_s": self.service.uptime,
            "concurrency": self.service.concurrency,
            # Active neighborhood engine: the daemon-level override when
            # set, otherwise the library default.
            "engine": self.service.engine or info["default"],
            "engines": info["engines"],
            "compiled_available": info["compiled_available"],
            "numba": info["numba"],
        }

    def _job(self, job_id: str):
        try:
            return self.service.job(job_id)
        except UnknownJobError as exc:
            raise _HttpError(404, str(exc)) from None

    def _trace(self, trace_id: str) -> Dict[str, Any]:
        spans = obs_spans.recorder().spans_for(trace_id)
        if not spans:
            raise _HttpError(
                404, f"no spans recorded for trace {trace_id!r}"
            )
        return {
            "trace_id": trace_id,
            "count": len(spans),
            "spans": list(spans),
        }

    @staticmethod
    def _trace_headers(
        headers: Dict[str, str],
    ) -> Tuple[Optional[str], Optional[str]]:
        """Extract (trace_id, parent_id) from request headers and, on
        the first traced server hop, record the ``client.submit`` root
        span from the client's send timestamp.

        The root span reuses the client's span id (sent as
        ``X-Repro-Parent-Id``) so every server-side span already
        parented on it attaches to a recorded node.  A router strips
        ``X-Repro-Client-Send`` when forwarding, so the span is
        recorded exactly once per trace, on the hop the client spoke
        to.
        """
        trace_id = headers.get(obs_spans.TRACE_HEADER.lower())
        if not trace_id:
            return None, None
        parent_id = headers.get(obs_spans.PARENT_HEADER.lower()) or None
        client_send = headers.get(obs_spans.CLIENT_SEND_HEADER.lower())
        if client_send:
            try:
                sent = float(client_send)
            except ValueError:
                sent = None
            if sent is not None:
                now = time.time()
                obs_spans.record_span(
                    "client.submit",
                    start=sent,
                    duration=max(0.0, now - sent),
                    trace_id=trace_id,
                    parent_id=None,
                    span_id=parent_id,
                )
        return trace_id, parent_id

    def _submit(
        self, body: bytes, headers: Dict[str, str]
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None
        try:
            problem, solver, priority = parse_job_payload(payload)
        except ProtocolError as exc:
            raise _HttpError(400, str(exc)) from None
        trace_id, parent_id = self._trace_headers(headers)
        try:
            with obs_spans.trace_context(trace_id, parent_id):
                with obs_spans.span(
                    "daemon.submit", shard=self.service.shard
                ):
                    job = self.service.submit(
                        problem, solver, priority=priority
                    )
        except ServiceClosedError as exc:
            raise _HttpError(503, str(exc)) from None
        except ServiceOverloadedError as exc:
            # Shed: nothing was queued.  The header carries the
            # integer-seconds form (HTTP delta-seconds); the JSON body
            # keeps the precise float for richer clients.
            raise _HttpError(
                429,
                str(exc),
                headers={
                    "Retry-After": str(max(1, math.ceil(exc.retry_after)))
                },
                extra={"retry_after": exc.retry_after},
            ) from None
        # 200 when the cache answered instantly, 202 while work is pending.
        return (200 if job.state.finished else 202), job_to_dict(job)

    def _front(self, front_id: str):
        try:
            return self.fronts.front(front_id)
        except UnknownJobError as exc:
            raise _HttpError(404, str(exc)) from None

    def _submit_front(self, body: bytes) -> Tuple[int, Dict[str, Any]]:
        try:
            payload = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from None
        try:
            problem, template, points, priority = parse_front_payload(payload)
        except ProtocolError as exc:
            raise _HttpError(400, str(exc)) from None
        try:
            record = self.fronts.submit(
                problem,
                template=template,
                max_points=points,
                priority=priority,
            )
        except ServiceClosedError as exc:
            raise _HttpError(503, str(exc)) from None
        except ServiceOverloadedError as exc:
            raise _HttpError(
                429,
                str(exc),
                headers={
                    "Retry-After": str(max(1, math.ceil(exc.retry_after)))
                },
                extra={"retry_after": exc.retry_after},
            ) from None
        # 200 when every cell was served from cache, 202 while pending.
        return (200 if record.finished else 202), record.to_dict()

    def _list_jobs(self, query: Dict[str, Any]) -> Dict[str, Any]:
        state: Optional[JobState] = None
        if "state" in query:
            try:
                state = JobState(query["state"][0])
            except ValueError:
                raise _HttpError(
                    400,
                    f"unknown state {query['state'][0]!r}; expected one of "
                    f"{[s.value for s in JobState]}",
                ) from None
        limit = None
        if "limit" in query:
            try:
                limit = int(query["limit"][0])
            except ValueError:
                raise _HttpError(400, "'limit' must be an int") from None
        jobs = self.service.jobs(state=state, limit=limit)
        return {"jobs": [job_to_dict(j) for j in jobs], "count": len(jobs)}

    def _cancel(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        job = self._job(job_id)
        cancelled = self.service.cancel(job_id)
        return 200, {
            "id": job.id,
            "cancelled": cancelled,
            "state": job.state.value,
        }

    def _result(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        job = self._job(job_id)
        payload = result_to_dict(job)
        if payload is None:
            raise _HttpError(
                409, f"job {job_id} is {job.state.value}, not finished"
            )
        return 200, payload


async def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8787,
    service: Optional[SolveService] = None,
    **service_kwargs: Any,
) -> SolveServer:
    """Build, start and return a :class:`SolveServer`.

    Extra keyword arguments construct the :class:`SolveService`
    (``cache=``, ``concurrency=``, ``executor=``, ``runner=``) when one
    is not passed in ready-made.
    """
    if service is None:
        service = SolveService(**service_kwargs)
    server = SolveServer(service, host=host, port=port)
    await server.start()
    return server


def run_server(
    *,
    host: str = "127.0.0.1",
    port: int = 8787,
    **kwargs: Any,
) -> None:
    """Blocking entry point used by ``repro-pipelines serve``: run until
    SIGINT/SIGTERM (or Ctrl-C), then drain in-flight work and exit.

    Signal handlers are installed explicitly on the loop: a daemon
    started in the background of a shell script inherits ``SIG_IGN``
    for SIGINT (and asyncio only overrides the *default* handler), and
    process supervisors stop services with SIGTERM — both must still
    shut down gracefully.
    """
    import signal

    async def _main() -> None:
        server = await serve(host=host, port=port, **kwargs)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        handled = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
                handled.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread / unsupported platform
        print(
            f"repro-pipelines solve service v{__version__} "
            f"listening on {server.url} "
            f"(concurrency={server.service.concurrency})",
            flush=True,
        )
        try:
            await stop.wait()
            print("shutting down (draining in-flight work)", flush=True)
        finally:
            for sig in handled:
                loop.remove_signal_handler(sig)
            await server.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - handler fallback path
        print("shutting down", flush=True)


class ServerThread:
    """Host a :class:`SolveServer` on a background thread.

    The thread runs its own event loop; :meth:`start` blocks until the
    socket is bound (so :attr:`url` is valid), :meth:`stop` drains
    in-flight work and joins the thread.  Usable as a context manager —
    this is how the test suite and :mod:`benchmarks.bench_server` embed
    a live daemon in-process.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        **serve_kwargs: Any,
    ) -> None:
        self._host = host
        self._port = port
        self._serve_kwargs = serve_kwargs
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[SolveServer] = None

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        assert self.server is not None, "server not started"
        return self.server.url

    def start(self, timeout: float = 30.0) -> "ServerThread":
        """Launch the thread and wait for the socket to be bound."""
        self._thread = threading.Thread(
            target=self._run, name="solve-server", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server thread did not start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Request shutdown (draining in-flight work) and join."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            self.server = await serve(
                host=self._host, port=self._port, **self._serve_kwargs
            )
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.server.close()
