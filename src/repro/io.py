"""JSON-friendly serialization of instances, mappings and solutions.

Round-trippable dictionaries (and JSON strings/files) for every core
object, so experiments can be archived, shared and replayed:

* :func:`application_to_dict` / :func:`application_from_dict`
* :func:`platform_to_dict` / :func:`platform_from_dict`
* :func:`mapping_to_dict` / :func:`mapping_from_dict`
* :func:`problem_to_dict` / :func:`problem_from_dict`
* :func:`solution_to_dict` / :func:`solution_from_dict`
* :func:`save_problem` / :func:`load_problem` (JSON files)
* :func:`problem_to_arrays` / :func:`problem_from_arrays` (meta dict +
  flat float64 arrays -- the shared-memory transport's wire format)

Solution payloads carry the mapping, the full criteria values and —
optionally — the structured :class:`~repro.strategies.SolveTelemetry`
record of the solve that produced them; they are the result wire format
of the solve-service daemon (:mod:`repro.server`).

The schema is versioned (``schema`` field); loaders reject unknown
versions instead of guessing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .core.application import Application, Stage
from .core.energy import EnergyModel
from .core.evaluation import CriteriaValues
from .core.exceptions import ReproError
from .core.mapping import Assignment, Mapping
from .core.platform import Platform
from .core.problem import ProblemInstance, Solution
from .core.processor import Processor
from .core.types import CommunicationModel, MappingRule

#: Current serialization schema version.
SCHEMA_VERSION = 1


class SerializationError(ReproError):
    """Raised on malformed or unsupported serialized payloads."""


def _require(payload: Dict[str, Any], key: str) -> Any:
    if key not in payload:
        raise SerializationError(f"missing field {key!r}")
    return payload[key]


# ----------------------------------------------------------------------
# Applications
# ----------------------------------------------------------------------
def application_to_dict(app: Application) -> Dict[str, Any]:
    """Serialize an application."""
    return {
        "works": list(app.works),
        "output_sizes": list(app.output_sizes),
        "input_data_size": app.input_data_size,
        "weight": app.weight,
        "name": app.name,
    }


def application_from_dict(payload: Dict[str, Any]) -> Application:
    """Deserialize an application."""
    return Application.from_lists(
        works=_require(payload, "works"),
        output_sizes=_require(payload, "output_sizes"),
        input_data_size=payload.get("input_data_size", 0.0),
        weight=payload.get("weight", 1.0),
        name=payload.get("name", ""),
    )


# ----------------------------------------------------------------------
# Platforms
# ----------------------------------------------------------------------
def platform_to_dict(platform: Platform) -> Dict[str, Any]:
    """Serialize a platform (link tables keyed as strings for JSON)."""
    return {
        "processors": [
            {
                "speeds": list(p.speeds),
                "static_energy": p.static_energy,
                "name": p.name,
            }
            for p in platform.processors
        ],
        "default_bandwidth": platform.default_bandwidth,
        "links": [[u, v, bw] for (u, v), bw in sorted(platform.links.items())],
        "in_links": [
            [a, u, bw] for (a, u), bw in sorted(platform.in_links.items())
        ],
        "out_links": [
            [a, u, bw] for (a, u), bw in sorted(platform.out_links.items())
        ],
        "app_bandwidths": [
            [a, bw] for a, bw in sorted(platform.app_bandwidths.items())
        ],
        "name": platform.name,
    }


def platform_from_dict(payload: Dict[str, Any]) -> Platform:
    """Deserialize a platform."""
    processors = tuple(
        Processor(
            speeds=tuple(entry["speeds"]),
            static_energy=entry.get("static_energy", 0.0),
            name=entry.get("name", ""),
        )
        for entry in _require(payload, "processors")
    )
    return Platform(
        processors=processors,
        default_bandwidth=payload.get("default_bandwidth", 1.0),
        links={(u, v): bw for u, v, bw in payload.get("links", [])},
        in_links={(a, u): bw for a, u, bw in payload.get("in_links", [])},
        out_links={(a, u): bw for a, u, bw in payload.get("out_links", [])},
        app_bandwidths={a: bw for a, bw in payload.get("app_bandwidths", [])},
        name=payload.get("name", ""),
    )


# ----------------------------------------------------------------------
# Mappings
# ----------------------------------------------------------------------
def mapping_to_dict(mapping: Mapping) -> Dict[str, Any]:
    """Serialize a mapping."""
    return {
        "assignments": [
            {
                "app": x.app,
                "interval": list(x.interval),
                "proc": x.proc,
                "speed": x.speed,
            }
            for x in mapping.assignments
        ]
    }


def mapping_from_dict(payload: Dict[str, Any]) -> Mapping:
    """Deserialize a mapping."""
    return Mapping.from_assignments(
        Assignment(
            app=entry["app"],
            interval=tuple(entry["interval"]),
            proc=entry["proc"],
            speed=entry["speed"],
        )
        for entry in _require(payload, "assignments")
    )


# ----------------------------------------------------------------------
# Problems
# ----------------------------------------------------------------------
def problem_to_dict(problem: ProblemInstance) -> Dict[str, Any]:
    """Serialize a full problem instance."""
    return {
        "schema": SCHEMA_VERSION,
        "apps": [application_to_dict(a) for a in problem.apps],
        "platform": platform_to_dict(problem.platform),
        "rule": problem.rule.value,
        "model": problem.model.value,
        "energy_alpha": problem.energy_model.alpha,
    }


def problem_from_dict(payload: Dict[str, Any]) -> ProblemInstance:
    """Deserialize a problem instance (schema-checked)."""
    schema = payload.get("schema", None)
    if schema != SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported schema version {schema!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return ProblemInstance(
        apps=tuple(
            application_from_dict(a) for a in _require(payload, "apps")
        ),
        platform=platform_from_dict(_require(payload, "platform")),
        rule=MappingRule(payload.get("rule", "interval")),
        model=CommunicationModel(payload.get("model", "overlap")),
        energy_model=EnergyModel(alpha=payload.get("energy_alpha", 2.0)),
    )


# ----------------------------------------------------------------------
# Solutions
# ----------------------------------------------------------------------
def solution_to_dict(
    solution: Solution, telemetry: Optional[Any] = None
) -> Dict[str, Any]:
    """Serialize a solver :class:`~repro.core.problem.Solution`.

    Parameters
    ----------
    solution:
        The solution to serialize (mapping, objective, full criteria,
        solver name, optimality flag, stats).
    telemetry:
        Optional per-solve telemetry to embed — either a
        :class:`~repro.strategies.SolveTelemetry` (anything with a
        ``to_dict()``) or an already-JSON-friendly dict.  Kept opaque
        here so :mod:`repro.io` stays below the strategy layer;
        :func:`solution_from_dict` hands it back verbatim under the
        ``"telemetry"`` key for the caller to decode.

    Returns
    -------
    dict
        JSON-friendly payload; the result wire format of the solve
        service (:mod:`repro.server`).
    """
    values = solution.values
    payload: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "mapping": mapping_to_dict(solution.mapping),
        "objective": solution.objective,
        "values": {
            "period": values.period,
            "latency": values.latency,
            "energy": values.energy,
            # JSON objects key by string; keys are restored to ints on load.
            "periods": {str(k): v for k, v in sorted(values.periods.items())},
            "latencies": {
                str(k): v for k, v in sorted(values.latencies.items())
            },
        },
        "solver": solution.solver,
        "optimal": solution.optimal,
        "stats": dict(solution.stats),
    }
    if telemetry is not None:
        payload["telemetry"] = (
            telemetry.to_dict() if hasattr(telemetry, "to_dict") else telemetry
        )
    return payload


def solution_from_dict(payload: Dict[str, Any]) -> Solution:
    """Deserialize a :class:`~repro.core.problem.Solution` (schema-checked).

    The optional ``"telemetry"`` sub-payload is *not* consumed here (a
    :class:`~repro.core.problem.Solution` has no telemetry field); decode
    it with :meth:`repro.strategies.SolveTelemetry.from_dict` if needed.
    """
    schema = payload.get("schema", None)
    if schema != SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported schema version {schema!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    values_raw = _require(payload, "values")
    values = CriteriaValues(
        periods={int(k): float(v) for k, v in values_raw.get("periods", {}).items()},
        latencies={
            int(k): float(v) for k, v in values_raw.get("latencies", {}).items()
        },
        period=float(_require(values_raw, "period")),
        latency=float(_require(values_raw, "latency")),
        energy=float(_require(values_raw, "energy")),
    )
    return Solution(
        mapping=mapping_from_dict(_require(payload, "mapping")),
        objective=float(_require(payload, "objective")),
        values=values,
        solver=payload.get("solver", ""),
        optimal=bool(payload.get("optimal", False)),
        stats=dict(payload.get("stats", {})),
    )


# ----------------------------------------------------------------------
# Array form (the shared-memory transport's wire format)
# ----------------------------------------------------------------------
#: Number of arrays holding the platform payload (speeds, static
#: energies, three link tables, per-app bandwidths).
_N_PLATFORM_ARRAYS = 6
#: Arrays per application: works, work-prefix sums, data-size vector.
_N_APP_ARRAYS = 3


def problem_to_arrays(problem: ProblemInstance):
    """Split a problem into a JSON-able meta dict + flat float64 arrays.

    The numeric payload of an instance — stage works/prefix sums,
    data-size vectors, processor speed sets, static energies and every
    bandwidth table — is returned as a list of 1-D ``float64`` arrays;
    everything else (names, weights, counts, enums) goes into a small
    ``meta`` dict.  This is the wire format of the zero-copy
    shared-memory transport (:mod:`repro.service.transport`): the arrays
    are copied into one shared segment per batch and reconstructed
    worker-side as views, while ``meta`` travels in the tiny per-worker
    descriptor.

    Returns
    -------
    (meta, arrays) : tuple of (dict, list of numpy.ndarray)
        ``arrays`` holds, per application, ``works`` (n), ``prefix``
        (n + 1, the canonical left-to-right prefix sums) and ``delta``
        (n + 1, input size then output sizes), followed by the six
        platform arrays.  :func:`problem_from_arrays` inverts it.
    """
    import numpy as np

    arrays = []
    apps_meta = []
    for app in problem.apps:
        works = np.asarray(app.works, dtype=np.float64)
        prefix = np.asarray(app._work_prefix, dtype=np.float64)
        delta = np.empty(app.n_stages + 1, dtype=np.float64)
        delta[0] = app.input_data_size
        delta[1:] = app.output_sizes
        arrays.extend((works, prefix, delta))
        apps_meta.append(
            {"n_stages": app.n_stages, "weight": app.weight, "name": app.name}
        )
    platform = problem.platform
    speeds_flat = np.asarray(
        [s for p in platform.processors for s in p.speeds], dtype=np.float64
    )
    static = np.asarray(
        [p.static_energy for p in platform.processors], dtype=np.float64
    )
    links = np.asarray(
        [x for (u, v), bw in sorted(platform.links.items()) for x in (u, v, bw)],
        dtype=np.float64,
    )
    in_links = np.asarray(
        [
            x
            for (a, u), bw in sorted(platform.in_links.items())
            for x in (a, u, bw)
        ],
        dtype=np.float64,
    )
    out_links = np.asarray(
        [
            x
            for (a, u), bw in sorted(platform.out_links.items())
            for x in (a, u, bw)
        ],
        dtype=np.float64,
    )
    app_bw = np.asarray(
        [x for a, bw in sorted(platform.app_bandwidths.items()) for x in (a, bw)],
        dtype=np.float64,
    )
    arrays.extend((speeds_flat, static, links, in_links, out_links, app_bw))
    meta = {
        "schema": SCHEMA_VERSION,
        "apps": apps_meta,
        "platform": {
            "mode_counts": [len(p.speeds) for p in platform.processors],
            "proc_names": [p.name for p in platform.processors],
            "default_bandwidth": platform.default_bandwidth,
            "name": platform.name,
        },
        "rule": problem.rule.value,
        "model": problem.model.value,
        "energy_alpha": problem.energy_model.alpha,
    }
    return meta, arrays


def problem_from_arrays(
    meta: Dict[str, Any],
    arrays,
    *,
    attach_kernel_views: bool = False,
) -> ProblemInstance:
    """Rebuild a :class:`~repro.core.problem.ProblemInstance` from its
    array form (:func:`problem_to_arrays`).

    Parameters
    ----------
    meta:
        The meta dict.
    arrays:
        The flat float64 arrays, in :func:`problem_to_arrays` order.
        May be views into a shared-memory buffer — the stage payloads
        are then *not* copied into the kernel.
    attach_kernel_views:
        When true, each reconstructed application gets its kernel
        arrays (work-prefix sums + data-size vector) attached directly
        from ``arrays``, so :class:`~repro.kernel.EvaluationContext`
        construction reuses the (shared-memory) views instead of
        rebuilding the arrays from Python floats.  The attached views
        are bit-identical to what the kernel would compute itself: the
        prefix sums were accumulated by the sender's
        ``Application.__post_init__`` with the same left-to-right order.

    Raises
    ------
    SerializationError
        On a schema mismatch or an array-count mismatch.
    """
    schema = meta.get("schema")
    if schema != SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported schema version {schema!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    apps_meta = _require(meta, "apps")
    expected = _N_APP_ARRAYS * len(apps_meta) + _N_PLATFORM_ARRAYS
    if len(arrays) != expected:
        raise SerializationError(
            f"expected {expected} arrays for {len(apps_meta)} applications, "
            f"got {len(arrays)}"
        )
    apps = []
    for a, app_meta in enumerate(apps_meta):
        works, prefix, delta = arrays[_N_APP_ARRAYS * a : _N_APP_ARRAYS * (a + 1)]
        app = Application.from_lists(
            works.tolist(),
            delta[1:].tolist(),
            input_data_size=float(delta[0]),
            weight=app_meta.get("weight", 1.0),
            name=app_meta.get("name", ""),
        )
        if attach_kernel_views:
            from .kernel.context import attach_kernel_arrays

            attach_kernel_arrays(app, prefix, delta)
        apps.append(app)
    speeds_flat, static, links, in_links, out_links, app_bw = arrays[
        _N_APP_ARRAYS * len(apps_meta) :
    ]
    platform_meta = _require(meta, "platform")
    mode_counts = _require(platform_meta, "mode_counts")
    proc_names = platform_meta.get("proc_names") or [""] * len(mode_counts)
    processors = []
    offset = 0
    for count, name in zip(mode_counts, proc_names):
        processors.append(
            Processor(
                speeds=tuple(speeds_flat[offset : offset + count].tolist()),
                static_energy=float(static[len(processors)]),
                name=name,
            )
        )
        offset += count
    triplets = lambda arr: {  # noqa: E731 - tiny local decoder
        (int(arr[i]), int(arr[i + 1])): float(arr[i + 2])
        for i in range(0, len(arr), 3)
    }
    platform = Platform(
        processors=tuple(processors),
        default_bandwidth=platform_meta.get("default_bandwidth", 1.0),
        links=triplets(links),
        in_links=triplets(in_links),
        out_links=triplets(out_links),
        app_bandwidths={
            int(app_bw[i]): float(app_bw[i + 1])
            for i in range(0, len(app_bw), 2)
        },
        name=platform_meta.get("name", ""),
    )
    return ProblemInstance(
        apps=tuple(apps),
        platform=platform,
        rule=MappingRule(meta.get("rule", "interval")),
        model=CommunicationModel(meta.get("model", "overlap")),
        energy_model=EnergyModel(alpha=meta.get("energy_alpha", 2.0)),
    )


def save_problem(
    problem: ProblemInstance, path: Union[str, Path]
) -> None:
    """Write a problem instance to a JSON file."""
    Path(path).write_text(
        json.dumps(problem_to_dict(problem), indent=2, sort_keys=True)
    )


def load_problem(path: Union[str, Path]) -> ProblemInstance:
    """Read a problem instance from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return problem_from_dict(payload)
