"""JSON-friendly serialization of instances, mappings and solutions.

Round-trippable dictionaries (and JSON strings/files) for every core
object, so experiments can be archived, shared and replayed:

* :func:`application_to_dict` / :func:`application_from_dict`
* :func:`platform_to_dict` / :func:`platform_from_dict`
* :func:`mapping_to_dict` / :func:`mapping_from_dict`
* :func:`problem_to_dict` / :func:`problem_from_dict`
* :func:`solution_to_dict` / :func:`solution_from_dict`
* :func:`save_problem` / :func:`load_problem` (JSON files)

Solution payloads carry the mapping, the full criteria values and —
optionally — the structured :class:`~repro.strategies.SolveTelemetry`
record of the solve that produced them; they are the result wire format
of the solve-service daemon (:mod:`repro.server`).

The schema is versioned (``schema`` field); loaders reject unknown
versions instead of guessing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .core.application import Application, Stage
from .core.energy import EnergyModel
from .core.evaluation import CriteriaValues
from .core.exceptions import ReproError
from .core.mapping import Assignment, Mapping
from .core.platform import Platform
from .core.problem import ProblemInstance, Solution
from .core.processor import Processor
from .core.types import CommunicationModel, MappingRule

#: Current serialization schema version.
SCHEMA_VERSION = 1


class SerializationError(ReproError):
    """Raised on malformed or unsupported serialized payloads."""


def _require(payload: Dict[str, Any], key: str) -> Any:
    if key not in payload:
        raise SerializationError(f"missing field {key!r}")
    return payload[key]


# ----------------------------------------------------------------------
# Applications
# ----------------------------------------------------------------------
def application_to_dict(app: Application) -> Dict[str, Any]:
    """Serialize an application."""
    return {
        "works": list(app.works),
        "output_sizes": list(app.output_sizes),
        "input_data_size": app.input_data_size,
        "weight": app.weight,
        "name": app.name,
    }


def application_from_dict(payload: Dict[str, Any]) -> Application:
    """Deserialize an application."""
    return Application.from_lists(
        works=_require(payload, "works"),
        output_sizes=_require(payload, "output_sizes"),
        input_data_size=payload.get("input_data_size", 0.0),
        weight=payload.get("weight", 1.0),
        name=payload.get("name", ""),
    )


# ----------------------------------------------------------------------
# Platforms
# ----------------------------------------------------------------------
def platform_to_dict(platform: Platform) -> Dict[str, Any]:
    """Serialize a platform (link tables keyed as strings for JSON)."""
    return {
        "processors": [
            {
                "speeds": list(p.speeds),
                "static_energy": p.static_energy,
                "name": p.name,
            }
            for p in platform.processors
        ],
        "default_bandwidth": platform.default_bandwidth,
        "links": [[u, v, bw] for (u, v), bw in sorted(platform.links.items())],
        "in_links": [
            [a, u, bw] for (a, u), bw in sorted(platform.in_links.items())
        ],
        "out_links": [
            [a, u, bw] for (a, u), bw in sorted(platform.out_links.items())
        ],
        "app_bandwidths": [
            [a, bw] for a, bw in sorted(platform.app_bandwidths.items())
        ],
        "name": platform.name,
    }


def platform_from_dict(payload: Dict[str, Any]) -> Platform:
    """Deserialize a platform."""
    processors = tuple(
        Processor(
            speeds=tuple(entry["speeds"]),
            static_energy=entry.get("static_energy", 0.0),
            name=entry.get("name", ""),
        )
        for entry in _require(payload, "processors")
    )
    return Platform(
        processors=processors,
        default_bandwidth=payload.get("default_bandwidth", 1.0),
        links={(u, v): bw for u, v, bw in payload.get("links", [])},
        in_links={(a, u): bw for a, u, bw in payload.get("in_links", [])},
        out_links={(a, u): bw for a, u, bw in payload.get("out_links", [])},
        app_bandwidths={a: bw for a, bw in payload.get("app_bandwidths", [])},
        name=payload.get("name", ""),
    )


# ----------------------------------------------------------------------
# Mappings
# ----------------------------------------------------------------------
def mapping_to_dict(mapping: Mapping) -> Dict[str, Any]:
    """Serialize a mapping."""
    return {
        "assignments": [
            {
                "app": x.app,
                "interval": list(x.interval),
                "proc": x.proc,
                "speed": x.speed,
            }
            for x in mapping.assignments
        ]
    }


def mapping_from_dict(payload: Dict[str, Any]) -> Mapping:
    """Deserialize a mapping."""
    return Mapping.from_assignments(
        Assignment(
            app=entry["app"],
            interval=tuple(entry["interval"]),
            proc=entry["proc"],
            speed=entry["speed"],
        )
        for entry in _require(payload, "assignments")
    )


# ----------------------------------------------------------------------
# Problems
# ----------------------------------------------------------------------
def problem_to_dict(problem: ProblemInstance) -> Dict[str, Any]:
    """Serialize a full problem instance."""
    return {
        "schema": SCHEMA_VERSION,
        "apps": [application_to_dict(a) for a in problem.apps],
        "platform": platform_to_dict(problem.platform),
        "rule": problem.rule.value,
        "model": problem.model.value,
        "energy_alpha": problem.energy_model.alpha,
    }


def problem_from_dict(payload: Dict[str, Any]) -> ProblemInstance:
    """Deserialize a problem instance (schema-checked)."""
    schema = payload.get("schema", None)
    if schema != SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported schema version {schema!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    return ProblemInstance(
        apps=tuple(
            application_from_dict(a) for a in _require(payload, "apps")
        ),
        platform=platform_from_dict(_require(payload, "platform")),
        rule=MappingRule(payload.get("rule", "interval")),
        model=CommunicationModel(payload.get("model", "overlap")),
        energy_model=EnergyModel(alpha=payload.get("energy_alpha", 2.0)),
    )


# ----------------------------------------------------------------------
# Solutions
# ----------------------------------------------------------------------
def solution_to_dict(
    solution: Solution, telemetry: Optional[Any] = None
) -> Dict[str, Any]:
    """Serialize a solver :class:`~repro.core.problem.Solution`.

    Parameters
    ----------
    solution:
        The solution to serialize (mapping, objective, full criteria,
        solver name, optimality flag, stats).
    telemetry:
        Optional per-solve telemetry to embed — either a
        :class:`~repro.strategies.SolveTelemetry` (anything with a
        ``to_dict()``) or an already-JSON-friendly dict.  Kept opaque
        here so :mod:`repro.io` stays below the strategy layer;
        :func:`solution_from_dict` hands it back verbatim under the
        ``"telemetry"`` key for the caller to decode.

    Returns
    -------
    dict
        JSON-friendly payload; the result wire format of the solve
        service (:mod:`repro.server`).
    """
    values = solution.values
    payload: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "mapping": mapping_to_dict(solution.mapping),
        "objective": solution.objective,
        "values": {
            "period": values.period,
            "latency": values.latency,
            "energy": values.energy,
            # JSON objects key by string; keys are restored to ints on load.
            "periods": {str(k): v for k, v in sorted(values.periods.items())},
            "latencies": {
                str(k): v for k, v in sorted(values.latencies.items())
            },
        },
        "solver": solution.solver,
        "optimal": solution.optimal,
        "stats": dict(solution.stats),
    }
    if telemetry is not None:
        payload["telemetry"] = (
            telemetry.to_dict() if hasattr(telemetry, "to_dict") else telemetry
        )
    return payload


def solution_from_dict(payload: Dict[str, Any]) -> Solution:
    """Deserialize a :class:`~repro.core.problem.Solution` (schema-checked).

    The optional ``"telemetry"`` sub-payload is *not* consumed here (a
    :class:`~repro.core.problem.Solution` has no telemetry field); decode
    it with :meth:`repro.strategies.SolveTelemetry.from_dict` if needed.
    """
    schema = payload.get("schema", None)
    if schema != SCHEMA_VERSION:
        raise SerializationError(
            f"unsupported schema version {schema!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    values_raw = _require(payload, "values")
    values = CriteriaValues(
        periods={int(k): float(v) for k, v in values_raw.get("periods", {}).items()},
        latencies={
            int(k): float(v) for k, v in values_raw.get("latencies", {}).items()
        },
        period=float(_require(values_raw, "period")),
        latency=float(_require(values_raw, "latency")),
        energy=float(_require(values_raw, "energy")),
    )
    return Solution(
        mapping=mapping_from_dict(_require(payload, "mapping")),
        objective=float(_require(payload, "objective")),
        values=values,
        solver=payload.get("solver", ""),
        optimal=bool(payload.get("optimal", False)),
        stats=dict(payload.get("stats", {})),
    )


def save_problem(
    problem: ProblemInstance, path: Union[str, Path]
) -> None:
    """Write a problem instance to a JSON file."""
    Path(path).write_text(
        json.dumps(problem_to_dict(problem), indent=2, sort_keys=True)
    )


def load_problem(path: Union[str, Path]) -> ProblemInstance:
    """Read a problem instance from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return problem_from_dict(payload)
