"""repro -- reproduction of "Performance and energy optimization of
concurrent pipelined applications" (Benoit, Renaud-Goud, Robert, IPDPS 2010).

The library models concurrent linear pipelined applications mapped onto
multi-modal (DVFS) processor platforms, implements every polynomial algorithm
of the paper, exact and heuristic solvers for the NP-hard problem variants,
the NP-hardness reductions themselves, and a discrete-event simulator
validating the analytic period/latency cost model.

Quickstart::

    from repro import (
        Application, Platform, ProblemInstance,
        MappingRule, CommunicationModel,
    )
    from repro.algorithms import minimize_period

    apps = [Application.from_lists([3, 2, 1], [3, 2, 0], input_data_size=1)]
    platform = Platform.fully_homogeneous(4, speeds=[1.0, 2.0])
    problem = ProblemInstance(apps=tuple(apps), platform=platform)
    solution = minimize_period(problem)
    print(solution.objective, solution.mapping)
"""

from .core import (
    Application,
    Assignment,
    CommunicationModel,
    CriteriaValues,
    Criterion,
    EnergyModel,
    InfeasibleProblemError,
    InvalidApplicationError,
    InvalidMappingError,
    InvalidPlatformError,
    Mapping,
    MappingRule,
    Platform,
    PlatformClass,
    ProblemInstance,
    Processor,
    ReproError,
    Solution,
    SolverError,
    Stage,
    Thresholds,
    evaluate,
    evaluate_scalar,
    global_latency,
    global_period,
    platform_energy,
)
from .kernel import EvaluationContext


def _resolve_version() -> str:
    """The installed distribution's version (single-sourced from
    ``pyproject.toml`` via package metadata), with a fallback for
    source-tree runs (``PYTHONPATH=src``) where the distribution is not
    installed."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro-pipelines")
    except PackageNotFoundError:
        return "1.0.0+src"


__version__ = _resolve_version()

__all__ = [
    "Application",
    "Assignment",
    "CommunicationModel",
    "CriteriaValues",
    "Criterion",
    "EnergyModel",
    "EvaluationContext",
    "InfeasibleProblemError",
    "InvalidApplicationError",
    "InvalidMappingError",
    "InvalidPlatformError",
    "Mapping",
    "MappingRule",
    "Platform",
    "PlatformClass",
    "ProblemInstance",
    "Processor",
    "ReproError",
    "Solution",
    "SolverError",
    "Stage",
    "Thresholds",
    "__version__",
    "evaluate",
    "evaluate_scalar",
    "global_latency",
    "global_period",
    "platform_energy",
]
