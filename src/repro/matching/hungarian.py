"""Hungarian algorithm (Kuhn-Munkres) with potentials, rectangular variant.

Solves the minimum-cost assignment problem: given an ``n x m`` cost matrix
with ``n <= m``, match every row to a distinct column minimizing the total
cost.  Runs in ``O(n^2 m)`` using the shortest-augmenting-path formulation
with dual potentials (the classic "e-maxx" scheme).

Forbidden pairs are encoded as ``math.inf`` entries; the solver detects
infeasibility (some row cannot be matched to any allowed column, directly or
through augmenting chains) and returns ``None``.

This is the matching black box of Theorem 19 (period/energy minimization for
one-to-one mappings).  The paper cites Hopcroft-Karp's ``O(sqrt(V) E)``
bound for the unweighted phase; any polynomial matching algorithm preserves
the theorem, and the Hungarian algorithm additionally handles the weighted
objective directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class AssignmentResult:
    """A minimum-cost assignment.

    ``row_to_col[i]`` is the column matched to row ``i``; ``total_cost`` the
    sum of the selected entries.
    """

    row_to_col: Tuple[int, ...]
    total_cost: float


def solve_assignment(
    cost: Sequence[Sequence[float]],
) -> Optional[AssignmentResult]:
    """Minimum-cost perfect matching of all rows to distinct columns.

    Parameters
    ----------
    cost:
        ``n x m`` matrix (``n <= m``) of non-negative costs;
        ``math.inf`` marks forbidden pairs.

    Returns
    -------
    AssignmentResult or None
        ``None`` when no feasible perfect matching of the rows exists.
    """
    n = len(cost)
    if n == 0:
        return AssignmentResult(row_to_col=(), total_cost=0.0)
    m = len(cost[0])
    if any(len(row) != m for row in cost):
        raise ValueError("cost matrix must be rectangular")
    if n > m:
        raise ValueError(
            f"need at least as many columns as rows (n={n}, m={m})"
        )

    INF = math.inf
    # 1-based arrays; p[j] = row currently matched to column j (0 = none).
    u = [0.0] * (n + 1)
    v = [0.0] * (m + 1)
    p = [0] * (m + 1)
    way = [0] * (m + 1)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [INF] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = INF
            j1 = -1
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            if not math.isfinite(delta):
                # Every reachable column is forbidden: no perfect matching.
                return None
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    row_to_col = [-1] * n
    for j in range(1, m + 1):
        if p[j] != 0:
            row_to_col[p[j] - 1] = j - 1
    total = 0.0
    for i, j in enumerate(row_to_col):
        entry = cost[i][j]
        if not math.isfinite(entry):  # pragma: no cover - guarded above
            return None
        total += entry
    return AssignmentResult(row_to_col=tuple(row_to_col), total_cost=total)


def brute_force_assignment(
    cost: Sequence[Sequence[float]],
) -> Optional[AssignmentResult]:
    """Reference exponential solver used to validate the Hungarian
    implementation on small matrices (test-suite helper)."""
    import itertools

    n = len(cost)
    if n == 0:
        return AssignmentResult(row_to_col=(), total_cost=0.0)
    m = len(cost[0])
    best: Optional[Tuple[float, Tuple[int, ...]]] = None
    for cols in itertools.permutations(range(m), n):
        total = 0.0
        ok = True
        for i, j in enumerate(cols):
            if not math.isfinite(cost[i][j]):
                ok = False
                break
            total += cost[i][j]
        if ok and (best is None or total < best[0]):
            best = (total, cols)
    if best is None:
        return None
    return AssignmentResult(row_to_col=best[1], total_cost=best[0])
