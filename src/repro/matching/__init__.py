"""Minimum-cost bipartite matching substrate.

Theorem 19 reduces period/energy one-to-one mapping to a minimum weighted
bipartite matching between stages and processors.  The paper invokes a
matching algorithm as a black box; this package provides a from-scratch
implementation (:func:`repro.matching.hungarian.solve_assignment`) used by
:mod:`repro.algorithms.energy_matching` and cross-validated against
``scipy.optimize.linear_sum_assignment`` in the test suite.
"""

from .hungarian import AssignmentResult, solve_assignment

__all__ = ["AssignmentResult", "solve_assignment"]
