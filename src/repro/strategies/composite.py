"""Composite strategies and the strategy-spec mini-language.

Two combinators turn atomic strategies into pipelines:

* :func:`portfolio` — *race* its members on the same instance and keep
  the best-objective feasible solution.  The budget is split across
  members (member ``i`` of ``n`` gets ``remaining / (n - i)`` of the
  wall-clock and evaluation budget, so early finishers donate their
  leftovers to later members); with ``workers > 1`` the members race
  concurrently over a process pool, each getting the full wall-clock.
* :func:`fallback` — *chain* its members: each gets the full remaining
  budget, and the first feasible solution wins.

Both are expressible as spec strings — ``portfolio(greedy,annealing)``,
``fallback(auto,portfolio(local_search,annealing))`` — accepted
everywhere a strategy name is: :func:`repro.service.solve_one` /
``solve_batch``, campaign solver entries and the CLI.
:func:`parse_strategy` is the single parser behind them all.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

from ..core.objectives import Thresholds
from ..core.problem import ProblemInstance, Solution
from .base import (
    Capabilities,
    OBJECTIVES,
    SolverStrategy,
    StrategyError,
    StrategyResult,
)
from .budget import BudgetMeter, SolveBudget
from .registry import get_strategy
from .telemetry import SolveTelemetry

__all__ = [
    "FallbackStrategy",
    "PortfolioStrategy",
    "fallback",
    "parse_strategy",
    "portfolio",
]

#: Tolerance applied when checking a candidate solution against thresholds.
_FEASIBILITY_RTOL = 1e-9


def _is_feasible(solution: Solution, thresholds: Optional[Thresholds]) -> bool:
    """Whether a returned solution actually satisfies the thresholds
    (heuristics may return their penalized best even when it violates)."""
    if thresholds is None:
        return True
    values = solution.values
    if not values.meets(
        period=thresholds.period,
        latency=thresholds.latency,
        energy=thresholds.energy,
        rtol=_FEASIBILITY_RTOL,
    ):
        return False
    if thresholds.per_app_period is not None and any(
        values.periods[a] > thresholds.per_app_period[a] * (1 + _FEASIBILITY_RTOL)
        for a in values.periods
    ):
        return False
    if thresholds.per_app_latency is not None and any(
        values.latencies[a] > thresholds.per_app_latency[a] * (1 + _FEASIBILITY_RTOL)
        for a in values.latencies
    ):
        return False
    return True


def _union_capabilities(members: Sequence[SolverStrategy]) -> Capabilities:
    """A composite supports whatever some member supports; capability
    misses of individual members are contained per-member at run time."""
    objectives = tuple(
        o
        for o in OBJECTIVES
        if any(o in m.capabilities.objectives for m in members)
    )
    return Capabilities(
        objectives=objectives,
        rules=None,
        cells=None,
        needs_thresholds=all(m.capabilities.needs_thresholds for m in members),
        deterministic=all(m.capabilities.deterministic for m in members),
        kind="composite",
    )


def _member_budget(
    meter: BudgetMeter, share: int, seed_offset: int
) -> SolveBudget:
    """The budget slice for the next member: an equal share of whatever
    remains (``share`` = number of members still to run).

    ``seed_offset`` diversifies *duplicate* members: distinct algorithms
    keep the base seed (so a member's stochastic trajectory is a
    budget-prefix of its standalone run), while the k-th copy of the
    same member draws from ``seed + k``.
    """
    t_rem = meter.remaining_time()
    e_rem = meter.remaining_evaluations()
    return SolveBudget(
        time_limit=None if t_rem is None else max(t_rem / share, 1e-6),
        max_evaluations=None if e_rem is None else max(e_rem // share, 1),
        seed=None if meter.seed is None else meter.seed + seed_offset,
    )


def _seed_offsets(members: Sequence[SolverStrategy]) -> List[int]:
    """Per-member seed offsets: 0 for the first occurrence of each spec,
    1 for its second copy, and so on."""
    counts: dict = {}
    offsets = []
    for member in members:
        offsets.append(counts.get(member.spec, 0))
        counts[member.spec] = offsets[-1] + 1
    return offsets


def _race_job(args) -> StrategyResult:
    """Process-pool job: run one portfolio member (module-level so the
    pool can pickle it)."""
    member, problem, objective, thresholds, budget = args
    return member.run(problem, objective, thresholds, budget=budget)


class _CompositeStrategy(SolverStrategy):
    """Shared machinery of portfolio and fallback."""

    def __init__(self, members: Sequence[SolverStrategy]) -> None:
        if not members:
            raise StrategyError(f"{self.name}() needs at least one member")
        self.members: Tuple[SolverStrategy, ...] = tuple(members)
        self.capabilities = _union_capabilities(self.members)

    @property
    def spec(self) -> str:
        return f"{self.name}({','.join(m.spec for m in self.members)})"

    def solve(self, problem, objective, thresholds, meter):
        # Composites orchestrate through run(); solve() exists for API
        # completeness (e.g. a composite used as a member's member).
        return self.run(
            problem, objective, thresholds, meter=meter
        ).raise_for_status()

    def _finish(
        self,
        t0: float,
        meter: BudgetMeter,
        evals0: int,
        results: List[StrategyResult],
        winner: Optional[StrategyResult],
    ) -> StrategyResult:
        members = tuple(r.telemetry for r in results)
        if winner is not None:
            status, error = "ok", None
        elif any(r.status == "infeasible" for r in results):
            status = "infeasible"
            error = next(
                r.telemetry.error
                for r in results
                if r.status == "infeasible"
            )
        else:
            status = "error"
            error = "; ".join(
                f"{r.telemetry.strategy}: {r.telemetry.error}" for r in results
            ) or f"{self.name}: no member produced a solution"
        solution = None if winner is None else winner.solution
        return StrategyResult(
            solution=solution,
            telemetry=SolveTelemetry(
                strategy=self.spec,
                status=status,
                wall_time=time.perf_counter() - t0,
                evaluations=meter.n_evaluations - evals0,
                budget_exhausted=meter.exhausted,
                objective=None if solution is None else solution.objective,
                error=error,
                members=members,
                values=(
                    None
                    if solution is None
                    else (
                        solution.values.period,
                        solution.values.latency,
                        solution.values.energy,
                    )
                ),
            ),
        )


class PortfolioStrategy(_CompositeStrategy):
    """Race members on the same instance; keep the best feasible one.

    Parameters
    ----------
    members:
        The strategies to race.
    workers:
        ``None``/``<=1`` races sequentially inside the calling worker
        (each member gets an equal share of the remaining budget);
        ``n >= 2`` races members concurrently over a process pool, each
        with the full wall-clock budget.  Keep the sequential default
        when the portfolio itself runs inside a
        :func:`repro.service.solve_batch` worker pool.
    """

    name = "portfolio"
    summary = "race members, keep the best-objective feasible solution"

    def __init__(
        self,
        members: Sequence[SolverStrategy],
        *,
        workers: Optional[int] = None,
    ) -> None:
        super().__init__(members)
        self.workers = workers

    def run(
        self,
        problem: ProblemInstance,
        objective: str = "period",
        thresholds: Optional[Thresholds] = None,
        budget: Optional[SolveBudget] = None,
        meter: Optional[BudgetMeter] = None,
    ) -> StrategyResult:
        if meter is None:
            meter = BudgetMeter(budget)
        t0 = time.perf_counter()
        evals0 = meter.n_evaluations
        n = len(self.members)
        offsets = _seed_offsets(self.members)
        results: List[StrategyResult] = []
        if self.workers is not None and self.workers > 1 and n > 1:
            e_rem = meter.remaining_evaluations()
            jobs = [
                (
                    member,
                    problem,
                    objective,
                    thresholds,
                    SolveBudget(
                        time_limit=meter.remaining_time(),
                        max_evaluations=(
                            None if e_rem is None else max(e_rem // n, 1)
                        ),
                        seed=(
                            None
                            if meter.seed is None
                            else meter.seed + offsets[i]
                        ),
                    ),
                )
                for i, member in enumerate(self.members)
            ]
            with ProcessPoolExecutor(max_workers=min(self.workers, n)) as pool:
                results = list(pool.map(_race_job, jobs))
            meter.charge(sum(r.telemetry.evaluations for r in results))
        else:
            for i, member in enumerate(self.members):
                if meter.exhausted:
                    break  # a member overran its slice; stop launching
                results.append(
                    member.run(
                        problem,
                        objective,
                        thresholds,
                        budget=_member_budget(meter, n - i, offsets[i]),
                    )
                )
                meter.charge(results[-1].telemetry.evaluations)
        winner: Optional[StrategyResult] = None
        for res in results:
            if res.solution is None or not _is_feasible(
                res.solution, thresholds
            ):
                continue
            if winner is None or res.solution.objective < winner.solution.objective:
                winner = res
        return self._finish(t0, meter, evals0, results, winner)


class FallbackStrategy(_CompositeStrategy):
    """Chain members: the first feasible solution wins.

    Each member gets the full remaining budget; later members only run
    when every earlier one failed (errored, proved infeasible, or
    returned a threshold-violating solution).
    """

    name = "fallback"
    summary = "try members in order, first feasible solution wins"

    def run(
        self,
        problem: ProblemInstance,
        objective: str = "period",
        thresholds: Optional[Thresholds] = None,
        budget: Optional[SolveBudget] = None,
        meter: Optional[BudgetMeter] = None,
    ) -> StrategyResult:
        if meter is None:
            meter = BudgetMeter(budget)
        t0 = time.perf_counter()
        evals0 = meter.n_evaluations
        results: List[StrategyResult] = []
        winner: Optional[StrategyResult] = None
        offsets = _seed_offsets(self.members)
        for i, member in enumerate(self.members):
            res = member.run(
                problem,
                objective,
                thresholds,
                budget=_member_budget(meter, 1, offsets[i]),
            )
            meter.charge(res.telemetry.evaluations)
            results.append(res)
            if res.solution is not None and _is_feasible(
                res.solution, thresholds
            ):
                winner = res
                break
            if meter.exhausted:
                break
        return self._finish(t0, meter, evals0, results, winner)


def portfolio(
    *members: Union[str, SolverStrategy], workers: Optional[int] = None
) -> PortfolioStrategy:
    """Build a :class:`PortfolioStrategy` from names or instances."""
    return PortfolioStrategy(
        [parse_strategy(m) for m in members], workers=workers
    )


def fallback(*members: Union[str, SolverStrategy]) -> FallbackStrategy:
    """Build a :class:`FallbackStrategy` from names or instances."""
    return FallbackStrategy([parse_strategy(m) for m in members])


# ----------------------------------------------------------------------
# Spec parsing: NAME | ('portfolio'|'fallback') '(' spec (',' spec)* ')'
_COMPOSITES = {"portfolio": PortfolioStrategy, "fallback": FallbackStrategy}


def parse_strategy(spec: Union[str, SolverStrategy]) -> SolverStrategy:
    """Resolve a strategy spec into a strategy instance.

    Parameters
    ----------
    spec:
        A :class:`SolverStrategy` (returned as-is), a registered name
        (``"annealing"``) or a composite expression with arbitrary
        nesting (``"fallback(auto,portfolio(greedy,annealing))"``).
        Whitespace around names and commas is ignored.

    Raises
    ------
    StrategyError
        On an unknown name or a malformed expression; the message
        points at the offending position.
    """
    if isinstance(spec, SolverStrategy):
        return spec
    if not isinstance(spec, str):
        raise StrategyError(
            f"strategy spec must be a name, a spec string or a "
            f"SolverStrategy, got {type(spec).__name__}"
        )
    strategy, pos = _parse_expr(spec, 0)
    pos = _skip_ws(spec, pos)
    if pos != len(spec):
        raise StrategyError(
            f"trailing characters at position {pos} in strategy spec {spec!r}"
        )
    return strategy


def _skip_ws(text: str, pos: int) -> int:
    while pos < len(text) and text[pos].isspace():
        pos += 1
    return pos


def _parse_expr(text: str, pos: int) -> Tuple[SolverStrategy, int]:
    pos = _skip_ws(text, pos)
    start = pos
    while pos < len(text) and (text[pos].isalnum() or text[pos] == "_"):
        pos += 1
    name = text[start:pos]
    if not name:
        raise StrategyError(
            f"expected a strategy name at position {start} in {text!r}"
        )
    pos = _skip_ws(text, pos)
    if pos < len(text) and text[pos] == "(":
        if name not in _COMPOSITES:
            raise StrategyError(
                f"{name!r} is not a composite; only "
                f"{sorted(_COMPOSITES)} take members (in {text!r})"
            )
        members: List[SolverStrategy] = []
        pos += 1
        while True:
            member, pos = _parse_expr(text, pos)
            members.append(member)
            pos = _skip_ws(text, pos)
            if pos >= len(text):
                raise StrategyError(f"unclosed '(' in strategy spec {text!r}")
            if text[pos] == ",":
                pos += 1
                continue
            if text[pos] == ")":
                return _COMPOSITES[name](members), pos + 1
            raise StrategyError(
                f"expected ',' or ')' at position {pos} in {text!r}"
            )
    return get_strategy(name), pos
