"""The :class:`SolverStrategy` protocol and its execution harness.

A *strategy* is a named, introspectable solve pipeline: it declares
what it can handle (:class:`Capabilities`) and implements
:meth:`SolverStrategy.solve`.  The shared :meth:`SolverStrategy.run`
harness adds everything around the solve that every caller needs —
capability pre-checks, budget metering, failure containment and
:class:`~repro.strategies.telemetry.SolveTelemetry` — so concrete
strategies stay a few lines each.  Composite strategies
(:mod:`repro.strategies.composite`) override :meth:`run` wholesale to
orchestrate their members.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from ..core.exceptions import InfeasibleProblemError, ReproError
from ..core.objectives import Thresholds
from ..core.problem import ProblemInstance, Solution
from ..core.types import Criterion, MappingRule
from .budget import BudgetMeter, SolveBudget
from .telemetry import SolveTelemetry

__all__ = [
    "Capabilities",
    "FunctionStrategy",
    "SolverStrategy",
    "StrategyError",
    "StrategyResult",
]

#: Objectives a strategy may declare.
OBJECTIVES = ("period", "latency", "energy")


class StrategyError(ReproError):
    """A strategy was requested outside its declared capabilities, or a
    strategy spec could not be resolved."""


@dataclass(frozen=True)
class Capabilities:
    """What a strategy declares it can handle.

    ``rules``/``cells`` of ``None`` mean "any"; ``cells`` entries are
    :class:`repro.algorithms.registry.PlatformCell` values (stored as
    their string values to keep the dataclass JSON-friendly).
    """

    objectives: Tuple[str, ...] = OBJECTIVES
    rules: Optional[Tuple[MappingRule, ...]] = None
    cells: Optional[Tuple[str, ...]] = None
    needs_thresholds: bool = False
    deterministic: bool = True
    kind: str = "heuristic"

    def why_unsupported(
        self,
        problem: ProblemInstance,
        objective: str,
        thresholds: Optional[Thresholds],
    ) -> Optional[str]:
        """The reason this request is outside the declared capabilities
        (``None`` when it is supported)."""
        if objective not in self.objectives:
            return (
                f"objective {objective!r} not supported "
                f"(supports {list(self.objectives)})"
            )
        if self.rules is not None and problem.rule not in self.rules:
            return (
                f"mapping rule {problem.rule.value!r} not supported "
                f"(supports {[r.value for r in self.rules]})"
            )
        if self.cells is not None:
            from ..algorithms.registry import classify_platform_cell

            cell = classify_platform_cell(problem).value
            if cell not in self.cells:
                return (
                    f"platform cell {cell!r} not supported "
                    f"(supports {list(self.cells)})"
                )
        if self.needs_thresholds and (
            thresholds is None or not thresholds.constrains(Criterion.PERIOD)
        ):
            return "requires a period threshold (the paper's 'server problem')"
        return None


@dataclass(frozen=True)
class StrategyResult:
    """Outcome of one :meth:`SolverStrategy.run` call: the solution when
    one was found, plus the full telemetry either way."""

    solution: Optional[Solution]
    telemetry: SolveTelemetry

    @property
    def ok(self) -> bool:
        """True when a solution was produced."""
        return self.solution is not None

    @property
    def status(self) -> str:
        """The run status (mirrors ``telemetry.status``)."""
        return self.telemetry.status

    def raise_for_status(self) -> Solution:
        """The solution, or the failure re-raised as the canonical
        exception (:class:`InfeasibleProblemError` for infeasible cells,
        :class:`StrategyError` otherwise)."""
        if self.solution is not None:
            return self.solution
        message = self.telemetry.error or self.telemetry.status
        if self.telemetry.status == "infeasible":
            raise InfeasibleProblemError(message)
        raise StrategyError(
            f"strategy {self.telemetry.strategy!r} failed: {message}"
        )


class SolverStrategy(abc.ABC):
    """A named solve pipeline with declared capabilities.

    Concrete strategies implement :meth:`solve`; callers go through
    :meth:`run`, which wraps the solve in capability checks, budget
    metering, failure containment and telemetry.
    """

    name: str
    capabilities: Capabilities
    summary: str = ""

    @property
    def spec(self) -> str:
        """The parseable spec string that reconstructs this strategy
        (:func:`repro.strategies.parse_strategy` round-trips it)."""
        return self.name

    @abc.abstractmethod
    def solve(
        self,
        problem: ProblemInstance,
        objective: str,
        thresholds: Optional[Thresholds],
        meter: BudgetMeter,
    ) -> Solution:
        """Solve one instance; raise on failure.  ``meter`` is always a
        live :class:`BudgetMeter` (unlimited when no budget was set)."""

    def run(
        self,
        problem: ProblemInstance,
        objective: str = "period",
        thresholds: Optional[Thresholds] = None,
        budget: Optional[SolveBudget] = None,
        meter: Optional[BudgetMeter] = None,
    ) -> StrategyResult:
        """Execute the strategy with containment and telemetry.

        Parameters
        ----------
        problem / objective / thresholds:
            The solve request.
        budget:
            Declarative budget; a fresh meter is started from it.
        meter:
            A running meter to share instead (composites pass slices of
            their own budget this way); wins over ``budget``.

        Returns
        -------
        StrategyResult
            Never raises on solver failure: infeasibility and errors
            come back as the telemetry's ``status``.
        """
        if meter is None:
            meter = BudgetMeter(budget)
        t0 = time.perf_counter()
        evals0 = meter.n_evaluations
        solution: Optional[Solution] = None
        status = "ok"
        error: Optional[str] = None
        reason = self.capabilities.why_unsupported(problem, objective, thresholds)
        if reason is not None:
            status, error = "error", f"strategy {self.name!r}: {reason}"
        else:
            try:
                solution = self.solve(problem, objective, thresholds, meter)
            except InfeasibleProblemError as exc:
                status, error = "infeasible", str(exc)
            except Exception as exc:  # contained: reported via telemetry
                status, error = "error", f"{type(exc).__name__}: {exc}"
        return StrategyResult(
            solution=solution,
            telemetry=SolveTelemetry(
                strategy=self.spec,
                status=status,
                wall_time=time.perf_counter() - t0,
                evaluations=meter.n_evaluations - evals0,
                budget_exhausted=meter.exhausted,
                objective=None if solution is None else solution.objective,
                error=error,
                values=(
                    None
                    if solution is None
                    else (
                        solution.values.period,
                        solution.values.latency,
                        solution.values.energy,
                    )
                ),
            ),
        )

    def describe(self) -> dict:
        """Introspection record used by ``repro-pipelines strategies
        list`` and the docs registry table."""
        caps = self.capabilities
        return {
            "name": self.name,
            "kind": caps.kind,
            "objectives": list(caps.objectives),
            "rules": None if caps.rules is None else [r.value for r in caps.rules],
            "cells": None if caps.cells is None else list(caps.cells),
            "needs_thresholds": caps.needs_thresholds,
            "deterministic": caps.deterministic,
            "summary": self.summary,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.spec!r}>"


@dataclass(frozen=True, repr=False)
class FunctionStrategy(SolverStrategy):
    """A strategy defined by a plain solve function — what the
    :func:`repro.strategies.registry.strategy` decorator produces."""

    name: str
    fn: Callable[
        [ProblemInstance, str, Optional[Thresholds], BudgetMeter], Solution
    ]
    capabilities: Capabilities = field(default_factory=Capabilities)
    summary: str = ""

    def solve(
        self,
        problem: ProblemInstance,
        objective: str,
        thresholds: Optional[Thresholds],
        meter: BudgetMeter,
    ) -> Solution:
        return self.fn(problem, objective, thresholds, meter)
