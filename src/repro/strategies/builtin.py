"""The built-in strategy registry: every existing solve path, named.

Three groups:

* **dispatch aliases** (``registry``, ``auto``, ``exact``,
  ``heuristic``) — the historical ``method=`` strings of
  :func:`repro.service.solve_one`, now introspectable strategies.  They
  share :func:`solve_via_method`, the verbatim old dispatch logic, so
  ``method="heuristic"`` and ``strategy="heuristic"`` are byte-identical.
* **polynomial theorem solvers** (``period_one_to_one``,
  ``period_interval_dp``, ``latency_one_to_one``, ``latency_interval``,
  ``energy_matching``, ``energy_interval_dp``) — the paper's algorithms
  for the polynomial cells of Tables 1-2, each declaring the exact
  (objective, rule, platform-cell) domain the registry prescribes.
* **building blocks for the NP-hard cells** (``greedy``,
  ``local_search``, ``annealing``, ``mode_scaling``, ``brute_force``) —
  the atomic heuristics/exact searches that composite specs like
  ``portfolio(greedy,local_search,annealing)`` race under a budget.

All stochastic members draw from ``numpy.random.default_rng`` seeded by
the budget (:attr:`SolveBudget.seed <repro.strategies.SolveBudget.seed>`),
so identical budgets reproduce identical results.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.objectives import Thresholds
from ..core.problem import ProblemInstance, Solution
from ..core.types import Criterion, MappingRule
from .base import Capabilities
from .budget import BudgetMeter
from .registry import strategy

__all__ = ["dispatch_method", "solve_via_method"]

#: The platform cells (string values of
#: :class:`repro.algorithms.registry.PlatformCell`) where each theorem
#: solver is polynomial — mirrors Tables 1-2.
_UP_TO_COM_HOM: Tuple[str, ...] = ("proc-hom", "special-app", "proc-het com-hom")
_PROC_HOM: Tuple[str, ...] = ("proc-hom",)

#: Annealing iteration count when no budget bounds the run (the
#: historical default); a bounded budget lifts the cap and lets the
#: meter stop the loop instead.
_ANNEAL_DEFAULT_ITERATIONS = 2000
_ANNEAL_UNCAPPED_ITERATIONS = 1_000_000_000


def dispatch_method(problem: ProblemInstance, objective: str) -> str:
    """The concrete method the complexity registry prescribes.

    Parameters
    ----------
    problem:
        The instance whose Table 1/2 cell is classified.
    objective:
        ``"period"``, ``"latency"`` or ``"energy"``.  The energy
        objective is period-constrained (Theorems 18-21), so its cell is
        looked up with both criteria.

    Returns
    -------
    str
        ``"auto"`` when the cell is polynomial for the given objective
        (the paper's algorithm applies), otherwise ``"heuristic"``.
    """
    from ..algorithms.registry import (
        Complexity,
        classify_platform_cell,
        lookup,
    )

    criteria: Tuple[Criterion, ...]
    if objective == "energy":
        criteria = (Criterion.PERIOD, Criterion.ENERGY)
    else:
        criteria = (Criterion(objective),)
    try:
        entry = lookup(criteria, problem.rule, classify_platform_cell(problem))
    except KeyError:
        return "heuristic"
    if entry.complexity is Complexity.POLYNOMIAL and entry.solver:
        return "auto"
    return "heuristic"


def _solve_energy(
    problem: ProblemInstance,
    method: str,
    thresholds: Thresholds,
    meter: Optional[BudgetMeter] = None,
) -> Solution:
    """Energy minimization under a period bound, per the registry cell."""
    from .. import algorithms

    if method == "exact":
        return algorithms.exact.exact_minimize(
            problem, Criterion.ENERGY, thresholds, budget=meter
        )
    if method == "heuristic":
        start = (
            algorithms.heuristics.greedy_one_to_one_period(problem)
            if problem.rule is MappingRule.ONE_TO_ONE
            else algorithms.heuristics.greedy_interval_period(
                problem, budget=meter
            )
        )
        return algorithms.heuristics.greedy_mode_downgrade(
            problem, start.mapping, thresholds, budget=meter
        )
    if problem.rule is MappingRule.ONE_TO_ONE:
        return algorithms.minimize_energy_given_period_one_to_one(
            problem, thresholds
        )
    return algorithms.minimize_energy_given_period_interval(
        problem, thresholds
    )


def solve_via_method(
    problem: ProblemInstance,
    objective: str,
    method: str,
    thresholds: Optional[Thresholds] = None,
    meter: Optional[BudgetMeter] = None,
) -> Solution:
    """The historical ``method=`` dispatch of :func:`repro.service.solve_one`.

    ``meter=None`` reproduces the pre-strategy behavior exactly; a live
    meter threads the budget down into the heuristic/exact loops.
    """
    from .. import algorithms

    if method == "registry":
        method = dispatch_method(problem, objective)
    if objective == "energy":
        if thresholds is None or not thresholds.constrains(Criterion.PERIOD):
            raise ValueError(
                "the energy objective requires a period threshold "
                "(the paper's 'server problem', Theorems 18-21)"
            )
        return _solve_energy(problem, method, thresholds, meter)
    fn = (
        algorithms.minimize_period
        if objective == "period"
        else algorithms.minimize_latency
    )
    return fn(problem, method=method, budget=meter)


def _greedy_start(
    problem: ProblemInstance, meter: Optional[BudgetMeter] = None
) -> Solution:
    """The constructive greedy used as the common metaheuristic start."""
    from .. import algorithms

    if problem.rule is MappingRule.ONE_TO_ONE:
        return algorithms.heuristics.greedy_one_to_one_period(problem)
    return algorithms.heuristics.greedy_interval_period(problem, budget=meter)


def _with_objective(solution: Solution, objective: str) -> Solution:
    """Re-key a solution on the requested objective value."""
    value = getattr(solution.values, objective)
    if value == solution.objective:
        return solution
    from dataclasses import replace

    return replace(solution, objective=value)


# ----------------------------------------------------------------------
# Dispatch aliases (the historical ``method=`` strings).


@strategy(
    "registry",
    capabilities=Capabilities(kind="dispatch"),
    summary="Tables 1-2 dispatch: polynomial solver when the cell allows, "
    "heuristic otherwise",
)
def _registry(problem, objective, thresholds, meter):
    return solve_via_method(problem, objective, "registry", thresholds, meter)


@strategy(
    "auto",
    capabilities=Capabilities(kind="polynomial"),
    summary="the paper's polynomial algorithm for the instance's cell "
    "(errors outside the polynomial cells)",
)
def _auto(problem, objective, thresholds, meter):
    return solve_via_method(problem, objective, "auto", thresholds, meter)


@strategy(
    "exact",
    capabilities=Capabilities(kind="exact"),
    summary="branch-and-bound with monotone pruning; optimal, "
    "budget-interruptible",
)
def _exact(problem, objective, thresholds, meter):
    return solve_via_method(problem, objective, "exact", thresholds, meter)


@strategy(
    "heuristic",
    capabilities=Capabilities(kind="heuristic"),
    summary="greedy start + hill climbing (mode downgrading for energy)",
)
def _heuristic(problem, objective, thresholds, meter):
    return solve_via_method(problem, objective, "heuristic", thresholds, meter)


# ----------------------------------------------------------------------
# Polynomial theorem solvers.


@strategy(
    "period_one_to_one",
    capabilities=Capabilities(
        objectives=("period",),
        rules=(MappingRule.ONE_TO_ONE,),
        cells=_UP_TO_COM_HOM,
        kind="polynomial",
    ),
    summary="Theorem 1: binary search + greedy assignment",
)
def _period_one_to_one(problem, objective, thresholds, meter):
    from .. import algorithms

    return algorithms.minimize_period_one_to_one(problem)


@strategy(
    "period_interval_dp",
    capabilities=Capabilities(
        objectives=("period",),
        rules=(MappingRule.INTERVAL,),
        cells=_PROC_HOM,
        kind="polynomial",
    ),
    summary="Theorem 3: dynamic programming + greedy processor allocation",
)
def _period_interval_dp(problem, objective, thresholds, meter):
    from .. import algorithms

    return algorithms.minimize_period_interval(problem)


@strategy(
    "latency_one_to_one",
    capabilities=Capabilities(
        objectives=("latency",),
        rules=(MappingRule.ONE_TO_ONE,),
        cells=_PROC_HOM,
        kind="polynomial",
    ),
    summary="Theorem 8: fully homogeneous one-to-one latency",
)
def _latency_one_to_one(problem, objective, thresholds, meter):
    from .. import algorithms

    return algorithms.minimize_latency_one_to_one_fully_hom(problem)


@strategy(
    "latency_interval",
    capabilities=Capabilities(
        objectives=("latency",),
        rules=(MappingRule.INTERVAL,),
        cells=_UP_TO_COM_HOM,
        kind="polynomial",
    ),
    summary="Theorem 12: binary search + greedy assignment",
)
def _latency_interval(problem, objective, thresholds, meter):
    from .. import algorithms

    return algorithms.minimize_latency_interval(problem)


@strategy(
    "energy_matching",
    capabilities=Capabilities(
        objectives=("energy",),
        rules=(MappingRule.ONE_TO_ONE,),
        cells=_UP_TO_COM_HOM,
        needs_thresholds=True,
        kind="polynomial",
    ),
    summary="Theorem 19: minimum weighted bipartite matching under a "
    "period bound",
)
def _energy_matching(problem, objective, thresholds, meter):
    from .. import algorithms

    return algorithms.minimize_energy_given_period_one_to_one(
        problem, thresholds
    )


@strategy(
    "energy_interval_dp",
    capabilities=Capabilities(
        objectives=("energy",),
        rules=(MappingRule.INTERVAL,),
        cells=_PROC_HOM,
        needs_thresholds=True,
        kind="polynomial",
    ),
    summary="Theorems 18, 21: energy dynamic programming under a period bound",
)
def _energy_interval_dp(problem, objective, thresholds, meter):
    from .. import algorithms

    return algorithms.minimize_energy_given_period_interval(
        problem, thresholds
    )


# ----------------------------------------------------------------------
# Atomic NP-hard building blocks.


@strategy(
    "brute_force",
    capabilities=Capabilities(kind="exact"),
    summary="exhaustive enumeration (tiny instances only); the reference "
    "oracle",
)
def _brute_force(problem, objective, thresholds, meter):
    from ..algorithms.exact import brute_force_minimize

    return brute_force_minimize(
        problem,
        Criterion(objective),
        thresholds if thresholds is not None else Thresholds(),
        budget=meter,
    )


@strategy(
    "greedy",
    capabilities=Capabilities(objectives=("period", "latency"), kind="heuristic"),
    summary="constructive greedy only (split-the-bottleneck / "
    "list-scheduling), no local search",
)
def _greedy(problem, objective, thresholds, meter):
    return _with_objective(_greedy_start(problem, meter), objective)


@strategy(
    "local_search",
    capabilities=Capabilities(kind="heuristic"),
    summary="greedy start + best-improvement hill climbing over the "
    "mapping neighborhood",
)
def _local_search(problem, objective, thresholds, meter):
    from .. import algorithms

    start = _greedy_start(problem, meter)
    return algorithms.heuristics.hill_climb(
        problem,
        start.mapping,
        Criterion(objective),
        thresholds if thresholds is not None else Thresholds(),
        budget=meter,
    )


@strategy(
    "annealing",
    capabilities=Capabilities(kind="heuristic"),
    summary="greedy start + simulated annealing (Metropolis, geometric "
    "cooling), seeded by the budget",
)
def _annealing(problem, objective, thresholds, meter):
    from .. import algorithms

    start = _greedy_start(problem, meter)
    n_iterations = (
        _ANNEAL_DEFAULT_ITERATIONS
        if meter.budget.is_unlimited
        else _ANNEAL_UNCAPPED_ITERATIONS
    )
    return algorithms.heuristics.anneal(
        problem,
        start.mapping,
        Criterion(objective),
        thresholds if thresholds is not None else Thresholds(),
        seed=meter.seed if meter.seed is not None else 0,
        n_iterations=n_iterations,
        budget=meter,
    )


@strategy(
    "mode_scaling",
    capabilities=Capabilities(
        objectives=("energy",), needs_thresholds=True, kind="heuristic"
    ),
    summary="greedy period start + energy-greedy mode downgrading under "
    "the thresholds",
)
def _mode_scaling(problem, objective, thresholds, meter):
    from .. import algorithms

    start = _greedy_start(problem, meter)
    return algorithms.heuristics.greedy_mode_downgrade(
        problem, start.mapping, thresholds, budget=meter
    )
