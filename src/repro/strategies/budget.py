"""Per-solve budgets and their cooperative enforcement.

A :class:`SolveBudget` is declarative data — a wall-clock deadline, an
evaluation cap and an RNG seed — attached to a solve request (a campaign
solver entry, a CLI flag, a direct :func:`repro.service.solve_one` call).
A :class:`BudgetMeter` is its running counterpart: solvers that support
budgets call :meth:`BudgetMeter.tick` once per candidate evaluation (or
search node) and stop cooperatively when it returns ``False``, keeping
the best solution found so far.

The meter is *duck-typed* on purpose: the algorithm layer
(:mod:`repro.algorithms`) accepts any object with ``tick()`` so it never
has to import this (higher) layer.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

__all__ = ["BudgetMeter", "SolveBudget"]


@dataclass(frozen=True)
class SolveBudget:
    """Declarative per-solve budget.

    Parameters
    ----------
    time_limit:
        Wall-clock limit in seconds (``None`` = unlimited).  Enforced
        cooperatively: solvers check between candidate evaluations, so
        the overshoot is bounded by one candidate evaluation (one
        constructive pass for the greedy starts, which run to
        completion).
    max_evaluations:
        Cap on candidate evaluations / search nodes (``None`` =
        unlimited).
    seed:
        RNG seed threaded into the stochastic heuristics
        (``numpy.random.default_rng``); ``None`` lets each strategy use
        its deterministic default.  Identical budgets on identical
        problems reproduce identical results.
    """

    time_limit: Optional[float] = None
    max_evaluations: Optional[int] = None
    seed: Optional[int] = None

    _KEYS = ("time_limit", "max_evaluations", "seed")

    def __post_init__(self) -> None:
        if self.time_limit is not None:
            if isinstance(self.time_limit, bool) or not isinstance(
                self.time_limit, (int, float)
            ):
                raise ValueError(
                    f"time_limit must be a number, got {self.time_limit!r}"
                )
            if not math.isfinite(self.time_limit) or self.time_limit <= 0:
                raise ValueError(
                    f"time_limit must be positive and finite, got {self.time_limit}"
                )
        if self.max_evaluations is not None:
            if isinstance(self.max_evaluations, bool) or not isinstance(
                self.max_evaluations, int
            ):
                raise ValueError(
                    f"max_evaluations must be an int, got {self.max_evaluations!r}"
                )
            if self.max_evaluations < 1:
                raise ValueError(
                    f"max_evaluations must be >= 1, got {self.max_evaluations}"
                )
        if self.seed is not None and (
            isinstance(self.seed, bool) or not isinstance(self.seed, int)
        ):
            raise ValueError(f"seed must be an int, got {self.seed!r}")

    @property
    def is_unlimited(self) -> bool:
        """True when neither a deadline nor an evaluation cap is set."""
        return self.time_limit is None and self.max_evaluations is None

    def meter(self) -> "BudgetMeter":
        """Start the clock: a fresh :class:`BudgetMeter` for one solve."""
        return BudgetMeter(self)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (unset fields omitted)."""
        return {
            k: getattr(self, k)
            for k in self._KEYS
            if getattr(self, k) is not None
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SolveBudget":
        """Parse a budget mapping, rejecting unknown keys.

        Raises
        ------
        ValueError
            On unknown keys or ill-typed/non-positive values.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(f"budget must be a mapping, got {payload!r}")
        unknown = sorted(set(payload) - set(cls._KEYS))
        if unknown:
            raise ValueError(
                f"unknown budget key(s) {unknown}; allowed: {list(cls._KEYS)}"
            )
        return cls(**dict(payload))


class BudgetMeter:
    """Running enforcement state of one :class:`SolveBudget`.

    Solvers call :meth:`tick` once per candidate evaluation; the first
    call past the deadline or the evaluation cap returns ``False`` and
    the meter stays exhausted from then on.  ``n_evaluations`` is the
    telemetry counter persisted into
    :class:`~repro.strategies.telemetry.SolveTelemetry`.
    """

    __slots__ = ("budget", "n_evaluations", "_deadline", "_exhausted")

    def __init__(self, budget: Optional[SolveBudget] = None) -> None:
        self.budget = budget if budget is not None else SolveBudget()
        self.n_evaluations = 0
        self._deadline = (
            None
            if self.budget.time_limit is None
            else time.perf_counter() + self.budget.time_limit
        )
        self._exhausted = False

    @property
    def seed(self) -> Optional[int]:
        """The budget's RNG seed (convenience passthrough)."""
        return self.budget.seed

    @property
    def exhausted(self) -> bool:
        """True once the deadline or the evaluation cap has been hit."""
        return self._exhausted

    def tick(self, n: int = 1) -> bool:
        """Account for ``n`` candidate evaluations.

        Returns
        -------
        bool
            ``True`` while the budget allows more work, ``False`` once
            exhausted (sticky).  Callers stop *before* the evaluation
            that would exceed the cap.
        """
        if self._exhausted:
            return False
        cap = self.budget.max_evaluations
        if cap is not None and self.n_evaluations + n > cap:
            self._exhausted = True
            return False
        self.n_evaluations += n
        if self._deadline is not None and time.perf_counter() >= self._deadline:
            self._exhausted = True
            return False
        return True

    def reserve(self, n: int) -> int:
        """Claim up to ``n`` candidate evaluations for a batched scan.

        The batch counterpart of ``n`` consecutive :meth:`tick` calls:
        a batch of ``N`` candidates counts as ``N`` evaluations against
        :attr:`SolveBudget.max_evaluations`, truncated to whatever the
        cap still allows.  Returns the granted count (0 when the budget
        is already exhausted); granting *fewer* than requested marks the
        meter exhausted, exactly as the first tick past the cap would.
        Evaluation-cap accounting is therefore *exact* against the
        tick-by-tick path.  The deadline is checked before granting and
        once per batch rather than once per candidate, so under a
        ``time_limit`` the overshoot -- and any divergence from the
        scalar path -- is bounded by one batch.
        """
        if n <= 0 or self._exhausted:
            return 0
        if self._deadline is not None and time.perf_counter() >= self._deadline:
            self._exhausted = True
            return 0
        cap = self.budget.max_evaluations
        granted = n
        if cap is not None:
            granted = min(n, cap - self.n_evaluations)
            if granted < n:
                self._exhausted = True
            if granted <= 0:
                return 0
        self.n_evaluations += granted
        if self._deadline is not None and time.perf_counter() >= self._deadline:
            self._exhausted = True
        return granted

    def charge(self, n: int) -> None:
        """Account for ``n`` evaluations already performed elsewhere (a
        member strategy's own meter); unlike :meth:`tick` the count is
        always credited, and exhaustion is re-derived afterwards."""
        self.n_evaluations += n
        cap = self.budget.max_evaluations
        if cap is not None and self.n_evaluations >= cap:
            self._exhausted = True
        if self._deadline is not None and time.perf_counter() >= self._deadline:
            self._exhausted = True

    def remaining_time(self) -> Optional[float]:
        """Seconds left before the deadline (``None`` = unlimited)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - time.perf_counter())

    def remaining_evaluations(self) -> Optional[int]:
        """Evaluations left under the cap (``None`` = unlimited)."""
        if self.budget.max_evaluations is None:
            return None
        return max(0, self.budget.max_evaluations - self.n_evaluations)
