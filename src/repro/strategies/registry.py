"""Decorator-based strategy registry.

Strategies register under a unique name::

    @strategy(
        "greedy",
        capabilities=Capabilities(objectives=("period", "latency")),
        summary="constructive split-the-bottleneck greedy",
    )
    def _greedy(problem, objective, thresholds, meter):
        ...

and are then addressable everywhere a strategy is accepted: the
service layer (``solve_one(strategy="greedy")``), campaign solver
entries (``strategy: greedy``), composite specs
(``portfolio(greedy,annealing)``) and the CLI
(``repro-pipelines strategies list``).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import Capabilities, FunctionStrategy, SolverStrategy, StrategyError

__all__ = [
    "get_strategy",
    "list_strategies",
    "register",
    "strategy",
    "strategy_names",
]

_REGISTRY: Dict[str, SolverStrategy] = {}

#: Names reserved for the composite constructors of
#: :mod:`repro.strategies.composite`; atomic strategies cannot take them.
_RESERVED = ("portfolio", "fallback")


def register(instance: SolverStrategy) -> SolverStrategy:
    """Register a ready-made strategy instance under its ``name``.

    Raises
    ------
    StrategyError
        On a duplicate or reserved name.
    """
    name = instance.name
    if not name or not name.isidentifier():
        raise StrategyError(
            f"strategy name must be a Python identifier, got {name!r}"
        )
    if name in _RESERVED:
        raise StrategyError(
            f"strategy name {name!r} is reserved for composite specs"
        )
    if name in _REGISTRY:
        raise StrategyError(f"strategy {name!r} is already registered")
    _REGISTRY[name] = instance
    return instance


def strategy(
    name: str,
    *,
    capabilities: Capabilities,
    summary: str = "",
) -> Callable:
    """Decorator: register a solve function as a named strategy.

    The decorated function keeps working as a plain function; the
    registered :class:`~repro.strategies.base.FunctionStrategy` wraps it.
    """

    def decorator(fn: Callable) -> Callable:
        register(
            FunctionStrategy(
                name=name, fn=fn, capabilities=capabilities, summary=summary
            )
        )
        return fn

    return decorator


def get_strategy(name: str) -> SolverStrategy:
    """Look up a registered strategy by name.

    Raises
    ------
    StrategyError
        On an unknown name; the message lists the known ones.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise StrategyError(
            f"unknown strategy {name!r}; known: {strategy_names()} "
            "(or a composite spec like 'portfolio(greedy,annealing)')"
        ) from None


def strategy_names() -> List[str]:
    """All registered strategy names, sorted."""
    return sorted(_REGISTRY)


def list_strategies() -> List[SolverStrategy]:
    """All registered strategies, sorted by name."""
    return [_REGISTRY[name] for name in strategy_names()]
