"""Structured per-solve telemetry.

Every strategy run produces a :class:`SolveTelemetry` record: which
strategy ran, how it ended, how much budget it consumed, and — for the
composite strategies — the outcome of every member.  The record is
JSON-round-trippable so the campaign results cache persists it and the
analysis layer (:func:`repro.analysis.campaigns.strategy_telemetry_table`)
aggregates it without re-solving anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = ["SolveTelemetry"]


@dataclass(frozen=True)
class SolveTelemetry:
    """Outcome record of one strategy run.

    Parameters
    ----------
    strategy:
        The strategy spec that ran (``"annealing"``,
        ``"portfolio(greedy,local_search)"``, or the ``method`` alias on
        the legacy path).
    status:
        ``"ok"``, ``"infeasible"`` or ``"error"``.
    wall_time:
        Wall-clock seconds of this run (members included).
    evaluations:
        Candidate evaluations / search nodes charged to the budget
        meter (0 when the strategy does not meter its work).
    budget_exhausted:
        True when the run stopped because the budget ran out rather
        than because the search converged.
    objective:
        Achieved objective value (``None`` unless ``status == "ok"``).
    error:
        Failure message for non-``ok`` statuses.
    members:
        Per-member telemetry of a composite (portfolio/fallback) run,
        in execution order; empty for atomic strategies.
    values:
        The achieved ``(period, latency, energy)`` triple when the run
        produced a solution.  This is what lets every feasible *member*
        of a portfolio contribute its achieved point to a Pareto-front
        merge, not just the race winner.
    trace_id / span_id:
        Observability correlation ids (:mod:`repro.obs.spans`): the
        trace this solve ran under and the span covering the solve
        itself, when the solve was traced (``None`` otherwise).  They
        let a cached record point back at the phase breakdown served by
        ``GET /v1/traces/{trace_id}``.
    """

    strategy: str
    status: str
    wall_time: float
    evaluations: int = 0
    budget_exhausted: bool = False
    objective: Optional[float] = None
    error: Optional[str] = None
    members: Tuple["SolveTelemetry", ...] = field(default_factory=tuple)
    values: Optional[Tuple[float, float, float]] = None
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the run produced a solution."""
        return self.status == "ok"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (recursive; unset fields omitted)."""
        out: Dict[str, Any] = {
            "strategy": self.strategy,
            "status": self.status,
            "wall_time": self.wall_time,
            "evaluations": self.evaluations,
            "budget_exhausted": self.budget_exhausted,
        }
        if self.objective is not None:
            out["objective"] = self.objective
        if self.error is not None:
            out["error"] = self.error
        if self.members:
            out["members"] = [m.to_dict() for m in self.members]
        if self.values is not None:
            out["values"] = list(self.values)
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.span_id is not None:
            out["span_id"] = self.span_id
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SolveTelemetry":
        """Rebuild a record from its :meth:`to_dict` form."""
        return cls(
            strategy=str(payload["strategy"]),
            status=str(payload["status"]),
            wall_time=float(payload.get("wall_time", 0.0)),
            evaluations=int(payload.get("evaluations", 0)),
            budget_exhausted=bool(payload.get("budget_exhausted", False)),
            objective=(
                None
                if payload.get("objective") is None
                else float(payload["objective"])
            ),
            error=payload.get("error"),
            members=tuple(
                cls.from_dict(m) for m in payload.get("members", ())
            ),
            values=(
                None
                if payload.get("values") is None
                else tuple(float(v) for v in payload["values"])
            ),
            trace_id=payload.get("trace_id"),
            span_id=payload.get("span_id"),
        )
