"""Pluggable solver strategies: named pipelines, budgets, telemetry.

Tables 1-2 prescribe one algorithm per complexity cell; everything else
is a *choice* — greedy vs local search vs annealing vs exact, alone or
raced.  This package makes those choices first-class:

* :class:`SolverStrategy` — a named, introspectable solve pipeline with
  declared :class:`Capabilities`;
* the decorator-based registry (:func:`strategy`, :func:`get_strategy`,
  :func:`list_strategies`) holding every built-in path, from the
  ``method=`` aliases to the per-theorem polynomial solvers
  (:mod:`repro.strategies.builtin`);
* :class:`SolveBudget` / :class:`BudgetMeter` — per-solve wall-clock
  deadlines, evaluation caps and RNG seeds, enforced cooperatively
  inside the heuristic and exact loops;
* composites — :func:`portfolio` races members and keeps the best
  feasible solution, :func:`fallback` chains them; both nest and both
  parse from spec strings (:func:`parse_strategy`);
* :class:`SolveTelemetry` — the structured per-solve record the batch
  service emits, the campaign cache persists and the analysis layer
  aggregates.

Quickstart::

    from repro.strategies import SolveBudget, parse_strategy

    racer = parse_strategy("portfolio(greedy,local_search,annealing)")
    result = racer.run(
        problem, "period",
        budget=SolveBudget(time_limit=0.5, seed=7),
    )
    print(result.solution.objective)
    for member in result.telemetry.members:
        print(member.strategy, member.status, member.evaluations)

The same specs work end-to-end: ``solve_batch(problems,
strategy="portfolio(greedy,annealing)")``, campaign solver entries
(``strategy:`` / ``budget:`` keys) and the CLI
(``repro-pipelines strategies list``, ``solve-batch --strategy``).
"""

from . import builtin  # noqa: F401  (imports register the built-ins)
from .base import (
    Capabilities,
    FunctionStrategy,
    SolverStrategy,
    StrategyError,
    StrategyResult,
)
from .budget import BudgetMeter, SolveBudget
from .builtin import dispatch_method, solve_via_method
from .composite import (
    FallbackStrategy,
    PortfolioStrategy,
    fallback,
    parse_strategy,
    portfolio,
)
from .registry import (
    get_strategy,
    list_strategies,
    register,
    strategy,
    strategy_names,
)
from .telemetry import SolveTelemetry

__all__ = [
    "BudgetMeter",
    "Capabilities",
    "FallbackStrategy",
    "FunctionStrategy",
    "PortfolioStrategy",
    "SolveBudget",
    "SolveTelemetry",
    "SolverStrategy",
    "StrategyError",
    "StrategyResult",
    "dispatch_method",
    "fallback",
    "get_strategy",
    "list_strategies",
    "parse_strategy",
    "portfolio",
    "register",
    "solve_via_method",
    "strategy",
    "strategy_names",
]
