"""Constructive greedy heuristics for heterogeneous platforms.

*Interval rule* (:func:`greedy_interval_period`): start with every
application whole on the fastest available processor, then repeatedly split
the interval with the worst weighted cycle-time, trying every cut point and
every free processor for the detached half, keeping the split that most
reduces the global period.  Stops at a local optimum or when processors run
out.  ``O(p * n_max^2 * p)`` overall -- polynomial.

*One-to-one rule* (:func:`greedy_one_to_one_period`): stages sorted by
decreasing weighted work are assigned one by one to the free processor
minimizing the stage's (estimated) cycle-time.  Communication times are
estimated with the incident links available at decision time.

Both return ``Solution(optimal=False)``: they are the polynomial arm of the
NP-hard benches, to be contrasted with :mod:`repro.algorithms.exact`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ...core.evaluation import evaluate
from ...core.exceptions import InfeasibleProblemError
from ...core.mapping import Assignment, Mapping
from ...core.problem import ProblemInstance, Solution
from ...core.types import Criterion, IN_ENDPOINT, MappingRule, OUT_ENDPOINT


def _initial_whole_app_mapping(problem: ProblemInstance) -> List[Assignment]:
    """Each application whole on the fastest still-free processor (fastest
    applications-by-load first, so heavy applications get fast processors)."""
    order = sorted(
        range(problem.n_apps),
        key=lambda a: -problem.apps[a].weight * problem.apps[a].total_work,
    )
    by_speed = list(problem.platform.fastest_processors(problem.platform.n_processors))
    assignments: List[Assignment] = []
    for rank, a in enumerate(order):
        u = by_speed[rank]
        assignments.append(
            Assignment(
                app=a,
                interval=(0, problem.apps[a].n_stages - 1),
                proc=u,
                speed=problem.platform.processor(u).max_speed,
            )
        )
    return assignments


def greedy_interval_period(
    problem: ProblemInstance, *, context=None, budget=None
) -> Solution:
    """Split-the-bottleneck greedy for interval-mapping period minimization
    on arbitrary platforms (all processors at full speed).

    Candidate splits are scored through the shared vectorized kernel with
    incremental delta-evaluation (only the split application is
    re-evaluated).  ``context`` optionally shares a prebuilt
    :class:`repro.kernel.EvaluationContext`.  ``budget`` optionally passes
    a cooperative budget meter (see :class:`repro.strategies.SolveBudget`)
    ticked once per scored split; on exhaustion the best mapping found so
    far is returned (always a valid whole-application mapping)."""
    if problem.n_apps > problem.platform.n_processors:
        raise InfeasibleProblemError(
            "need at least one processor per application"
        )
    ctx = problem.evaluation_context(context)
    assignments = _initial_whole_app_mapping(problem)
    mapping = Mapping.from_assignments(assignments)

    def rank(values) -> Tuple[float, float]:
        # Lexicographic score: the global weighted period first, then the
        # sum of weighted per-application periods.  The tie-breaker lets the
        # greedy keep splitting non-critical applications when several tie
        # at the bottleneck (otherwise partition-like instances stall the
        # search immediately).
        total = sum(
            problem.apps[a].weight * t for a, t in values.periods.items()
        )
        return (values.period, total)

    best_values = ctx.evaluate(mapping)
    best_rank = rank(best_values)
    n_rounds = 0
    exhausted = False
    while not exhausted:
        n_rounds += 1
        used = set(mapping.enrolled_processors)
        free = [u for u in range(problem.platform.n_processors) if u not in used]
        if not free:
            break
        improved: Optional[Tuple[Tuple[float, float], Mapping, object]] = None
        # Candidate splits: every splittable assignment, every cut, every
        # free processor for the right half.
        for victim in mapping.assignments:
            if exhausted:
                break
            lo, hi = victim.interval
            if lo == hi:
                continue
            others = [x for x in mapping.assignments if x is not victim]
            for cut in range(lo, hi):
                if exhausted:
                    break
                for u in free:
                    if budget is not None and not budget.tick():
                        exhausted = True
                        break
                    speed = problem.platform.processor(u).max_speed
                    candidate = Mapping.from_assignments(
                        others
                        + [
                            Assignment(
                                app=victim.app,
                                interval=(lo, cut),
                                proc=victim.proc,
                                speed=victim.speed,
                            ),
                            Assignment(
                                app=victim.app,
                                interval=(cut + 1, hi),
                                proc=u,
                                speed=speed,
                            ),
                        ]
                    )
                    candidate_values = ctx.delta_evaluate(
                        candidate, mapping, best_values
                    )
                    candidate_rank = rank(candidate_values)
                    if candidate_rank < best_rank and (
                        improved is None or candidate_rank < improved[0]
                    ):
                        improved = (candidate_rank, candidate, candidate_values)
        if improved is None:
            break
        _, mapping, best_values = improved
        best_rank = rank(best_values)
    return Solution(
        mapping=mapping,
        objective=best_values.period,
        values=best_values,
        solver="greedy-split-bottleneck",
        optimal=False,
        stats={
            "n_rounds": float(n_rounds),
            "budget_exhausted": float(exhausted),
        },
    )


def greedy_one_to_one_period(
    problem: ProblemInstance, *, context=None
) -> Solution:
    """List-scheduling greedy for one-to-one period minimization on
    arbitrary platforms: heaviest stages first, each on the free processor
    minimizing its estimated weighted cycle-time.  ``context`` optionally
    shares a prebuilt :class:`repro.kernel.EvaluationContext` for the final
    evaluation."""
    apps = problem.apps
    platform = problem.platform
    N = problem.n_stages_total
    if N > platform.n_processors:
        raise InfeasibleProblemError(
            "one-to-one mapping requires p >= N "
            f"(p={platform.n_processors}, N={N})"
        )
    stages = [
        (a, k) for a, app in enumerate(apps) for k in range(app.n_stages)
    ]
    stages.sort(key=lambda s: -apps[s[0]].weight * apps[s[0]].stages[s[1]].work)
    placed: dict = {}
    free = set(range(platform.n_processors))

    def estimated_cycle(a: int, k: int, u: int) -> float:
        # Neighbour processors may not be placed yet; their links are then
        # estimated with the platform default bandwidth.
        app = apps[a]
        if k == 0:
            bw_in = platform.bandwidth(IN_ENDPOINT, u, a)
        elif (a, k - 1) in placed:
            bw_in = platform.bandwidth(placed[(a, k - 1)], u, a)
        else:
            bw_in = platform.default_bandwidth
        if k == app.n_stages - 1:
            bw_out = platform.bandwidth(u, OUT_ENDPOINT, a)
        elif (a, k + 1) in placed:
            bw_out = platform.bandwidth(u, placed[(a, k + 1)], a)
        else:
            bw_out = platform.default_bandwidth
        t_in = app.input_size(k) / bw_in
        t_out = app.output_size(k) / bw_out
        t_comp = app.stages[k].work / platform.processor(u).max_speed
        return app.weight * problem.model.combine(t_in, t_comp, t_out)

    for a, k in stages:
        u_best = min(free, key=lambda u: (estimated_cycle(a, k, u), u))
        placed[(a, k)] = u_best
        free.remove(u_best)
    mapping = Mapping.from_assignments(
        Assignment(
            app=a,
            interval=(k, k),
            proc=u,
            speed=platform.processor(u).max_speed,
        )
        for (a, k), u in placed.items()
    )
    values = problem.evaluation_context(context).evaluate(mapping)
    return Solution(
        mapping=mapping,
        objective=values.period,
        values=values,
        solver="greedy-one-to-one",
        optimal=False,
    )
