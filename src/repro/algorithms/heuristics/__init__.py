"""Polynomial-time heuristics for the NP-hard cells of Tables 1 and 2.

The paper's conclusion names "polynomial-time heuristics to solve the
tri-criteria optimization problem in a general framework" as the natural
practical continuation; this package provides them, plus constructive and
local-search heuristics for the NP-hard mono- and bi-criteria cells:

* :mod:`greedy_interval` -- constructive interval/one-to-one mappings for
  heterogeneous platforms (split-the-bottleneck greedy);
* :mod:`local_search` -- hill climbing over a mapping neighborhood
  (boundary shifts, splits, merges, processor swaps/moves, mode changes);
* :mod:`annealing` -- simulated annealing over the same neighborhood;
* :mod:`mode_scaling` -- energy-greedy mode downgrading under
  period/latency thresholds (the tri-criteria "server problem").
"""

from .annealing import anneal
from .greedy_interval import greedy_interval_period, greedy_one_to_one_period
from .local_search import (
    hill_climb,
    neighbors,
    score,
    score_many,
    score_values,
)
from .mode_scaling import greedy_mode_downgrade

__all__ = [
    "anneal",
    "greedy_interval_period",
    "greedy_mode_downgrade",
    "greedy_one_to_one_period",
    "hill_climb",
    "neighbors",
    "score",
    "score_many",
    "score_values",
]
