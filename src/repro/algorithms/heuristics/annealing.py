"""Simulated annealing over the mapping neighborhood.

A randomized escape from the local optima of :func:`hill_climb`: classical
Metropolis acceptance with geometric cooling over the same move set
(:func:`repro.algorithms.heuristics.local_search.neighbors`).  Fully
deterministic given the seed.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ...core.mapping import Mapping
from ...core.objectives import Thresholds
from ...core.problem import ProblemInstance, Solution
from ...core.types import Criterion
from .local_search import neighbors, score


def anneal(
    problem: ProblemInstance,
    start: Mapping,
    criterion: Criterion,
    thresholds: Thresholds = Thresholds(),
    *,
    seed: int = 0,
    n_iterations: int = 2000,
    initial_temperature: Optional[float] = None,
    cooling: float = 0.995,
) -> Solution:
    """Simulated annealing from ``start``.

    Parameters
    ----------
    seed:
        RNG seed (``numpy.random.default_rng``); results are reproducible.
    n_iterations:
        Number of proposed moves.
    initial_temperature:
        Defaults to 10% of the starting score (a mild, scale-aware choice).
    cooling:
        Geometric cooling factor applied per iteration.
    """
    rng = np.random.default_rng(seed)
    current = start
    current_score = score(problem, current, criterion, thresholds)
    best = current
    best_score = current_score
    temperature = (
        initial_temperature
        if initial_temperature is not None
        else max(1e-9, 0.1 * current_score)
    )
    n_accepted = 0
    for _ in range(n_iterations):
        options = list(neighbors(problem, current))
        if not options:
            break
        candidate = options[int(rng.integers(len(options)))]
        s = score(problem, candidate, criterion, thresholds)
        delta = s - current_score
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-12)):
            current = candidate
            current_score = s
            n_accepted += 1
            if s < best_score:
                best = candidate
                best_score = s
        temperature *= cooling
    values = problem.evaluate(best)
    objective = {
        Criterion.PERIOD: values.period,
        Criterion.LATENCY: values.latency,
        Criterion.ENERGY: values.energy,
    }[criterion]
    return Solution(
        mapping=best,
        objective=objective,
        values=values,
        solver="simulated-annealing",
        optimal=False,
        stats={
            "n_accepted": float(n_accepted),
            "final_temperature": temperature,
            "score": best_score,
        },
    )
