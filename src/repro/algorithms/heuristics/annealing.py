"""Simulated annealing over the mapping neighborhood.

A randomized escape from the local optima of :func:`hill_climb`: classical
Metropolis acceptance with geometric cooling over the same move set
(:func:`repro.algorithms.heuristics.local_search.neighbors`).  Fully
deterministic given the seed.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ...core.mapping import Mapping
from ...core.objectives import Thresholds
from ...core.problem import ProblemInstance, Solution
from ...core.types import Criterion
from ...kernel import generate_neighborhood
from ...obs.spans import collect as _collect_spans
from ...obs.spans import track as _track
from .local_search import _resolve_engine, neighbors, score_values


def anneal(
    problem: ProblemInstance,
    start: Mapping,
    criterion: Criterion,
    thresholds: Thresholds = Thresholds(),
    *,
    seed: int = 0,
    n_iterations: int = 2000,
    initial_temperature: Optional[float] = None,
    cooling: float = 0.995,
    context=None,
    budget=None,
    engine: Optional[str] = None,
) -> Solution:
    """Simulated annealing from ``start``.

    With the default ``"batched"`` engine each proposal is drawn from
    the array-native neighborhood
    (:func:`repro.kernel.generate_neighborhood`): the candidate set
    exists only as stacked column arrays, the sampled candidate is
    scored through a one-candidate
    :meth:`~repro.kernel.EvaluationContext.evaluate_many` slice, and a
    ``Mapping`` is materialized only on acceptance.  The ``"compiled"``
    engine (:mod:`repro.kernel.compiled`) never builds the candidate set
    at all: the neighborhood is *counted* in one nopython call, the
    sampled index is generated, evaluated and scored in another, and a
    ``Mapping`` is materialized only on acceptance; it falls back to
    ``"batched"`` (once-per-process warning) when Numba is absent or the
    problem shape is unsupported.  The ``"scalar"`` engine materializes
    the whole neighborhood per proposal (the original loop).  All
    registered engines
    (:func:`repro.algorithms.heuristics.local_search.engine_names`) draw
    identical candidate sequences from identical seeds and return
    byte-identical solutions (all tick the budget once per proposal, so
    unlike ``hill_climb`` the parity holds under wall-clock deadlines
    too).

    Parameters
    ----------
    seed:
        RNG seed (``numpy.random.default_rng``); results are reproducible.
    n_iterations:
        Number of proposed moves.
    initial_temperature:
        Defaults to 10% of the starting score (a mild, scale-aware choice).
    cooling:
        Geometric cooling factor applied per iteration.
    context:
        Optional prebuilt :class:`repro.kernel.EvaluationContext` to share
        (defaults to the problem's cached one).
    budget:
        Optional cooperative budget meter (see
        :class:`repro.strategies.SolveBudget`) ticked once per proposed
        move (one proposal = one scored candidate = one evaluation); on
        exhaustion the best mapping found so far is returned.
    engine:
        Any name from
        :func:`repro.algorithms.heuristics.local_search.engine_names`
        (the shared hill-climb registry), or ``None`` for the module
        default
        (:data:`repro.algorithms.heuristics.local_search.DEFAULT_ENGINE`);
        unknown names raise a ``ValueError`` listing the registry.
    """
    name = _resolve_engine(engine)
    plan = None
    if name == "compiled":
        from ...kernel import compiled

        plan, _reason = compiled.acquire(problem, context)
        if plan is None:
            name = "batched"
    batched = name == "batched"
    ctx = problem.evaluation_context(context)
    rng = np.random.default_rng(seed)
    current = start
    current_values = ctx.evaluate(current)
    current_score = score_values(current_values, criterion, thresholds)
    best = current
    best_values = current_values
    best_score = current_score
    temperature = (
        initial_temperature
        if initial_temperature is not None
        else max(1e-9, 0.1 * current_score)
    )
    if plan is not None:
        state = plan.state_from(current)
        crit = plan.criteria_arrays(criterion, thresholds)
    n_accepted = 0
    exhausted = False
    with _collect_spans("solve.anneal", engine=name):
        for _ in range(n_iterations):
            if budget is not None and not budget.tick():
                exhausted = True
                break
            if plan is not None:
                free = plan.free_procs(state)
                count = plan.count(state, free)
                if count == 0:
                    break
                index = int(rng.integers(count))
                s, values = plan.propose(state, free, index, crit)
                candidate = None  # materialized only on acceptance
            elif batched:
                batch = generate_neighborhood(problem, current)
                if len(batch) == 0:
                    break
                index = int(rng.integers(len(batch)))
                proposal = batch.single(index)
                values = ctx.evaluate_many(proposal).select(0)
                candidate = None  # materialized only on acceptance
                s = score_values(values, criterion, thresholds)
            else:
                # The scalar path materializes the whole neighborhood
                # per proposal; generation + incremental evaluation are
                # tracked as one fused phase (as in scalar hill-climb).
                with _track("solve.evaluate"):
                    options = list(neighbors(problem, current))
                    if not options:
                        break
                    candidate = options[int(rng.integers(len(options)))]
                    values = ctx.delta_evaluate(
                        candidate, current, current_values
                    )
                    s = score_values(values, criterion, thresholds)
            delta = s - current_score
            if delta <= 0 or rng.random() < math.exp(
                -delta / max(temperature, 1e-12)
            ):
                with _track("solve.accept"):
                    if candidate is None:
                        if plan is not None:
                            state = plan.take(state, free, index)
                            candidate = plan.materialize(state)
                        else:
                            candidate = proposal.materialize(0)
                    current = candidate
                    current_values = values
                    current_score = s
                n_accepted += 1
                if s < best_score:
                    best = candidate
                    best_values = values
                    best_score = s
            temperature *= cooling
    values = best_values
    objective = {
        Criterion.PERIOD: values.period,
        Criterion.LATENCY: values.latency,
        Criterion.ENERGY: values.energy,
    }[criterion]
    return Solution(
        mapping=best,
        objective=objective,
        values=values,
        solver="simulated-annealing",
        optimal=False,
        stats={
            "n_accepted": float(n_accepted),
            "final_temperature": temperature,
            "score": best_score,
            "budget_exhausted": float(exhausted),
        },
    )
