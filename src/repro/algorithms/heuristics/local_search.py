"""Local search over mappings: neighborhood and hill climbing.

The neighborhood of a valid mapping contains every valid mapping obtained by
one elementary move:

* ``mode``: change the speed of one enrolled processor to an adjacent mode;
* ``swap``: exchange the processors (with their speeds re-clamped to the
  fastest mode of the new host when the old speed is unavailable) of two
  assignments;
* ``move``: relocate one assignment to a free processor;
* ``shift``: move one stage across the boundary of two adjacent intervals
  of the same application;
* ``split``: cut one interval in two, enrolling a free processor;
* ``merge``: fuse two adjacent intervals of the same application onto the
  first one's processor, releasing the second processor.

``split``/``merge``/``shift`` are disabled under the one-to-one rule.

:func:`hill_climb` minimizes a criterion subject to thresholds with
best-improvement descent over this neighborhood; infeasible neighbors are
scored with a large penalty per violated threshold so the search can walk
back into the feasible region.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

from ...core.mapping import Assignment, Mapping
from ...core.objectives import Thresholds
from ...core.problem import ProblemInstance, Solution
from ...core.types import Criterion, MappingRule

#: Penalty factor applied per unit of relative threshold violation.
_PENALTY = 1e9


def _clamp_speed(problem: ProblemInstance, proc: int, speed: float) -> float:
    """The processor's own mode closest to ``speed`` from above (or its
    fastest mode)."""
    processor = problem.platform.processor(proc)
    if processor.has_speed(speed):
        return speed
    at_least = processor.slowest_speed_at_least(speed)
    return at_least if at_least is not None else processor.max_speed


def neighbors(
    problem: ProblemInstance, mapping: Mapping
) -> Iterator[Mapping]:
    """Yield all neighbors of a valid mapping (all of them valid)."""
    assignments = list(mapping.assignments)
    used = set(mapping.enrolled_processors)
    free = [
        u for u in range(problem.platform.n_processors) if u not in used
    ]
    interval_rule = problem.rule is MappingRule.INTERVAL

    # mode moves
    for idx, x in enumerate(assignments):
        speeds = problem.platform.processor(x.proc).speeds
        pos = min(
            range(len(speeds)), key=lambda i: abs(speeds[i] - x.speed)
        )
        for new_pos in (pos - 1, pos + 1):
            if 0 <= new_pos < len(speeds):
                yield Mapping.from_assignments(
                    assignments[:idx]
                    + [
                        Assignment(
                            app=x.app,
                            interval=x.interval,
                            proc=x.proc,
                            speed=speeds[new_pos],
                        )
                    ]
                    + assignments[idx + 1 :]
                )

    # swap moves
    for i in range(len(assignments)):
        for j in range(i + 1, len(assignments)):
            a, b = assignments[i], assignments[j]
            new_a = Assignment(
                app=a.app,
                interval=a.interval,
                proc=b.proc,
                speed=_clamp_speed(problem, b.proc, a.speed),
            )
            new_b = Assignment(
                app=b.app,
                interval=b.interval,
                proc=a.proc,
                speed=_clamp_speed(problem, a.proc, b.speed),
            )
            rest = [
                x for k, x in enumerate(assignments) if k not in (i, j)
            ]
            yield Mapping.from_assignments(rest + [new_a, new_b])

    # move-to-free moves
    for idx, x in enumerate(assignments):
        for u in free:
            yield Mapping.from_assignments(
                assignments[:idx]
                + [
                    Assignment(
                        app=x.app,
                        interval=x.interval,
                        proc=u,
                        speed=_clamp_speed(problem, u, x.speed),
                    )
                ]
                + assignments[idx + 1 :]
            )

    if not interval_rule:
        return

    # shift / merge moves over adjacent interval pairs
    for a_idx in mapping.applications:
        parts = mapping.for_app(a_idx)
        for j in range(len(parts) - 1):
            left, right = parts[j], parts[j + 1]
            rest = [
                x
                for x in assignments
                if x not in (left, right)
            ]
            # shift boundary left/right
            l_lo, l_hi = left.interval
            r_lo, r_hi = right.interval
            if l_lo < l_hi:  # give left's last stage to right
                yield Mapping.from_assignments(
                    rest
                    + [
                        Assignment(
                            app=a_idx,
                            interval=(l_lo, l_hi - 1),
                            proc=left.proc,
                            speed=left.speed,
                        ),
                        Assignment(
                            app=a_idx,
                            interval=(l_hi, r_hi),
                            proc=right.proc,
                            speed=right.speed,
                        ),
                    ]
                )
            if r_lo < r_hi:  # give right's first stage to left
                yield Mapping.from_assignments(
                    rest
                    + [
                        Assignment(
                            app=a_idx,
                            interval=(l_lo, r_lo),
                            proc=left.proc,
                            speed=left.speed,
                        ),
                        Assignment(
                            app=a_idx,
                            interval=(r_lo + 1, r_hi),
                            proc=right.proc,
                            speed=right.speed,
                        ),
                    ]
                )
            # merge onto the left processor
            yield Mapping.from_assignments(
                rest
                + [
                    Assignment(
                        app=a_idx,
                        interval=(l_lo, r_hi),
                        proc=left.proc,
                        speed=left.speed,
                    )
                ]
            )

    # split moves
    for idx, x in enumerate(assignments):
        lo, hi = x.interval
        if lo == hi or not free:
            continue
        rest = assignments[:idx] + assignments[idx + 1 :]
        for cut in range(lo, hi):
            for u in free:
                yield Mapping.from_assignments(
                    rest
                    + [
                        Assignment(
                            app=x.app,
                            interval=(lo, cut),
                            proc=x.proc,
                            speed=x.speed,
                        ),
                        Assignment(
                            app=x.app,
                            interval=(cut + 1, hi),
                            proc=u,
                            speed=problem.platform.processor(u).max_speed,
                        ),
                    ]
                )


def score(
    problem: ProblemInstance,
    mapping: Mapping,
    criterion: Criterion,
    thresholds: Thresholds,
    *,
    context=None,
) -> float:
    """Penalized objective: criterion value plus a large penalty per unit of
    relative threshold violation (0 violation = plain objective).

    ``context`` optionally shares a prebuilt
    :class:`repro.kernel.EvaluationContext` (defaults to the problem's
    cached one)."""
    values = problem.evaluation_context(context).evaluate(mapping)
    return score_values(values, criterion, thresholds)


def score_values(
    values,
    criterion: Criterion,
    thresholds: Thresholds,
) -> float:
    """The penalized objective of already-computed
    :class:`~repro.core.evaluation.CriteriaValues` -- the form used on the
    hot path together with incremental
    :meth:`~repro.kernel.EvaluationContext.delta_evaluate`."""
    objective = {
        Criterion.PERIOD: values.period,
        Criterion.LATENCY: values.latency,
        Criterion.ENERGY: values.energy,
    }[criterion]
    penalty = 0.0
    for value, bound in (
        (values.period, thresholds.period),
        (values.latency, thresholds.latency),
        (values.energy, thresholds.energy),
    ):
        if bound is not None and value > bound:
            penalty += _PENALTY * (value / bound - 1.0) + _PENALTY
    if thresholds.per_app_period is not None:
        for a, t in values.periods.items():
            bound = thresholds.per_app_period[a]
            if t > bound:
                penalty += _PENALTY * (t / bound - 1.0) + _PENALTY
    if thresholds.per_app_latency is not None:
        for a, l in values.latencies.items():
            bound = thresholds.per_app_latency[a]
            if l > bound:
                penalty += _PENALTY * (l / bound - 1.0) + _PENALTY
    return objective + penalty


def hill_climb(
    problem: ProblemInstance,
    start: Mapping,
    criterion: Criterion,
    thresholds: Thresholds = Thresholds(),
    *,
    max_iterations: int = 10_000,
    context=None,
    budget=None,
) -> Solution:
    """Best-improvement descent from ``start`` over :func:`neighbors`.

    Neighbors are scored through the shared vectorized kernel with
    incremental delta-evaluation (only the application touched by a move is
    re-evaluated).  ``context`` optionally shares a prebuilt
    :class:`repro.kernel.EvaluationContext`.  ``budget`` optionally passes
    a cooperative budget meter (see :class:`repro.strategies.SolveBudget`)
    ticked once per scored neighbor; on exhaustion the best mapping found
    so far is returned.  Returns the local optimum reached
    (``optimal=False``).
    """
    ctx = problem.evaluation_context(context)
    current = start
    current_values = ctx.evaluate(current)
    current_score = score_values(current_values, criterion, thresholds)
    n_steps = 0
    exhausted = False
    for _ in range(max_iterations):
        best_neighbor: Optional[Mapping] = None
        best_values = None
        best_score = current_score
        for candidate in neighbors(problem, current):
            if budget is not None and not budget.tick():
                exhausted = True
                break
            values = ctx.delta_evaluate(candidate, current, current_values)
            s = score_values(values, criterion, thresholds)
            if s < best_score - 1e-15:
                best_score = s
                best_neighbor = candidate
                best_values = values
        if best_neighbor is None:
            break
        current = best_neighbor
        current_values = best_values
        current_score = best_score
        n_steps += 1
        if exhausted:
            break
    values = current_values
    objective = {
        Criterion.PERIOD: values.period,
        Criterion.LATENCY: values.latency,
        Criterion.ENERGY: values.energy,
    }[criterion]
    return Solution(
        mapping=current,
        objective=objective,
        values=values,
        solver="hill-climb",
        optimal=False,
        stats={
            "n_steps": float(n_steps),
            "score": current_score,
            "budget_exhausted": float(exhausted),
        },
    )
