"""Local search over mappings: neighborhood and hill climbing.

The neighborhood of a valid mapping contains every valid mapping obtained by
one elementary move:

* ``mode``: change the speed of one enrolled processor to an adjacent mode;
* ``swap``: exchange the processors (with their speeds re-clamped to the
  fastest mode of the new host when the old speed is unavailable) of two
  assignments;
* ``move``: relocate one assignment to a free processor;
* ``shift``: move one stage across the boundary of two adjacent intervals
  of the same application;
* ``split``: cut one interval in two, enrolling a free processor;
* ``merge``: fuse two adjacent intervals of the same application onto the
  first one's processor, releasing the second processor.

``split``/``merge``/``shift`` are disabled under the one-to-one rule.

:func:`hill_climb` minimizes a criterion subject to thresholds with
best-improvement descent over this neighborhood; infeasible neighbors are
scored with a large penalty per violated threshold so the search can walk
back into the feasible region.

Three engines drive the descent.  The default ``"batched"`` engine
generates the whole neighborhood as stacked column arrays
(:func:`repro.kernel.generate_neighborhood`), scores it in one
vectorized kernel call
(:meth:`~repro.kernel.EvaluationContext.evaluate_many` +
:func:`score_many`) and materializes only the accepted candidate.  The
``"compiled"`` engine (:mod:`repro.kernel.compiled`) fuses generation,
evaluation, scoring and the accept replay into one Numba ``@njit`` call
per step -- zero Python re-entry -- and silently degrades to
``"batched"`` (with a once-per-process warning) when Numba is absent or
the problem shape is unsupported.  The ``"scalar"`` engine is the
original one-``Mapping``-at-a-time loop, kept as the equivalence
reference and benchmark baseline: all engines return byte-identical
solutions for identical inputs -- unbudgeted or under an evaluation cap
(asserted by ``tests/kernel/test_neighborhood_property.py`` and
``benchmarks/bench_neighborhood.py``).  Under a wall-clock
``time_limit`` the batched and compiled engines check the deadline once
per neighborhood batch instead of once per candidate, so where the
clock runs out mid-scan they may part from the scalar engine by up to
one batch of evaluations (one descent step).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ...core.mapping import Assignment, Mapping
from ...core.objectives import Thresholds
from ...core.problem import ProblemInstance, Solution
from ...core.types import Criterion, MappingRule
from ...kernel import generate_neighborhood
from ...kernel.neighborhood import clamp_speed
from ...obs.spans import collect as _collect_spans
from ...obs.spans import track as _track

#: Penalty factor applied per unit of relative threshold violation.
_PENALTY = 1e9

#: Neighborhood engine used when ``hill_climb``/``anneal`` receive
#: ``engine=None``: ``"batched"`` (array-native, the default),
#: ``"compiled"`` (Numba-fused, falls back to batched) or ``"scalar"``
#: (the reference loop).  Module-level so test harnesses and pool-worker
#: initializers can flip whole strategy stacks (portfolios, the service
#: layer) onto another engine without threading a parameter through
#: every layer.
DEFAULT_ENGINE = "batched"

#: Registered hill-climb engines, name -> implementation, in
#: registration order.  Populated at module bottom; error messages and
#: every engine listing (CLI, healthz, docs) derive from this mapping so
#: adding an engine is a one-line registration.
_ENGINES: Dict[str, object] = {}


def engine_names() -> Tuple[str, ...]:
    """The registered neighborhood engine names, registration order."""
    return tuple(_ENGINES)


def engine_info() -> Dict[str, object]:
    """Operational snapshot of the engine registry -- surfaced by the
    daemon's ``/v1/healthz`` and ``repro-pipelines strategies list``:
    registered names, the process-wide default, whether the compiled
    engine can actually run, and the Numba version (``None`` when not
    installed)."""
    from ...kernel import compiled

    return {
        "engines": list(_ENGINES),
        "default": DEFAULT_ENGINE,
        "compiled_available": compiled.available(),
        "numba": compiled.NUMBA_VERSION,
    }


def _resolve_engine(engine: Optional[str]) -> str:
    name = DEFAULT_ENGINE if engine is None else engine
    if name not in _ENGINES:
        raise ValueError(
            f"unknown neighborhood engine {name!r}; expected one of "
            f"{tuple(_ENGINES)}"
        )
    return name


@contextmanager
def using_engine(engine: Optional[str]):
    """Temporarily set :data:`DEFAULT_ENGINE` (validated), restoring the
    previous default on exit -- how ``engine=`` threads through layers
    that never call ``hill_climb``/``anneal`` directly (strategies,
    ``solve_batch``, the daemon).  ``None`` is a no-op."""
    global DEFAULT_ENGINE
    if engine is None:
        yield
        return
    previous = DEFAULT_ENGINE
    DEFAULT_ENGINE = _resolve_engine(engine)
    try:
        yield
    finally:
        DEFAULT_ENGINE = previous


def _clamp_speed(problem: ProblemInstance, proc: int, speed: float) -> float:
    """The processor's own mode closest to ``speed`` from above (or its
    fastest mode) -- delegates to the kernel's
    :func:`~repro.kernel.neighborhood.clamp_speed`, the single source of
    truth shared with the batched generator."""
    return clamp_speed(problem.platform, proc, speed)


def neighbors(
    problem: ProblemInstance, mapping: Mapping
) -> Iterator[Mapping]:
    """Yield all neighbors of a valid mapping (all of them valid)."""
    assignments = list(mapping.assignments)
    used = set(mapping.enrolled_processors)
    free = [
        u for u in range(problem.platform.n_processors) if u not in used
    ]
    interval_rule = problem.rule is MappingRule.INTERVAL

    # mode moves
    for idx, x in enumerate(assignments):
        speeds = problem.platform.processor(x.proc).speeds
        pos = min(
            range(len(speeds)), key=lambda i: abs(speeds[i] - x.speed)
        )
        for new_pos in (pos - 1, pos + 1):
            if 0 <= new_pos < len(speeds):
                yield Mapping.from_assignments(
                    assignments[:idx]
                    + [
                        Assignment(
                            app=x.app,
                            interval=x.interval,
                            proc=x.proc,
                            speed=speeds[new_pos],
                        )
                    ]
                    + assignments[idx + 1 :]
                )

    # swap moves
    for i in range(len(assignments)):
        for j in range(i + 1, len(assignments)):
            a, b = assignments[i], assignments[j]
            new_a = Assignment(
                app=a.app,
                interval=a.interval,
                proc=b.proc,
                speed=_clamp_speed(problem, b.proc, a.speed),
            )
            new_b = Assignment(
                app=b.app,
                interval=b.interval,
                proc=a.proc,
                speed=_clamp_speed(problem, a.proc, b.speed),
            )
            rest = [
                x for k, x in enumerate(assignments) if k not in (i, j)
            ]
            yield Mapping.from_assignments(rest + [new_a, new_b])

    # move-to-free moves
    for idx, x in enumerate(assignments):
        for u in free:
            yield Mapping.from_assignments(
                assignments[:idx]
                + [
                    Assignment(
                        app=x.app,
                        interval=x.interval,
                        proc=u,
                        speed=_clamp_speed(problem, u, x.speed),
                    )
                ]
                + assignments[idx + 1 :]
            )

    if not interval_rule:
        return

    # shift / merge moves over adjacent interval pairs
    for a_idx in mapping.applications:
        parts = mapping.for_app(a_idx)
        for j in range(len(parts) - 1):
            left, right = parts[j], parts[j + 1]
            rest = [
                x
                for x in assignments
                if x not in (left, right)
            ]
            # shift boundary left/right
            l_lo, l_hi = left.interval
            r_lo, r_hi = right.interval
            if l_lo < l_hi:  # give left's last stage to right
                yield Mapping.from_assignments(
                    rest
                    + [
                        Assignment(
                            app=a_idx,
                            interval=(l_lo, l_hi - 1),
                            proc=left.proc,
                            speed=left.speed,
                        ),
                        Assignment(
                            app=a_idx,
                            interval=(l_hi, r_hi),
                            proc=right.proc,
                            speed=right.speed,
                        ),
                    ]
                )
            if r_lo < r_hi:  # give right's first stage to left
                yield Mapping.from_assignments(
                    rest
                    + [
                        Assignment(
                            app=a_idx,
                            interval=(l_lo, r_lo),
                            proc=left.proc,
                            speed=left.speed,
                        ),
                        Assignment(
                            app=a_idx,
                            interval=(r_lo + 1, r_hi),
                            proc=right.proc,
                            speed=right.speed,
                        ),
                    ]
                )
            # merge onto the left processor
            yield Mapping.from_assignments(
                rest
                + [
                    Assignment(
                        app=a_idx,
                        interval=(l_lo, r_hi),
                        proc=left.proc,
                        speed=left.speed,
                    )
                ]
            )

    # split moves
    for idx, x in enumerate(assignments):
        lo, hi = x.interval
        if lo == hi or not free:
            continue
        rest = assignments[:idx] + assignments[idx + 1 :]
        for cut in range(lo, hi):
            for u in free:
                yield Mapping.from_assignments(
                    rest
                    + [
                        Assignment(
                            app=x.app,
                            interval=(lo, cut),
                            proc=x.proc,
                            speed=x.speed,
                        ),
                        Assignment(
                            app=x.app,
                            interval=(cut + 1, hi),
                            proc=u,
                            speed=problem.platform.processor(u).max_speed,
                        ),
                    ]
                )


def score(
    problem: ProblemInstance,
    mapping: Mapping,
    criterion: Criterion,
    thresholds: Thresholds,
    *,
    context=None,
) -> float:
    """Penalized objective: criterion value plus a large penalty per unit of
    relative threshold violation (0 violation = plain objective).

    ``context`` optionally shares a prebuilt
    :class:`repro.kernel.EvaluationContext` (defaults to the problem's
    cached one)."""
    values = problem.evaluation_context(context).evaluate(mapping)
    return score_values(values, criterion, thresholds)


def score_values(
    values,
    criterion: Criterion,
    thresholds: Thresholds,
) -> float:
    """The penalized objective of already-computed
    :class:`~repro.core.evaluation.CriteriaValues` -- the form used on the
    hot path together with incremental
    :meth:`~repro.kernel.EvaluationContext.delta_evaluate`."""
    objective = {
        Criterion.PERIOD: values.period,
        Criterion.LATENCY: values.latency,
        Criterion.ENERGY: values.energy,
    }[criterion]
    penalty = 0.0
    for value, bound in (
        (values.period, thresholds.period),
        (values.latency, thresholds.latency),
        (values.energy, thresholds.energy),
    ):
        if bound is not None and value > bound:
            penalty += _PENALTY * (value / bound - 1.0) + _PENALTY
    if thresholds.per_app_period is not None:
        for a, t in values.periods.items():
            bound = thresholds.per_app_period[a]
            if t > bound:
                penalty += _PENALTY * (t / bound - 1.0) + _PENALTY
    if thresholds.per_app_latency is not None:
        for a, l in values.latencies.items():
            bound = thresholds.per_app_latency[a]
            if l > bound:
                penalty += _PENALTY * (l / bound - 1.0) + _PENALTY
    return objective + penalty


def score_many(
    values,
    criterion: Criterion,
    thresholds: Thresholds,
) -> np.ndarray:
    """Vectorized :func:`score_values` over a whole candidate batch.

    Parameters
    ----------
    values:
        A :class:`~repro.kernel.BatchCriteria` (criteria vectors of
        ``N`` candidates).
    criterion:
        The optimized criterion.
    thresholds:
        Bounds on the other criteria.

    Returns
    -------
    numpy.ndarray
        Shape ``(N,)`` penalized scores; entry ``i`` is bit-identical to
        ``score_values(values.select(i), ...)`` (the penalty terms
        accumulate in the same order as the scalar loop).
    """
    objective = {
        Criterion.PERIOD: values.period,
        Criterion.LATENCY: values.latency,
        Criterion.ENERGY: values.energy,
    }[criterion]
    penalty = np.zeros(len(objective))
    for value, bound in (
        (values.period, thresholds.period),
        (values.latency, thresholds.latency),
        (values.energy, thresholds.energy),
    ):
        if bound is not None:
            mask = value > bound
            if mask.any():
                penalty[mask] = penalty[mask] + (
                    _PENALTY * (value[mask] / bound - 1.0) + _PENALTY
                )
    for table, bounds in (
        (values.periods, thresholds.per_app_period),
        (values.latencies, thresholds.per_app_latency),
    ):
        if bounds is None:
            continue
        for a in range(table.shape[1]):
            bound = bounds[a]
            column = table[:, a]
            mask = column > bound
            if mask.any():
                penalty[mask] = penalty[mask] + (
                    _PENALTY * (column[mask] / bound - 1.0) + _PENALTY
                )
    return objective + penalty


def _solution(
    mapping: Mapping,
    values,
    score: float,
    criterion: Criterion,
    n_steps: int,
    exhausted: bool,
) -> Solution:
    objective = {
        Criterion.PERIOD: values.period,
        Criterion.LATENCY: values.latency,
        Criterion.ENERGY: values.energy,
    }[criterion]
    return Solution(
        mapping=mapping,
        objective=objective,
        values=values,
        solver="hill-climb",
        optimal=False,
        stats={
            "n_steps": float(n_steps),
            "score": score,
            "budget_exhausted": float(exhausted),
        },
    )


def hill_climb(
    problem: ProblemInstance,
    start: Mapping,
    criterion: Criterion,
    thresholds: Thresholds = Thresholds(),
    *,
    max_iterations: int = 10_000,
    context=None,
    budget=None,
    engine: Optional[str] = None,
) -> Solution:
    """Best-improvement descent from ``start`` over :func:`neighbors`.

    With the default ``"batched"`` engine each step generates the whole
    neighborhood as stacked column arrays, scores it in one vectorized
    kernel call and materializes only the accepted candidate; the
    ``"compiled"`` engine fuses that whole step into one Numba kernel
    call (falling back to batched, with a once-per-process warning, when
    Numba is absent or the shape unsupported); the ``"scalar"`` engine
    walks the same neighborhood one ``Mapping`` at a time through
    incremental delta-evaluation.  All registered engines
    (:func:`engine_names`) visit candidates in the same order with the
    same tie-breaking and return byte-identical solutions, except under
    a wall-clock ``time_limit`` hit mid-scan, where the per-batch
    deadline check of the batched/compiled engines may let them finish
    (and act on) one neighborhood scan the scalar engine would have
    abandoned.

    ``context`` optionally shares a prebuilt
    :class:`repro.kernel.EvaluationContext`.  ``budget`` optionally passes
    a cooperative budget meter (see :class:`repro.strategies.SolveBudget`)
    charged one evaluation per scored neighbor -- a batch of ``N``
    candidates counts as ``N`` evaluations, truncated to the evaluations
    remaining under the cap; on exhaustion the best mapping found so far
    is returned.  ``engine=None`` uses the module default
    (:data:`DEFAULT_ENGINE`).  Returns the local optimum reached
    (``optimal=False``).
    """
    name = _resolve_engine(engine)
    with _collect_spans("solve.hill_climb", engine=name):
        return _ENGINES[name](
            problem,
            start,
            criterion,
            thresholds,
            max_iterations=max_iterations,
            context=context,
            budget=budget,
        )


def _hill_climb_batched(
    problem: ProblemInstance,
    start: Mapping,
    criterion: Criterion,
    thresholds: Thresholds = Thresholds(),
    *,
    max_iterations: int = 10_000,
    context=None,
    budget=None,
) -> Solution:
    """The default array-native engine of :func:`hill_climb`: the whole
    neighborhood generated and scored as stacked column arrays, only the
    accepted candidate materialized."""
    ctx = problem.evaluation_context(context)
    current = start
    current_values = ctx.evaluate(current)
    current_score = score_values(current_values, criterion, thresholds)
    n_steps = 0
    exhausted = False
    for _ in range(max_iterations):
        batch = generate_neighborhood(problem, current)
        n_candidates = len(batch)
        granted = (
            n_candidates
            if budget is None
            else budget.reserve(n_candidates)
        )
        if granted < n_candidates:
            exhausted = True
        if granted == 0:
            break
        scan = batch.truncate(granted)
        values = ctx.evaluate_many(scan)
        scores = score_many(values, criterion, thresholds)
        # Replay the scalar engine's sequential best-improvement rule
        # (first strict improvement by more than 1e-15 wins ties) over
        # the score vector, so the accepted candidate is identical.
        with _track("solve.accept"):
            best_index: Optional[int] = None
            best_score = current_score
            for i, s in enumerate(scores.tolist()):
                if s < best_score - 1e-15:
                    best_score = s
                    best_index = i
            if best_index is not None:
                current = scan.materialize(best_index)
                current_values = values.select(best_index)
                current_score = best_score
        if best_index is None:
            break
        n_steps += 1
        if exhausted:
            break
    return _solution(
        current, current_values, current_score, criterion, n_steps, exhausted
    )


def _hill_climb_scalar(
    problem: ProblemInstance,
    start: Mapping,
    criterion: Criterion,
    thresholds: Thresholds = Thresholds(),
    *,
    max_iterations: int = 10_000,
    context=None,
    budget=None,
) -> Solution:
    """The reference scalar engine of :func:`hill_climb`: one candidate
    ``Mapping`` at a time, scored through incremental
    :meth:`~repro.kernel.EvaluationContext.delta_evaluate`, the budget
    ticked once per scored neighbor."""
    ctx = problem.evaluation_context(context)
    current = start
    current_values = ctx.evaluate(current)
    current_score = score_values(current_values, criterion, thresholds)
    n_steps = 0
    exhausted = False
    for _ in range(max_iterations):
        best_neighbor: Optional[Mapping] = None
        best_values = None
        best_score = current_score
        # The scalar engine interleaves generation with incremental
        # evaluation (lazy ``neighbors``), so the whole scan is tracked
        # as one fused "solve.evaluate" phase.
        with _track("solve.evaluate"):
            for candidate in neighbors(problem, current):
                if budget is not None and not budget.tick():
                    exhausted = True
                    break
                values = ctx.delta_evaluate(
                    candidate, current, current_values
                )
                s = score_values(values, criterion, thresholds)
                if s < best_score - 1e-15:
                    best_score = s
                    best_neighbor = candidate
                    best_values = values
        if best_neighbor is None:
            break
        with _track("solve.accept"):
            current = best_neighbor
            current_values = best_values
            current_score = best_score
        n_steps += 1
        if exhausted:
            break
    return _solution(
        current, current_values, current_score, criterion, n_steps, exhausted
    )


def _hill_climb_compiled(
    problem: ProblemInstance,
    start: Mapping,
    criterion: Criterion,
    thresholds: Thresholds = Thresholds(),
    *,
    max_iterations: int = 10_000,
    context=None,
    budget=None,
) -> Solution:
    """The fused-kernel engine of :func:`hill_climb`: counting,
    generation, evaluation, scoring and the accept replay of each step
    run inside one :mod:`repro.kernel.compiled` nopython call; Python is
    re-entered only between steps (budget accounting, state swap) and at
    the end (materializing the final mapping).  Falls back to the
    batched engine -- with a once-per-process warning -- when Numba is
    absent or :func:`repro.kernel.compiled.support_reason` rejects the
    problem shape."""
    from ...kernel import compiled

    plan, _reason = compiled.acquire(problem, context)
    if plan is None:
        return _hill_climb_batched(
            problem,
            start,
            criterion,
            thresholds,
            max_iterations=max_iterations,
            context=context,
            budget=budget,
        )
    ctx = problem.evaluation_context(context)
    current_values = ctx.evaluate(start)
    current_score = score_values(current_values, criterion, thresholds)
    crit = plan.criteria_arrays(criterion, thresholds)
    state = plan.state_from(start)
    n_steps = 0
    exhausted = False
    for _ in range(max_iterations):
        with _track("solve.neighborhood"):
            free = plan.free_procs(state)
            n_candidates = plan.count(state, free)
        granted = (
            n_candidates
            if budget is None
            else budget.reserve(n_candidates)
        )
        if granted < n_candidates:
            exhausted = True
        if granted == 0:
            break
        # The fused nopython call: generation + evaluation + scoring +
        # accept replay for one whole descent step.
        with _track("solve.kernel"):
            best_index, best_score = plan.best_step(
                state, free, crit, current_score, granted
            )
        if best_index < 0:
            break
        with _track("solve.accept"):
            state = plan.take(state, free, best_index)
        current_score = best_score
        n_steps += 1
        if exhausted:
            break
    if n_steps:
        current = plan.materialize(state)
        current_values = ctx.evaluate(current)
    else:
        current = start
    return _solution(
        current, current_values, current_score, criterion, n_steps, exhausted
    )


_ENGINES["batched"] = _hill_climb_batched
_ENGINES["scalar"] = _hill_climb_scalar
_ENGINES["compiled"] = _hill_climb_compiled
