"""Energy-greedy mode downgrading (tri-criteria "server problem" heuristic).

Given period and latency thresholds and a starting mapping that meets them
with every processor at full speed, repeatedly apply the energy-saving move
with the best gain that keeps all thresholds satisfied:

* *downgrade*: step one enrolled processor down to its next slower mode;
* *merge*: fuse two adjacent intervals of the same application onto one
  processor, releasing the other (saves its static *and* dynamic energy).

The loop stops when no move keeps the thresholds.  Each iteration removes a
mode step or a processor, so the heuristic is polynomial:
``O((p * m_max + N) ...)`` iterations, each scanning ``O(p + N)`` moves.

This is the practical face of the NP-hard multi-modal tri-criteria problem
(Theorems 26-27); the benches compare it against the exact solver on small
instances and report its scalability on large ones.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from ...core.mapping import Assignment, Mapping
from ...core.objectives import Thresholds
from ...core.problem import ProblemInstance, Solution
from ...core.types import Criterion, MappingRule


def _values_meet(values, thresholds: Thresholds) -> bool:
    if not values.meets(
        period=thresholds.period,
        latency=thresholds.latency,
        energy=thresholds.energy,
    ):
        return False
    if thresholds.per_app_period is not None and any(
        values.periods[a] > thresholds.per_app_period[a] * (1 + 1e-9)
        for a in values.periods
    ):
        return False
    if thresholds.per_app_latency is not None and any(
        values.latencies[a] > thresholds.per_app_latency[a] * (1 + 1e-9)
        for a in values.latencies
    ):
        return False
    return True


def _downgrade_moves(
    problem: ProblemInstance, mapping: Mapping
) -> List[Mapping]:
    out: List[Mapping] = []
    assignments = list(mapping.assignments)
    for idx, x in enumerate(assignments):
        speeds = problem.platform.processor(x.proc).speeds
        slower = [s for s in speeds if s < x.speed]
        if not slower:
            continue
        out.append(
            Mapping.from_assignments(
                assignments[:idx]
                + [
                    Assignment(
                        app=x.app,
                        interval=x.interval,
                        proc=x.proc,
                        speed=slower[-1],  # next mode down
                    )
                ]
                + assignments[idx + 1 :]
            )
        )
    return out


def _merge_moves(problem: ProblemInstance, mapping: Mapping) -> List[Mapping]:
    if problem.rule is not MappingRule.INTERVAL:
        return []
    out: List[Mapping] = []
    assignments = list(mapping.assignments)
    for a_idx in mapping.applications:
        parts = mapping.for_app(a_idx)
        for j in range(len(parts) - 1):
            left, right = parts[j], parts[j + 1]
            rest = [x for x in assignments if x not in (left, right)]
            for host in (left, right):
                out.append(
                    Mapping.from_assignments(
                        rest
                        + [
                            Assignment(
                                app=a_idx,
                                interval=(left.interval[0], right.interval[1]),
                                proc=host.proc,
                                speed=host.speed,
                            )
                        ]
                    )
                )
    return out


def greedy_mode_downgrade(
    problem: ProblemInstance,
    start: Mapping,
    thresholds: Thresholds,
    *,
    context=None,
    budget=None,
) -> Solution:
    """Greedily minimize energy from ``start`` under period/latency
    thresholds; raises nothing when ``start`` itself violates them (the
    returned solution simply keeps the violation -- callers should provide a
    feasible start, e.g. a performance-optimal mapping at full speed).
    Candidates are scored through the shared vectorized kernel with
    incremental delta-evaluation; ``context`` optionally shares a prebuilt
    :class:`repro.kernel.EvaluationContext`.  ``budget`` optionally passes
    a cooperative budget meter (see :class:`repro.strategies.SolveBudget`)
    ticked once per scored candidate; on exhaustion the best mapping found
    so far is returned."""
    ctx = problem.evaluation_context(context)
    current = start
    current_values = ctx.evaluate(current)
    n_moves = 0
    exhausted = False
    while not exhausted:
        best: Optional[Tuple[float, Mapping, object]] = None
        for candidate in _downgrade_moves(problem, current) + _merge_moves(
            problem, current
        ):
            if budget is not None and not budget.tick():
                exhausted = True
                break
            values = ctx.delta_evaluate(candidate, current, current_values)
            if not _values_meet(values, thresholds):
                continue
            e = values.energy
            if e < current_values.energy and (best is None or e < best[0]):
                best = (e, candidate, values)
        if best is None:
            break
        current = best[1]
        current_values = best[2]
        n_moves += 1
    values = current_values
    return Solution(
        mapping=current,
        objective=values.energy,
        values=values,
        solver="greedy-mode-downgrade",
        optimal=False,
        stats={
            "n_moves": float(n_moves),
            "budget_exhausted": float(exhausted),
        },
    )
