"""Period minimization for one-to-one mappings (Theorem 1, Algorithm 1).

On *communication homogeneous* platforms (identical links within each
application, possibly different-speed processors), a one-to-one mapping
minimizing the global weighted period is found in polynomial time:

1. the optimal period belongs to the candidate set
   ``{ W_a * cycle(S_k^a on P_u) : a, k, u }`` because it equals the weighted
   cycle-time of some processor executing some stage;
2. binary search over the sorted candidates; each probe ``T`` is tested with
   the *greedy assignment* procedure (Algorithm 1): keep the ``N`` fastest
   processors, consider them from slowest to fastest, and give each any
   still-free stage it can process within ``T``.

The exchange argument of the paper shows the greedy test is exact, for both
the overlap model (cycle = max of the three activity times) and the
no-overlap model (cycle = their sum).

The same module exposes the greedy assignment on its own, so the test suite
can probe it directly.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.application import Application
from ..core.evaluation import stage_cycle_time
from ..core.exceptions import InfeasibleProblemError, SolverError
from ..core.mapping import Assignment, Mapping
from ..core.platform import Platform
from ..core.problem import ProblemInstance, Solution
from ..core.types import CommunicationModel, MappingRule
from .binary_search import smallest_feasible

#: Stage identifier: (application index, stage index).
StageId = Tuple[int, int]


def _require_comm_homogeneous(platform: Platform, solver: str) -> None:
    if not (platform.has_homogeneous_links or platform.has_per_app_homogeneous_links):
        raise SolverError(
            f"{solver} requires communication-homogeneous links "
            "(Theorem 1 does not hold on fully heterogeneous platforms; "
            "use the exact or heuristic solvers instead)"
        )


def _app_bandwidth(platform: Platform, app_index: int) -> float:
    """The per-application link bandwidth ``b_a`` of a comm-homogeneous
    platform (falls back to the default bandwidth)."""
    return platform.app_bandwidths.get(app_index, platform.default_bandwidth)


def weighted_stage_cycle(
    apps: Sequence[Application],
    platform: Platform,
    stage: StageId,
    speed: float,
    model: CommunicationModel,
) -> float:
    """``W_a * cycle-time`` of one stage on a processor at ``speed`` under
    comm-homogeneous links -- the candidate values of Theorem 1."""
    a, k = stage
    app = apps[a]
    bw = _app_bandwidth(platform, a)
    return app.weight * stage_cycle_time(app, k, speed, bw, model)


def greedy_assignment(
    apps: Sequence[Application],
    platform: Platform,
    period: float,
    model: CommunicationModel = CommunicationModel.OVERLAP,
) -> Optional[Mapping]:
    """Algorithm 1: test whether a one-to-one mapping of weighted period at
    most ``period`` exists; return one if so, ``None`` otherwise.

    Keeps only the ``N`` fastest processors, scans them from slowest to
    fastest, and assigns to each any free stage it can process within the
    period (every processor runs its fastest mode: with no energy criterion,
    faster can only help).
    """
    stages: List[StageId] = [
        (a, k) for a, app in enumerate(apps) for k in range(app.n_stages)
    ]
    n = len(stages)
    if n > platform.n_processors:
        return None
    fastest = platform.fastest_processors(n)
    # Slowest-to-fastest among the N retained processors.
    order = sorted(fastest, key=lambda u: (platform.processor(u).max_speed, u))
    free = set(stages)
    chosen: Dict[StageId, int] = {}
    for u in order:
        speed = platform.processor(u).max_speed
        picked: Optional[StageId] = None
        # The exchange argument of Theorem 1 shows *any* feasible free stage
        # works; iterate in sorted order for determinism.
        for stage in sorted(free):
            if weighted_stage_cycle(apps, platform, stage, speed, model) <= period:
                picked = stage
                break
        if picked is None:
            return None
        free.remove(picked)
        chosen[picked] = u
    return Mapping.from_assignments(
        Assignment(
            app=a,
            interval=(k, k),
            proc=u,
            speed=platform.processor(u).max_speed,
        )
        for (a, k), u in chosen.items()
    )


def period_candidates(
    apps: Sequence[Application],
    platform: Platform,
    model: CommunicationModel = CommunicationModel.OVERLAP,
) -> List[float]:
    """The candidate period set of Theorem 1:
    ``{ W_a * cycle(S_k^a at speed s_u) }`` over all stages and processors.
    Size at most ``n_max * A * p``."""
    out: List[float] = []
    for a, app in enumerate(apps):
        bw = _app_bandwidth(platform, a)
        for k in range(app.n_stages):
            for proc in platform.processors:
                out.append(
                    app.weight
                    * stage_cycle_time(app, k, proc.max_speed, bw, model)
                )
    return out


def minimize_period_one_to_one(problem: ProblemInstance) -> Solution:
    """Theorem 1: optimal one-to-one period on comm-homogeneous platforms.

    Complexity ``O((n_max A p)^2 log(n_max A p))``: the candidate set has
    ``O(n_max A p)`` values, each greedy probe is ``O(N^2)``, and the binary
    search performs ``O(log(n_max A p))`` probes.

    Raises
    ------
    SolverError
        If the platform links are heterogeneous (outside Theorem 1's domain).
    InfeasibleProblemError
        If ``p < N`` (no one-to-one mapping exists at all).
    """
    _require_comm_homogeneous(platform=problem.platform, solver="Theorem 1")
    if problem.n_stages_total > problem.platform.n_processors:
        raise InfeasibleProblemError(
            "one-to-one mapping requires p >= N "
            f"(p={problem.platform.n_processors}, N={problem.n_stages_total})"
        )
    candidates = period_candidates(problem.apps, problem.platform, problem.model)
    result = smallest_feasible(
        candidates,
        lambda t: greedy_assignment(
            problem.apps, problem.platform, t, problem.model
        ),
    )
    if result.witness is None:
        # Cannot happen: the largest candidate is always feasible (assign
        # every stage to the fastest free processor).  Guarded for safety.
        raise InfeasibleProblemError(
            "greedy assignment failed even at the largest candidate period"
        )
    mapping = result.witness
    values = problem.evaluate(mapping)
    return Solution(
        mapping=mapping,
        objective=values.period,
        values=values,
        solver="theorem1-binary-search-greedy",
        optimal=True,
        stats={
            "n_candidates": float(len(set(candidates))),
            "n_feasibility_tests": float(result.n_tests),
        },
    )
