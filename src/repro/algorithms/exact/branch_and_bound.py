"""Exact branch-and-bound solver for every cell of Tables 1 and 2.

Depth-first search placing one interval at a time, application by
application, stage by stage.  A search node extends the current partial
mapping with ``(interval end, processor, mode)``; children enumerate all
admissible extensions.  The three running criteria values (weighted period
lower bound, weighted latency lower bound, accumulated energy) are all
*monotone non-decreasing* along any root-to-leaf path, which yields sound
pruning rules:

* prune when any threshold is already exceeded;
* prune when the running value of the optimized criterion is already at
  least the incumbent.

Interval cycle-times are only fully known once the *next* interval's
processor is chosen (the outgoing bandwidth depends on it); the search
therefore keeps the last placed interval of the current application
*pending* and finalizes its cycle-time when the next processor (or the
virtual output processor) is known.  The pending interval contributes a
partial cycle-time (without its outgoing communication), which is a valid
lower bound under both communication models.

When energy is involved (as criterion or threshold) all processor modes are
enumerated; otherwise every processor is pinned to its fastest mode, as
pure-performance optimality permits.

Exponential in the worst case -- this is the exact arm of the NP-hard
benches -- but the pruning makes it practical far beyond the brute-force
enumerator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...core.exceptions import InfeasibleProblemError, SolverError
from ...core.mapping import Assignment, Mapping
from ...core.objectives import THRESHOLD_RTOL, Thresholds, threshold_ceiling
from ...core.problem import ProblemInstance, Solution
from ...core.types import (
    CommunicationModel,
    Criterion,
    IN_ENDPOINT,
    MappingRule,
    OUT_ENDPOINT,
)
from ...kernel.context import app_arrays

#: Minimum number of interval-end children per ``(processor, mode)``
#: branch before the feasibility screen switches from the scalar loop to
#: one vectorized pass (below this the NumPy call overhead dominates).
_VECTOR_HI_MIN = 8


@dataclass
class _Pending:
    """The last placed interval of the in-progress application, waiting for
    its outgoing bandwidth to be known."""

    proc: int
    t_in: float
    t_comp: float
    out_size: float


def _leq(value: float, bound: float) -> bool:
    """Threshold comparison with the library-wide relative tolerance."""
    return value <= bound * (1 + THRESHOLD_RTOL) + THRESHOLD_RTOL


class _BudgetStop(Exception):
    """Internal signal: the cooperative budget ran out mid-search."""


def exact_minimize(
    problem: ProblemInstance,
    criterion: Criterion,
    thresholds: Thresholds = Thresholds(),
    *,
    fix_max_speed: Optional[bool] = None,
    node_limit: int = 20_000_000,
    budget=None,
    upper_bound: Optional[float] = None,
) -> Solution:
    """Exact optimum of one criterion under thresholds on the others.

    Parameters
    ----------
    problem:
        Any problem instance (all platform classes, both rules, both
        communication models).
    criterion:
        The criterion to minimize.
    thresholds:
        Bounds on the other criteria (global or per-application).
    fix_max_speed:
        Pin every processor to its fastest mode.  Defaults to ``True``
        exactly when energy plays no role.
    node_limit:
        Safety cap on explored nodes; :class:`SolverError` when exceeded.
    budget:
        Optional cooperative budget meter (see
        :class:`repro.strategies.SolveBudget`) ticked once per search
        node.  On exhaustion the incumbent is returned with
        ``optimal=False`` (it is only a feasible bound, not a proven
        optimum); :class:`SolverError` when the budget runs out before
        any feasible mapping was found.
    upper_bound:
        Optional warm-start bound on the objective: the search starts
        with ``best_objective = threshold_ceiling(upper_bound)`` instead
        of ``+inf``, so subtrees that cannot beat an already-known
        solution are pruned immediately.  The caller must guarantee a
        feasible solution with objective ``<= upper_bound`` exists
        (e.g. the incumbent of a neighboring epsilon-constraint cell);
        the seeded ceiling then sits strictly above the true optimum, so
        the search visits the exact same first-optimal leaf as the cold
        run and the returned solution is byte-identical.  A bound below
        every feasible objective makes the search report
        :class:`InfeasibleProblemError` even on feasible instances.

    Raises
    ------
    InfeasibleProblemError
        When no mapping satisfies the thresholds.
    SolverError
        When ``node_limit`` is exceeded, or the budget ran out with no
        incumbent.
    """
    apps = problem.apps
    platform = problem.platform
    model = problem.model
    em = problem.energy_model
    A = len(apps)
    p = platform.n_processors
    if fix_max_speed is None:
        fix_max_speed = (
            criterion is not Criterion.ENERGY and thresholds.energy is None
        )

    period_bounds = [
        thresholds.period_bound_for_app(app, a) for a, app in enumerate(apps)
    ]
    latency_bounds = [
        thresholds.latency_bound_for_app(app, a) for a, app in enumerate(apps)
    ]
    # Precomputed `_leq` right-hand sides and prefix-sum work arrays for
    # the batched child screen (bit-identical to the scalar checks).
    period_ceils = [threshold_ceiling(b) for b in period_bounds]
    latency_ceils = [threshold_ceiling(b) for b in latency_bounds]
    work_prefixes = [app_arrays(app)[0] for app in apps]
    energy_bound = thresholds.energy if thresholds.energy is not None else math.inf

    proc_speeds: List[Tuple[float, ...]] = [
        (platform.processor(u).max_speed,)
        if fix_max_speed
        else platform.processor(u).speeds
        for u in range(p)
    ]

    # Symmetry breaking: when all links are homogeneous, processors with the
    # same speed set and static energy are fully interchangeable -- at each
    # node only the lowest-indexed free member of each class is branched on.
    if platform.has_homogeneous_links:
        class_table: dict = {}
        proc_class: List[int] = []
        for u in range(p):
            key = (
                platform.processor(u).speeds,
                platform.processor(u).static_energy,
            )
            proc_class.append(class_table.setdefault(key, len(class_table)))
        n_classes = len(class_table)
    else:
        proc_class = list(range(p))
        n_classes = p

    # A warm-start bound is seeded through the same `threshold_ceiling`
    # slack as the threshold screens: any leaf tied with the known
    # incumbent still passes `objective < best_objective`, so the first
    # optimal leaf in DFS order -- the cold run's answer -- is kept.
    best_objective = (
        math.inf if upper_bound is None else threshold_ceiling(upper_bound)
    )
    best_assignments: Optional[Tuple[Assignment, ...]] = None
    nodes = 0

    trail: List[Assignment] = []

    def admissible_children(
        a: int,
        stage: int,
        hi_options: Tuple[int, ...],
        speed: float,
        t_in: float,
        base_latency: float,
    ):
        """The ``(hi, t_comp, partial_cycle, new_latency)`` children
        passing the period/latency screens, in ascending ``hi`` order.

        Both screens are monotone in ``hi`` (``t_comp`` only grows), so
        the admitted set is the prefix up to the first violation.  Large
        fan-outs are screened in one vectorized pass over the prefix-sum
        work array instead of one Python arithmetic chain per child;
        the two paths produce bit-identical floats, so pruning -- and
        hence the explored tree and the returned optimum -- is unchanged.
        """
        if len(hi_options) >= _VECTOR_HI_MIN:
            prefix = work_prefixes[a]
            his = np.asarray(hi_options, dtype=np.intp)
            t_comps = (prefix[his + 1] - prefix[stage]) / speed
            if model is CommunicationModel.OVERLAP:
                partials = np.maximum(t_in, t_comps)
            else:
                partials = (t_in + t_comps) + 0.0
            latencies = base_latency + t_comps
            ok = (partials <= period_ceils[a]) & (
                latencies <= latency_ceils[a]
            )
            limit = len(hi_options) if bool(ok.all()) else int(np.argmax(~ok))
            return list(
                zip(
                    hi_options[:limit],
                    t_comps[:limit].tolist(),
                    partials[:limit].tolist(),
                    latencies[:limit].tolist(),
                )
            )
        children = []
        app = apps[a]
        for hi in hi_options:
            t_comp = app.work_sum(stage, hi) / speed
            partial_cycle = model.combine(t_in, t_comp, 0.0)
            if not _leq(partial_cycle, period_bounds[a]):
                break  # t_comp only grows with hi
            new_latency = base_latency + t_comp
            if not _leq(new_latency, latency_bounds[a]):
                break
            children.append((hi, t_comp, partial_cycle, new_latency))
        return children

    def place_app(
        a: int,
        stage: int,
        free: int,  # bitmask of free processors
        pending: Optional[_Pending],
        app_latency: float,
        app_period: float,  # unweighted, finalized cycles of app a so far
        energy: float,
        done_period_w: float,  # weighted period over completed apps
        done_latency_w: float,
    ) -> None:
        nonlocal best_objective, best_assignments, nodes
        nodes += 1
        if nodes > node_limit:
            raise SolverError(
                f"exact_minimize: node limit {node_limit} exceeded"
            )
        if budget is not None and not budget.tick():
            raise _BudgetStop
        if a == A:
            objective = {
                Criterion.PERIOD: done_period_w,
                Criterion.LATENCY: done_latency_w,
                Criterion.ENERGY: energy,
            }[criterion]
            if objective < best_objective:
                best_objective = objective
                best_assignments = tuple(trail)
            return
        app = apps[a]
        n = app.n_stages
        w_a = app.weight
        in_size = app.input_size(stage)
        hi_options = (
            (stage,)
            if problem.rule is MappingRule.ONE_TO_ONE
            else tuple(range(stage, n))
        )
        tried_classes = [False] * n_classes
        for u in range(p):
            if not (free >> u) & 1:
                continue
            if tried_classes[proc_class[u]]:
                continue  # an interchangeable processor was already branched
            tried_classes[proc_class[u]] = True
            # Incoming communication of the new interval.
            if pending is None:
                bw_in = platform.bandwidth(IN_ENDPOINT, u, a)
            else:
                bw_in = platform.bandwidth(pending.proc, u, a)
            t_in = in_size / bw_in
            # Finalize the pending interval: its outgoing link is now known.
            fin_cycle = 0.0
            fin_out = 0.0
            if pending is not None:
                fin_out = pending.out_size / bw_in
                fin_cycle = model.combine(pending.t_in, pending.t_comp, fin_out)
                if not _leq(fin_cycle, period_bounds[a]):
                    continue
            new_app_period = max(app_period, fin_cycle)
            base_latency = app_latency + fin_out
            if pending is None:
                base_latency += t_in  # delta_0 / b, paid exactly once
            if not _leq(base_latency, latency_bounds[a]):
                continue
            for speed in proc_speeds[u]:
                e_add = em.processor_energy(platform.processor(u), speed)
                new_energy = energy + e_add
                if not _leq(new_energy, energy_bound):
                    continue
                if criterion is Criterion.ENERGY and new_energy >= best_objective:
                    continue
                for hi, t_comp, partial_cycle, new_latency in (
                    admissible_children(
                        a, stage, hi_options, speed, t_in, base_latency
                    )
                ):
                    assignment = Assignment(
                        app=a, interval=(stage, hi), proc=u, speed=speed
                    )
                    trail.append(assignment)
                    if hi == n - 1:
                        # Close the application: output to Pout_a.
                        bw_out = platform.bandwidth(u, OUT_ENDPOINT, a)
                        t_out = app.output_size(hi) / bw_out
                        last_cycle = model.combine(t_in, t_comp, t_out)
                        final_latency = new_latency + t_out
                        final_period = max(
                            new_app_period, partial_cycle, last_cycle
                        )
                        if (
                            _leq(last_cycle, period_bounds[a])
                            and _leq(final_latency, latency_bounds[a])
                        ):
                            nxt_period_w = max(
                                done_period_w, w_a * final_period
                            )
                            nxt_latency_w = max(
                                done_latency_w, w_a * final_latency
                            )
                            if not (
                                (
                                    criterion is Criterion.PERIOD
                                    and nxt_period_w >= best_objective
                                )
                                or (
                                    criterion is Criterion.LATENCY
                                    and nxt_latency_w >= best_objective
                                )
                            ):
                                place_app(
                                    a + 1,
                                    0,
                                    free & ~(1 << u),
                                    None,
                                    0.0,
                                    0.0,
                                    new_energy,
                                    nxt_period_w,
                                    nxt_latency_w,
                                )
                    else:
                        prune = False
                        if criterion is Criterion.PERIOD:
                            lb = max(
                                done_period_w,
                                w_a * max(new_app_period, partial_cycle),
                            )
                            prune = lb >= best_objective
                        elif criterion is Criterion.LATENCY:
                            lb = max(done_latency_w, w_a * new_latency)
                            prune = lb >= best_objective
                        if not prune:
                            place_app(
                                a,
                                hi + 1,
                                free & ~(1 << u),
                                _Pending(
                                    proc=u,
                                    t_in=t_in,
                                    t_comp=t_comp,
                                    out_size=app.output_size(hi),
                                ),
                                new_latency,
                                max(new_app_period, partial_cycle),
                                new_energy,
                                done_period_w,
                                done_latency_w,
                            )
                    trail.pop()

    exhausted = False
    try:
        place_app(0, 0, (1 << p) - 1, None, 0.0, 0.0, 0.0, 0.0, 0.0)
    except _BudgetStop:
        exhausted = True
        if best_assignments is None:
            raise SolverError(
                f"exact_minimize: budget exhausted after {nodes} nodes "
                "with no feasible mapping found"
            ) from None
    if best_assignments is None:
        raise InfeasibleProblemError(
            f"exact_minimize: no mapping satisfies the thresholds "
            f"({nodes} nodes explored)"
        )
    mapping = Mapping.from_assignments(best_assignments)
    values = problem.evaluate(mapping)
    return Solution(
        mapping=mapping,
        objective=best_objective,
        values=values,
        solver="branch-and-bound",
        optimal=not exhausted,
        stats={"nodes": float(nodes), "budget_exhausted": float(exhausted)},
    )
