"""Brute-force enumeration of valid mappings.

Enumerates every valid mapping of a problem instance: the product over
applications of their interval partitions (``2^(n_a - 1)`` each), times the
injective assignments of processors to intervals, times the mode choices of
the enrolled processors.  Exponential in every dimension -- strictly a
reference oracle for validating the polynomial algorithms and the
branch-and-bound solver on small instances, and for enumerating exact
Pareto fronts.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator, List, Optional, Sequence, Tuple

from ...core.evaluation import evaluate
from ...core.exceptions import InfeasibleProblemError, SolverError
from ...core.mapping import Assignment, Mapping
from ...core.objectives import Thresholds
from ...core.problem import ProblemInstance, Solution
from ...core.types import Criterion, Interval, MappingRule


def _per_app_partitions(
    problem: ProblemInstance,
) -> List[List[Tuple[Interval, ...]]]:
    """All admissible stage partitions of each application under the rule."""
    out: List[List[Tuple[Interval, ...]]] = []
    for app in problem.apps:
        if problem.rule is MappingRule.ONE_TO_ONE:
            out.append(
                [tuple((k, k) for k in range(app.n_stages))]
            )
        else:
            out.append(list(app.iter_interval_partitions()))
    return out


def iter_mappings(
    problem: ProblemInstance,
    *,
    max_speed_only: bool = False,
) -> Iterator[Mapping]:
    """Yield every valid mapping of the problem instance.

    With ``max_speed_only`` every enrolled processor runs its fastest mode
    (sufficient for pure performance criteria: running faster can only
    improve period and latency, Section 2); otherwise all mode combinations
    are enumerated.
    """
    p = problem.platform.n_processors
    partitions = _per_app_partitions(problem)
    for combo in itertools.product(*partitions):
        flat: List[Tuple[int, Interval]] = [
            (a, interval)
            for a, parts in enumerate(combo)
            for interval in parts
        ]
        if len(flat) > p:
            continue
        for procs in itertools.permutations(range(p), len(flat)):
            if max_speed_only:
                speed_choices: Iterator[Tuple[float, ...]] = iter(
                    [
                        tuple(
                            problem.platform.processor(u).max_speed
                            for u in procs
                        )
                    ]
                )
            else:
                speed_choices = itertools.product(
                    *(problem.platform.processor(u).speeds for u in procs)
                )
            for speeds in speed_choices:
                yield Mapping.from_assignments(
                    Assignment(app=a, interval=iv, proc=u, speed=s)
                    for (a, iv), u, s in zip(flat, procs, speeds)
                )


def brute_force_minimize(
    problem: ProblemInstance,
    criterion: Criterion,
    thresholds: Thresholds = Thresholds(),
    *,
    max_speed_only: Optional[bool] = None,
    budget=None,
) -> Solution:
    """Exhaustively find an optimal mapping for one criterion under
    thresholds on the others.

    ``max_speed_only`` defaults to ``True`` exactly when the energy plays no
    role (neither the criterion nor a threshold), mirroring the paper's
    observation that processors then always run flat out.  ``budget``
    optionally passes a cooperative budget meter (see
    :class:`repro.strategies.SolveBudget`) ticked once per enumerated
    mapping; on exhaustion the best mapping seen so far is returned with
    ``optimal=False``.
    """
    if max_speed_only is None:
        max_speed_only = (
            criterion is not Criterion.ENERGY and thresholds.energy is None
        )
    best: Optional[Tuple[float, Mapping]] = None
    n_seen = 0
    exhausted = False
    for mapping in iter_mappings(problem, max_speed_only=max_speed_only):
        if budget is not None and not budget.tick():
            exhausted = True
            break
        n_seen += 1
        values = problem.evaluate(mapping)
        if not values.meets(
            period=thresholds.period,
            latency=thresholds.latency,
            energy=thresholds.energy,
        ):
            continue
        if thresholds.per_app_period is not None and any(
            values.periods[a] > thresholds.per_app_period[a] * (1 + 1e-9)
            for a in values.periods
        ):
            continue
        if thresholds.per_app_latency is not None and any(
            values.latencies[a] > thresholds.per_app_latency[a] * (1 + 1e-9)
            for a in values.latencies
        ):
            continue
        objective = {
            Criterion.PERIOD: values.period,
            Criterion.LATENCY: values.latency,
            Criterion.ENERGY: values.energy,
        }[criterion]
        if best is None or objective < best[0]:
            best = (objective, mapping)
    if best is None:
        if exhausted:
            # Not proven infeasible: the enumeration was cut short.
            raise SolverError(
                f"brute force: budget exhausted after {n_seen} mappings "
                "with no feasible mapping found"
            )
        raise InfeasibleProblemError(
            f"brute force: no valid mapping meets the thresholds "
            f"({n_seen} mappings enumerated)"
        )
    mapping = best[1]
    values = problem.evaluate(mapping)
    return Solution(
        mapping=mapping,
        objective=best[0],
        values=values,
        solver="brute-force",
        optimal=not exhausted,
        stats={"n_mappings": float(n_seen), "budget_exhausted": float(exhausted)},
    )
