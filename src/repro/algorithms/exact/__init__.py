"""Exact solvers for the NP-hard cells of Tables 1 and 2.

Two independent implementations:

* :mod:`repro.algorithms.exact.brute_force` -- full enumeration of valid
  mappings (partitions x processor permutations x mode choices); the
  reference oracle for the test suite, usable only on tiny instances;
* :mod:`repro.algorithms.exact.branch_and_bound` -- depth-first search with
  monotone partial-cost pruning; exact on any instance, practical up to a
  few tens of stages/processors depending on the cell.

Both handle every platform class, both mapping rules, both communication
models, all three criteria and arbitrary thresholds; they are the baseline
arm of the NP-hardness benches (exponential blowup vs. the heuristics).
"""

from .branch_and_bound import exact_minimize
from .brute_force import brute_force_minimize, iter_mappings

__all__ = ["brute_force_minimize", "exact_minimize", "iter_mappings"]
