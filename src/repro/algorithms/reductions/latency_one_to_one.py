"""Theorem 9 reduction: 3-PARTITION -> one-to-one latency minimization with
heterogeneous processors, homogeneous pipelines and no communication.

Gadget: for a 3-PARTITION instance ``(a_1 .. a_3m, B)`` build

* ``m`` identical applications of 3 unit-work stages with zero-size data;
* ``p = 3m`` uni-modal processors with speeds ``1 / a_j``;

and ask for a global latency of at most ``B``.  Stage ``i`` of application
``j`` placed on the processor of speed ``1/a`` contributes exactly ``a`` to
the application latency (no communications), so application latencies are
the triple sums -- at most ``B`` for all applications exactly when the
triples partition the values.

Theorems 10 (priority weights) and 11 (max-stretch) reuse the gadget with
``w = 1/W_a`` rescaling, exposed through the ``weights`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ...core.application import Application
from ...core.exceptions import InvalidMappingError
from ...core.mapping import Assignment, Mapping
from ...core.platform import Platform
from ...core.problem import ProblemInstance
from ...core.processor import Processor
from ...core.types import CommunicationModel, MappingRule
from .partition import ThreePartitionInstance


@dataclass(frozen=True)
class LatencyOneToOneReduction:
    """The Theorem 9 gadget for one 3-PARTITION instance."""

    source: ThreePartitionInstance
    problem: ProblemInstance
    #: The decision threshold: "is there a mapping of latency <= target?"
    target_latency: float

    @classmethod
    def build(
        cls,
        source: ThreePartitionInstance,
        *,
        weights: Optional[Sequence[float]] = None,
        model: CommunicationModel = CommunicationModel.OVERLAP,
    ) -> "LatencyOneToOneReduction":
        """Construct the gadget (Theorem 9; Theorem 10 with weights)."""
        m = source.m
        if weights is None:
            weights = [1.0] * m
        if len(weights) != m:
            raise ValueError(f"need {m} weights, got {len(weights)}")
        apps = tuple(
            Application.homogeneous(
                3,
                work=1.0 / weights[j],
                output_size=0.0,
                input_data_size=0.0,
                weight=weights[j],
                name=f"pipeline-{j + 1}",
            )
            for j in range(m)
        )
        platform = Platform(
            processors=tuple(
                Processor(speeds=(1.0 / a,), name=f"P{j + 1}")
                for j, a in enumerate(source.values)
            ),
            default_bandwidth=1.0,
            name="theorem9-gadget",
        )
        problem = ProblemInstance(
            apps=apps,
            platform=platform,
            rule=MappingRule.ONE_TO_ONE,
            model=model,
        )
        return cls(
            source=source, problem=problem, target_latency=float(source.bound)
        )

    # ------------------------------------------------------------------
    def mapping_from_partition(
        self, triples: Sequence[Sequence[int]]
    ) -> Mapping:
        """Forward transfer: the three stages of application ``j`` go to its
        triple's processors (one each, any order)."""
        assignments: List[Assignment] = []
        for app_index, triple in enumerate(triples):
            if len(triple) != 3:
                raise InvalidMappingError(f"triple {triple} must have size 3")
            for k, proc_index in enumerate(triple):
                assignments.append(
                    Assignment(
                        app=app_index,
                        interval=(k, k),
                        proc=proc_index,
                        speed=1.0 / self.source.values[proc_index],
                    )
                )
        return Mapping.from_assignments(assignments)

    def partition_from_mapping(
        self, mapping: Mapping
    ) -> Tuple[Tuple[int, ...], ...]:
        """Backward transfer: the processors of each application form its
        triple; validity is checked against the bound ``B``."""
        groups: List[Tuple[int, ...]] = []
        for a in range(self.source.m):
            procs = tuple(sorted(x.proc for x in mapping.for_app(a)))
            total = sum(self.source.values[u] for u in procs)
            if len(procs) != 3 or total != self.source.bound:
                raise InvalidMappingError(
                    f"application {a}: processors {procs} sum to {total}, "
                    f"expected a triple summing to {self.source.bound}"
                )
            groups.append(procs)
        return tuple(groups)

    def forward_value(self, triples: Sequence[Sequence[int]]) -> float:
        """Weighted global latency of the forward-transferred mapping."""
        mapping = self.mapping_from_partition(triples)
        return self.problem.evaluate(mapping).latency
