"""2-PARTITION and 3-PARTITION source problems.

The paper's hardness proofs reduce from:

* **2-PARTITION** [Garey & Johnson]: given positive integers
  ``a_1 .. a_n``, is there a subset ``I`` with
  ``sum_{i in I} a_i = sum_{i not in I} a_i``?  (Theorems 26, 27.)
* **3-PARTITION** (strongly NP-complete): given ``B`` and ``3m`` integers
  with ``B/4 < a_i < B/2`` and ``sum a_i = m B``, can they be split into
  ``m`` triples each summing to ``B``?  (Theorems 5-7, 9-11.)

Both come with exact solvers (pseudo-polynomial subset-sum DP, respectively
pruned backtracking) so the reduction tests can label source instances, and
with seeded generators for yes- and unconstrained instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class TwoPartitionInstance:
    """A 2-PARTITION instance over strictly positive integers."""

    values: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("2-PARTITION needs at least one value")
        if any(v <= 0 or int(v) != v for v in self.values):
            raise ValueError("2-PARTITION values must be positive integers")
        object.__setattr__(self, "values", tuple(int(v) for v in self.values))

    @property
    def total(self) -> int:
        """The sum ``S`` of all values."""
        return sum(self.values)

    def solve(self) -> Optional[FrozenSet[int]]:
        """An index subset summing to ``S/2``, or ``None``.

        Pseudo-polynomial subset-sum dynamic program, ``O(n S)``.
        """
        S = self.total
        if S % 2 != 0:
            return None
        half = S // 2
        # reach[t] = index (1-based) of a value last used to reach sum t.
        reach: List[Optional[int]] = [None] * (half + 1)
        reach[0] = 0
        for idx, v in enumerate(self.values, start=1):
            for t in range(half, v - 1, -1):
                if reach[t] is None and reach[t - v] is not None and reach[t - v] < idx:
                    reach[t] = idx
        if reach[half] is None:
            return None
        subset = set()
        t = half
        while t > 0:
            idx = reach[t]
            assert idx is not None and idx > 0
            subset.add(idx - 1)
            t -= self.values[idx - 1]
        return frozenset(subset)

    def is_yes_instance(self) -> bool:
        """True when a balanced partition exists."""
        return self.solve() is not None

    def check(self, subset: FrozenSet[int]) -> bool:
        """Verify a claimed solution."""
        inside = sum(self.values[i] for i in subset)
        return 2 * inside == self.total


@dataclass(frozen=True)
class ThreePartitionInstance:
    """A 3-PARTITION instance: ``3m`` values, target ``B`` per triple."""

    values: Tuple[int, ...]
    bound: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(int(v) for v in self.values))
        if len(self.values) % 3 != 0 or not self.values:
            raise ValueError("3-PARTITION needs 3m values")
        if sum(self.values) != self.m * self.bound:
            raise ValueError(
                f"values must sum to m*B = {self.m * self.bound}, "
                f"got {sum(self.values)}"
            )
        for v in self.values:
            if not (self.bound / 4 < v < self.bound / 2):
                raise ValueError(
                    f"every value must lie strictly between B/4 and B/2 "
                    f"(B={self.bound}, got {v})"
                )

    @property
    def m(self) -> int:
        """The number of triples."""
        return len(self.values) // 3

    def solve(self) -> Optional[Tuple[Tuple[int, int, int], ...]]:
        """A partition into ``m`` index triples each summing to ``B``, or
        ``None``.  Pruned backtracking (exact; intended for small ``m``)."""
        m, B = self.m, self.bound
        order = sorted(range(3 * m), key=lambda i: -self.values[i])
        groups: List[List[int]] = [[] for _ in range(m)]
        sums = [0] * m

        def backtrack(pos: int) -> bool:
            if pos == 3 * m:
                return all(s == B for s in sums)
            i = order[pos]
            v = self.values[i]
            seen_states = set()
            for g in range(m):
                state = (sums[g], len(groups[g]))
                if state in seen_states:
                    continue  # symmetric group
                seen_states.add(state)
                if len(groups[g]) >= 3 or sums[g] + v > B:
                    continue
                groups[g].append(i)
                sums[g] += v
                if backtrack(pos + 1):
                    return True
                groups[g].pop()
                sums[g] -= v
            return False

        if backtrack(0):
            return tuple(tuple(sorted(g)) for g in groups)  # type: ignore[misc]
        return None

    def is_yes_instance(self) -> bool:
        """True when a valid triple partition exists."""
        return self.solve() is not None

    def check(self, triples: Sequence[Sequence[int]]) -> bool:
        """Verify a claimed solution."""
        flat = sorted(i for t in triples for i in t)
        if flat != list(range(3 * self.m)):
            return False
        return all(
            len(t) == 3 and sum(self.values[i] for i in t) == self.bound
            for t in triples
        )


def random_two_partition_instance(
    rng: np.random.Generator,
    n: int,
    max_value: int = 12,
    *,
    force_yes: bool = False,
) -> TwoPartitionInstance:
    """A random 2-PARTITION instance; with ``force_yes`` the last value is
    adjusted so a balanced partition surely exists."""
    values = [int(rng.integers(1, max_value + 1)) for _ in range(n)]
    if force_yes:
        # Split indices randomly and rebalance the lighter side.
        half = list(rng.permutation(n))[: n // 2]
        inside = sum(values[i] for i in half)
        outside = sum(values) - inside
        diff = abs(inside - outside)
        if diff:
            values.append(diff)
    return TwoPartitionInstance(values=tuple(values))


def random_three_partition_yes_instance(
    rng: np.random.Generator,
    m: int,
    bound: int = 100,
) -> ThreePartitionInstance:
    """A solvable 3-PARTITION instance built triple by triple.

    Each triple ``(a, b, c)`` sums to ``bound`` with every element strictly
    between ``bound/4`` and ``bound/2`` (rejection sampling).
    """
    lo = bound // 4 + 1
    hi = (bound - 1) // 2  # strictly below B/2 for integer values
    values: List[int] = []
    for _ in range(m):
        while True:
            a = int(rng.integers(lo, hi + 1))
            b = int(rng.integers(lo, hi + 1))
            c = bound - a - b
            if lo <= c <= hi:
                values.extend((a, b, c))
                break
    order = rng.permutation(len(values))
    return ThreePartitionInstance(
        values=tuple(values[i] for i in order), bound=bound
    )
