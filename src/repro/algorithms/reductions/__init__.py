"""Executable NP-hardness reductions (the proofs of Sections 4-5 as code).

Each module builds the problem-instance *gadget* used by one hardness proof,
and provides the forward (source solution -> mapping) and backward (mapping
-> source solution) transfers, so the test suite can check the reduction
equivalence on solvable and unsolvable source instances:

* :mod:`partition` -- 2-PARTITION and 3-PARTITION instances with
  pseudo-polynomial / backtracking solvers and seeded generators;
* :mod:`period_interval` -- Theorem 5 (period, interval mappings,
  heterogeneous processors, homogeneous pipelines, no communication);
* :mod:`latency_one_to_one` -- Theorem 9 (latency, one-to-one mappings,
  same platform family);
* :mod:`tricriteria` -- Theorems 26 and 27 (tri-criteria with multi-modal
  processors on fully homogeneous platforms, one application, no
  communication).
"""

from .latency_one_to_one import LatencyOneToOneReduction
from .partition import (
    ThreePartitionInstance,
    TwoPartitionInstance,
    random_three_partition_yes_instance,
    random_two_partition_instance,
)
from .period_interval import PeriodIntervalReduction
from .tricriteria import TriCriteriaIntervalReduction, TriCriteriaOneToOneReduction

__all__ = [
    "LatencyOneToOneReduction",
    "PeriodIntervalReduction",
    "ThreePartitionInstance",
    "TriCriteriaIntervalReduction",
    "TriCriteriaOneToOneReduction",
    "TwoPartitionInstance",
    "random_three_partition_yes_instance",
    "random_two_partition_instance",
]
