"""Theorems 26-27 reductions: 2-PARTITION -> tri-criteria mapping with
multi-modal processors on a fully homogeneous platform (single application,
no communication).

One-to-one gadget (Theorem 26)
------------------------------
For values ``a_1 .. a_n`` (sum ``S``) pick a scale ``K`` and a perturbation
``X`` and build ``n`` identical processors whose ``2n`` modes come in pairs::

    s_{2i-1} = K^i
    s_{2i}   = K^i + a_i X / K^{i (alpha - 1)}

and one application of ``n`` stages with works ``w_i = K^{i (alpha + 1)}``.

*Note on the published constant*: the paper prints the perturbed speed as
``K^i + a_i X / K^{i alpha}``; its own first-order expansions
(``Delta E ~ alpha a_i X`` and ``Delta L ~ a_i X``) only come out with the
exponent ``i (alpha - 1)`` used here, so we implement the internally
consistent constant and validate the construction numerically.

With the thresholds ::

    E^o = E* + alpha X (S/2 + 1/2)        E* = sum_i K^{i alpha}
    L^o = L* - X (S/2 - 1/2)              L* = E*
    T^o = L^o

a mapping meeting all three exists iff the 2-PARTITION instance is solvable:
executing stage ``i`` in the *upper* mode trades ``~ a_i X`` of latency for
``~ alpha a_i X`` of energy, so the reachable (energy, latency) pairs encode
subset sums of the ``a_i``.  ``K`` is chosen large enough that stage ``i``
can only run at the level-``i`` pair (any slower mode blows the latency
bound, any faster one the energy bound), and ``X`` small enough that the
expansion residuals stay below ``X alpha / 2n`` (energy) and ``X / 2n``
(latency); :meth:`TriCriteriaOneToOneReduction.build` enforces both
numerically and raises if the float precision cannot support the instance.

Interval gadget (Theorem 27)
----------------------------
Insert ``n - 1`` *big* stages of work ``K^{(n+1)(alpha+1)}`` between the
previous stages, give every processor an extra top mode ``K^{n+1}`` and ask
for period ``T^o = K^{(n+1) alpha}``: each big stage must sit alone on a
processor running the top mode, forcing every small stage into its own
interval and reducing the problem to the one-to-one gadget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ...core.application import Application
from ...core.energy import EnergyModel
from ...core.mapping import Assignment, Mapping
from ...core.objectives import Thresholds
from ...core.platform import Platform
from ...core.problem import ProblemInstance
from ...core.processor import Processor
from ...core.types import CommunicationModel, MappingRule
from .partition import TwoPartitionInstance


def _choose_gadget_constants(
    values: Sequence[int], alpha: float
) -> Tuple[float, float]:
    """Pick ``K`` (scale) and ``X`` (perturbation) satisfying the proof's
    separation and residual constraints, numerically."""
    n = len(values)
    S = sum(values)

    def k_ok(K: float) -> bool:
        # Separation constraints of the proof (with safety margin 2):
        # skipping the level-j pair must blow the latency bound; doubling a
        # level must blow the energy bound.
        for j in range(2, n + 1):
            lhs1 = K ** (j * alpha)
            rhs1 = sum(K ** (i * alpha) for i in range(1, j)) + alpha * (
                S / 2 + 1.0
            )
            lhs2 = K ** (j * alpha + 1)
            rhs2 = (
                sum(K ** (i * alpha) for i in range(1, j + 1))
                + K ** (alpha + 1) / K ** (j - 1) * values[j - 2]
                + 1.0
                + S / 2
            )
            if not (lhs1 > 2 * rhs1 and lhs2 > 2 * rhs2):
                return False
        return True

    K = 2.0
    while not k_ok(K):
        K += 1.0
        if K > 1e6:  # pragma: no cover - defensive
            raise ValueError("could not find a suitable K for the gadget")

    def residuals_ok(X: float) -> bool:
        for i in range(1, n + 1):
            a_i = values[i - 1]
            lo = K**i
            hi = K**i + a_i * X / K ** (i * (alpha - 1))
            w_i = K ** (i * (alpha + 1))
            f_energy = (hi**alpha - lo**alpha) - alpha * a_i * X
            f_latency = a_i * X - (w_i / lo - w_i / hi)
            if not (abs(f_energy) < X * alpha / (2 * n)):
                return False
            if not (abs(f_latency) < X / (2 * n)):
                return False
        return True

    X = 0.5
    while X > 1e-14 and not residuals_ok(X):
        X /= 2.0
    if not residuals_ok(X):
        raise ValueError(
            "float precision cannot support the gadget for these values; "
            "use a smaller instance"
        )
    return K, X


@dataclass(frozen=True)
class TriCriteriaOneToOneReduction:
    """The Theorem 26 gadget for one 2-PARTITION instance."""

    source: TwoPartitionInstance
    problem: ProblemInstance
    thresholds: Thresholds
    scale: float  # K
    perturbation: float  # X
    alpha: float
    base_energy: float  # E*
    base_latency: float  # L*

    @classmethod
    def build(
        cls,
        source: TwoPartitionInstance,
        *,
        alpha: float = 2.0,
        model: CommunicationModel = CommunicationModel.OVERLAP,
    ) -> "TriCriteriaOneToOneReduction":
        """Construct the gadget; raises ``ValueError`` when float precision
        cannot support the instance (keep ``n`` and the values small)."""
        values = source.values
        n = len(values)
        S = source.total
        K, X = _choose_gadget_constants(values, alpha)

        speeds: List[float] = []
        for i in range(1, n + 1):
            speeds.append(K**i)
            speeds.append(K**i + values[i - 1] * X / K ** (i * (alpha - 1)))
        app = Application.from_lists(
            works=[K ** (i * (alpha + 1)) for i in range(1, n + 1)],
            output_sizes=[0.0] * n,
            input_data_size=0.0,
            name="theorem26-app",
        )
        platform = Platform(
            processors=tuple(
                Processor(speeds=tuple(speeds), name=f"P{u + 1}")
                for u in range(n)
            ),
            default_bandwidth=1.0,
            name="theorem26-gadget",
        )
        problem = ProblemInstance(
            apps=(app,),
            platform=platform,
            rule=MappingRule.ONE_TO_ONE,
            model=model,
            energy_model=EnergyModel(alpha=alpha),
        )
        e_star = sum(K ** (i * alpha) for i in range(1, n + 1))
        l_star = e_star  # w_i / s_{2i-1} = K^{i alpha}
        e_bound = e_star + alpha * X * (S / 2 + 0.5)
        l_bound = l_star - X * (S / 2 - 0.5)
        return cls(
            source=source,
            problem=problem,
            thresholds=Thresholds(
                period=l_bound, latency=l_bound, energy=e_bound
            ),
            scale=K,
            perturbation=X,
            alpha=alpha,
            base_energy=e_star,
            base_latency=l_star,
        )

    # ------------------------------------------------------------------
    def mapping_from_subset(self, subset: FrozenSet[int]) -> Mapping:
        """Forward transfer: stage ``i`` runs on processor ``i``, in the
        upper mode of its pair when ``i`` is in the subset."""
        n = len(self.source.values)
        assignments = []
        for i in range(n):
            K, X, a_i = self.scale, self.perturbation, self.source.values[i]
            lo = K ** (i + 1)
            hi = lo + a_i * X / K ** ((i + 1) * (self.alpha - 1))
            speed = hi if i in subset else lo
            assignments.append(
                Assignment(app=0, interval=(i, i), proc=i, speed=speed)
            )
        return Mapping.from_assignments(assignments)

    def subset_from_mapping(self, mapping: Mapping) -> FrozenSet[int]:
        """Backward transfer: read the subset off the chosen modes (stage
        ``i`` in the subset iff it runs above its base speed ``K^{i+1}``)."""
        subset = set()
        for x in mapping.for_app(0):
            i = x.interval[0]
            lo = self.scale ** (i + 1)
            if x.speed > lo * (1 + 1e-12):
                subset.add(i)
        return frozenset(subset)


@dataclass(frozen=True)
class TriCriteriaIntervalReduction:
    """The Theorem 27 gadget: big separator stages force one-to-one."""

    source: TwoPartitionInstance
    problem: ProblemInstance
    thresholds: Thresholds
    inner: TriCriteriaOneToOneReduction

    @classmethod
    def build(
        cls,
        source: TwoPartitionInstance,
        *,
        alpha: float = 2.0,
        model: CommunicationModel = CommunicationModel.OVERLAP,
    ) -> "TriCriteriaIntervalReduction":
        """Construct the interval gadget on top of the Theorem 26 one."""
        inner = TriCriteriaOneToOneReduction.build(
            source, alpha=alpha, model=model
        )
        values = source.values
        n = len(values)
        K, X = inner.scale, inner.perturbation
        big_speed = K ** (n + 1)
        big_work = K ** ((n + 1) * (alpha + 1))
        big_energy = big_speed**alpha  # = K^{(n+1) alpha}

        works: List[float] = []
        for i in range(1, n + 1):
            works.append(K ** (i * (alpha + 1)))
            if i < n:
                works.append(big_work)
        app = Application.from_lists(
            works=works,
            output_sizes=[0.0] * len(works),
            input_data_size=0.0,
            name="theorem27-app",
        )
        small_speeds = inner.problem.platform.processors[0].speeds
        platform = Platform(
            processors=tuple(
                Processor(
                    speeds=tuple(small_speeds) + (big_speed,),
                    name=f"P{u + 1}",
                )
                for u in range(2 * n - 1)
            ),
            default_bandwidth=1.0,
            name="theorem27-gadget",
        )
        problem = ProblemInstance(
            apps=(app,),
            platform=platform,
            rule=MappingRule.INTERVAL,
            model=model,
            energy_model=EnergyModel(alpha=alpha),
        )
        S = source.total
        e_star, l_star = inner.base_energy, inner.base_latency
        e_bound = (n - 1) * big_energy + e_star + alpha * X * (S / 2 + 0.5)
        l_bound = (n - 1) * big_energy + l_star - X * (S / 2 - 0.5)
        t_bound = big_energy  # K^{(n+1) alpha}: one big stage per period
        return cls(
            source=source,
            problem=problem,
            thresholds=Thresholds(
                period=t_bound, latency=l_bound, energy=e_bound
            ),
            inner=inner,
        )

    def mapping_from_subset(self, subset: FrozenSet[int]) -> Mapping:
        """Forward transfer: every stage alone on its own processor; big
        stages in the top mode, small stage ``i`` at its pair level."""
        n = len(self.source.values)
        K, X, alpha = (
            self.inner.scale,
            self.inner.perturbation,
            self.inner.alpha,
        )
        big_speed = K ** (n + 1)
        assignments = []
        for pos in range(2 * n - 1):
            if pos % 2 == 1:  # big separator stage
                speed = big_speed
            else:
                i = pos // 2  # small stage index, 0-based
                lo = K ** (i + 1)
                hi = lo + self.source.values[i] * X / K ** (
                    (i + 1) * (alpha - 1)
                )
                speed = hi if i in subset else lo
            assignments.append(
                Assignment(app=0, interval=(pos, pos), proc=pos, speed=speed)
            )
        return Mapping.from_assignments(assignments)
