"""Theorem 5 reduction: 3-PARTITION -> interval period minimization with
heterogeneous processors, homogeneous pipelines and no communication.

Gadget: for a 3-PARTITION instance ``(a_1 .. a_3m, B)`` build

* ``m`` identical applications of ``B`` unit-work stages with zero-size
  data (the ``special-app`` family);
* ``p = 3m`` uni-modal processors with speeds ``a_1 .. a_3m``;

and ask for a global period of at most 1.  A triple partition maps each
application onto its triple's three processors (processor of speed ``a``
hosting ``a`` consecutive stages, cycle-time exactly 1); conversely, a
period-1 mapping saturates every processor (total work ``mB`` equals total
speed), forcing exactly three processors per application with speeds
summing to ``B`` -- a triple partition.

The weighted variants of Theorems 6 (priority weights, ``w = 1/W_a``
rescaling) and 7 (max-stretch) use the same gadget; the builder accepts
arbitrary per-application weights and scales the stage works accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ...core.application import Application
from ...core.exceptions import InvalidMappingError
from ...core.mapping import Assignment, Mapping
from ...core.platform import Platform
from ...core.problem import ProblemInstance
from ...core.processor import Processor
from ...core.types import CommunicationModel, MappingRule
from .partition import ThreePartitionInstance


@dataclass(frozen=True)
class PeriodIntervalReduction:
    """The Theorem 5 gadget for one 3-PARTITION instance."""

    source: ThreePartitionInstance
    problem: ProblemInstance
    #: The decision threshold: "is there a mapping of period <= target?"
    target_period: float

    @classmethod
    def build(
        cls,
        source: ThreePartitionInstance,
        *,
        weights: Optional[Sequence[float]] = None,
        model: CommunicationModel = CommunicationModel.OVERLAP,
    ) -> "PeriodIntervalReduction":
        """Construct the gadget.

        Without ``weights`` this is exactly Theorem 5 (all ``W_a = 1``,
        unit works, target period 1).  With weights it is Theorem 6: stage
        works become ``1 / W_a`` and, after the rescaling argument, the
        weighted decision threshold is still 1.
        """
        m, B = source.m, source.bound
        if weights is None:
            weights = [1.0] * m
        if len(weights) != m:
            raise ValueError(f"need {m} weights, got {len(weights)}")
        apps = tuple(
            Application.homogeneous(
                B,
                work=1.0 / weights[j],
                output_size=0.0,
                input_data_size=0.0,
                weight=weights[j],
                name=f"pipeline-{j + 1}",
            )
            for j in range(m)
        )
        platform = Platform(
            processors=tuple(
                Processor(speeds=(float(a),), name=f"P{j + 1}")
                for j, a in enumerate(source.values)
            ),
            default_bandwidth=1.0,
            name="theorem5-gadget",
        )
        problem = ProblemInstance(
            apps=apps,
            platform=platform,
            rule=MappingRule.INTERVAL,
            model=model,
        )
        return cls(source=source, problem=problem, target_period=1.0)

    # ------------------------------------------------------------------
    # Solution transfers
    # ------------------------------------------------------------------
    def mapping_from_partition(
        self, triples: Sequence[Sequence[int]]
    ) -> Mapping:
        """Forward transfer: a triple partition becomes a period-1 mapping
        (processor of speed ``a`` hosts ``a * w`` consecutive work units,
        i.e. ``a`` stages in the unweighted gadget)."""
        assignments: List[Assignment] = []
        for app_index, triple in enumerate(triples):
            start = 0
            for proc_index in triple:
                count = self.source.values[proc_index]
                assignments.append(
                    Assignment(
                        app=app_index,
                        interval=(start, start + count - 1),
                        proc=proc_index,
                        speed=float(self.source.values[proc_index]),
                    )
                )
                start += count
            if start != self.source.bound:
                raise InvalidMappingError(
                    f"triple {triple} does not cover the {self.source.bound} "
                    "stages"
                )
        return Mapping.from_assignments(assignments)

    def partition_from_mapping(
        self, mapping: Mapping
    ) -> Tuple[Tuple[int, ...], ...]:
        """Backward transfer: read the triple partition off a period-1
        mapping (the processors serving each application form its triple).

        Raises :class:`InvalidMappingError` when the mapping does not
        encode a partition (some group not summing to ``B``)."""
        groups: List[Tuple[int, ...]] = []
        for a in range(self.source.m):
            procs = tuple(sorted(x.proc for x in mapping.for_app(a)))
            total = sum(self.source.values[u] for u in procs)
            if total != self.source.bound:
                raise InvalidMappingError(
                    f"application {a}: processor speeds sum to {total}, "
                    f"expected {self.source.bound}"
                )
            groups.append(procs)
        return tuple(groups)

    def forward_value(self, triples: Sequence[Sequence[int]]) -> float:
        """Weighted global period of the forward-transferred mapping
        (must be exactly the target for valid partitions)."""
        mapping = self.mapping_from_partition(triples)
        return self.problem.evaluate(mapping).period
