"""Bi-criteria period/latency optimization on fully homogeneous platforms
(Theorems 14, 15 and 16).

*One-to-one* (Theorem 14): all one-to-one mappings are equivalent on a fully
homogeneous platform, so the canonical mapping simultaneously optimizes both
criteria; only the threshold check remains.

*Interval, single application* (Theorem 15): a dynamic program computes, for
every stage prefix and processor count, the minimum latency achievable by an
interval mapping whose period does not exceed a bound::

    L(i, q) = min( L(i, q-1),
                   min_{j < i, cycle(j..i-1) <= T_bound}
                        L(j, q-1) + sum w / s + delta_i / b )

initialized with ``L(0, 0) = delta_0 / b`` (the input communication is paid
exactly once).  The dual problem -- minimum period under a latency bound --
is solved by a binary search over the candidate period set (all individual
cycle-time terms for the overlap model, all interval cycle-times for the
no-overlap model), each probe running the DP above.

*Interval, several applications* (Theorem 16): Algorithm 2 distributes the
processors using the single-application DP as oracle; per-application
thresholds come from the global bound divided by the weight ``W_a`` (or from
an explicit per-application table).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.application import Application
from ..core.exceptions import InfeasibleProblemError, SolverError
from ..core.mapping import Assignment, Mapping
from ..core.objectives import Thresholds, meets_threshold, threshold_ceiling
from ..core.problem import ProblemInstance, Solution
from ..core.types import CommunicationModel, Interval, PlatformClass
from ..kernel.vectorized import (
    interval_cycle_matrix,
    latency_segment_matrix,
)
from .binary_search import smallest_feasible
from .latency import canonical_one_to_one_mapping
from .processor_allocation import allocate_processors


@dataclass(frozen=True)
class LatencyTable:
    """Min-latency DP results for one application under a period bound.

    ``latencies[q]`` is the minimum latency with at most ``q`` processors
    (``math.inf`` when the period bound cannot be met); index 0 is the
    ``inf`` sentinel.  :meth:`reconstruct` rebuilds an optimal partition.
    """

    app: Application
    speed: float
    bandwidth: float
    model: CommunicationModel
    period_bound: float
    latencies: Tuple[float, ...]
    parents: Tuple[Tuple[int, ...], ...]

    @property
    def max_procs(self) -> int:
        """The largest processor count tabulated."""
        return len(self.latencies) - 1

    def latency(self, q: int) -> float:
        """Minimum latency with at most ``q`` processors."""
        return self.latencies[min(q, self.max_procs)]

    def reconstruct(self, q: int) -> List[Interval]:
        """An optimal interval partition for at most ``q`` processors."""
        q = min(q, self.max_procs)
        n = self.app.n_stages
        if q < 1 or not math.isfinite(self.latencies[q]):
            raise InfeasibleProblemError(
                f"period bound {self.period_bound} unreachable with {q} processors"
            )
        intervals: List[Interval] = []
        i = n
        while i > 0:
            j = self.parents[q][i]
            while j < 0:
                q -= 1
                j = self.parents[q][i]
            intervals.append((j, i - 1))
            i = j
            q -= 1
        intervals.reverse()
        return intervals


def single_app_latency_table(
    app: Application,
    max_procs: int,
    speed: float,
    bandwidth: float,
    model: CommunicationModel,
    period_bound: float,
) -> LatencyTable:
    """Theorem 15 DP: tabulate min latency under a period bound for
    ``q = 1 .. min(max_procs, n)`` processors.  ``O(n^2 q_max)``."""
    n = app.n_stages
    q_max = max(1, min(max_procs, n))
    inf = math.inf

    # Vectorized tables: interval cycle-times gate feasibility against the
    # period bound, latency segments carry the Equation (5) contribution.
    cycle = interval_cycle_matrix(app, speed, bandwidth, model)
    threshold = threshold_ceiling(period_bound)
    seg_cost = latency_segment_matrix(app, speed, bandwidth)
    seg_cost = np.where(cycle <= threshold, seg_cost, inf)

    prev = np.full(n + 1, inf)
    prev[0] = app.input_data_size / bandwidth  # q = 0
    latencies: List[float] = [inf]
    parents: List[Tuple[int, ...]] = [tuple([-1] * (n + 1))]
    for q in range(1, q_max + 1):
        cur = prev.copy()  # "use at most q-1 processors" default
        par = [-1] * (n + 1)
        for i in range(1, n + 1):
            # Period-infeasible segments are +inf and never win the strict
            # comparison; first argmin = scalar tie-breaking.
            candidates = prev[:i] + seg_cost[:i, i]
            j = int(np.argmin(candidates))
            if candidates[j] < prev[i]:
                cur[i] = candidates[j]
                par[i] = j
        latencies.append(float(cur[n]))
        parents.append(tuple(par))
        prev = cur
    return LatencyTable(
        app=app,
        speed=speed,
        bandwidth=bandwidth,
        model=model,
        period_bound=period_bound,
        latencies=tuple(latencies),
        parents=tuple(parents),
    )


def single_app_period_candidates(
    app: Application,
    speed: float,
    bandwidth: float,
    model: CommunicationModel,
) -> List[float]:
    """The candidate period values of Theorem 15's binary search.

    Overlap model: the period is a max of individual communication and
    computation terms, so candidates are ``{delta_i / b}`` and
    ``{sum_{i..j} w / s}``.  No-overlap model: full interval cycle-times
    ``delta_{i-1}/b + sum w/s + delta_j/b``.
    """
    from ..kernel.context import app_arrays

    n = app.n_stages
    prefix, delta = app_arrays(app)
    upper = np.arange(1, n + 1)[None, :] > np.arange(n)[:, None]
    if model is CommunicationModel.OVERLAP:
        comms = delta / bandwidth
        works = (prefix[None, 1:] - prefix[:n, None]) / speed
        return [*comms.tolist(), *works[upper].tolist()]
    cycles = interval_cycle_matrix(app, speed, bandwidth, model)
    return cycles[:, 1:][upper].tolist()


def single_app_min_period_given_latency(
    app: Application,
    q: int,
    speed: float,
    bandwidth: float,
    model: CommunicationModel,
    latency_bound: float,
) -> Tuple[float, Optional[LatencyTable]]:
    """Theorem 15 (dual form): minimum period with at most ``q`` processors
    subject to a latency bound; returns ``(period, witness table)`` or
    ``(inf, None)`` when infeasible.  ``O(n^2 q log n)``."""

    def test(period: float) -> Optional[LatencyTable]:
        table = single_app_latency_table(
            app, q, speed, bandwidth, model, period
        )
        if meets_threshold(table.latency(q), latency_bound):
            return table
        return None

    result = smallest_feasible(
        single_app_period_candidates(app, speed, bandwidth, model), test
    )
    return result.value, result.witness


# ----------------------------------------------------------------------
# Multi-application wrappers (Theorem 16)
# ----------------------------------------------------------------------
def _require_fully_homogeneous(problem: ProblemInstance, solver: str) -> None:
    if problem.platform.platform_class is not PlatformClass.FULLY_HOMOGENEOUS:
        raise SolverError(
            f"{solver} requires a fully homogeneous platform "
            "(the bi-criteria problem is NP-complete beyond it, Theorem 17)"
        )


def _mapping_from_tables(
    problem: ProblemInstance,
    tables: Sequence[LatencyTable],
    counts: Sequence[int],
) -> Mapping:
    assignments: List[Assignment] = []
    next_proc = 0
    speed = problem.platform.common_speed_set()[-1]
    for a, (table, q) in enumerate(zip(tables, counts)):
        for interval in table.reconstruct(q):
            assignments.append(
                Assignment(app=a, interval=interval, proc=next_proc, speed=speed)
            )
            next_proc += 1
    return Mapping.from_assignments(assignments)


def minimize_latency_given_period(
    problem: ProblemInstance, thresholds: Thresholds, *, context=None
) -> Solution:
    """Theorem 16: minimize the global weighted latency subject to a period
    bound per application (or a global weighted period bound).

    ``context`` optionally shares a prebuilt
    :class:`repro.kernel.EvaluationContext` for the final evaluation."""
    _require_fully_homogeneous(problem, "Theorem 16 (latency | period)")
    platform = problem.platform
    speed = platform.common_speed_set()[-1]
    bandwidth = platform.default_bandwidth
    p, A = platform.n_processors, problem.n_apps
    max_per_app = p - (A - 1)

    tables = [
        single_app_latency_table(
            app,
            max_per_app,
            speed,
            bandwidth,
            problem.model,
            thresholds.period_bound_for_app(app, a),
        )
        for a, app in enumerate(problem.apps)
    ]

    def weighted_value(a: int, q: int) -> float:
        return problem.apps[a].weight * tables[a].latency(q)

    allocation = allocate_processors(
        A, p, weighted_value, max_useful=[t.max_procs for t in tables]
    )
    if not math.isfinite(allocation.objective):
        raise InfeasibleProblemError(
            "period thresholds unreachable even with all processors"
        )
    mapping = _mapping_from_tables(problem, tables, allocation.counts)
    values = problem.evaluation_context(context).evaluate(mapping)
    return Solution(
        mapping=mapping,
        objective=values.latency,
        values=values,
        solver="theorem16-latency-given-period",
        optimal=True,
        stats={"n_grants": float(len(allocation.history))},
    )


def minimize_period_given_latency(
    problem: ProblemInstance, thresholds: Thresholds, *, context=None
) -> Solution:
    """Theorem 16 (dual): minimize the global weighted period subject to a
    latency bound per application (or a global weighted latency bound).

    ``context`` optionally shares a prebuilt
    :class:`repro.kernel.EvaluationContext` for the final evaluation."""
    _require_fully_homogeneous(problem, "Theorem 16 (period | latency)")
    platform = problem.platform
    speed = platform.common_speed_set()[-1]
    bandwidth = platform.default_bandwidth
    p, A = platform.n_processors, problem.n_apps
    max_per_app = p - (A - 1)

    cache: Dict[Tuple[int, int], Tuple[float, Optional[LatencyTable]]] = {}

    def solve_app(a: int, q: int) -> Tuple[float, Optional[LatencyTable]]:
        key = (a, min(q, problem.apps[a].n_stages))
        if key not in cache:
            cache[key] = single_app_min_period_given_latency(
                problem.apps[a],
                key[1],
                speed,
                bandwidth,
                problem.model,
                thresholds.latency_bound_for_app(problem.apps[a], a),
            )
        return cache[key]

    def weighted_value(a: int, q: int) -> float:
        return problem.apps[a].weight * solve_app(a, q)[0]

    allocation = allocate_processors(
        A,
        p,
        weighted_value,
        max_useful=[min(app.n_stages, max_per_app) for app in problem.apps],
    )
    if not math.isfinite(allocation.objective):
        raise InfeasibleProblemError(
            "latency thresholds unreachable even with all processors"
        )
    tables = []
    for a in range(A):
        _, witness = solve_app(a, allocation.counts[a])
        assert witness is not None
        tables.append(witness)
    mapping = _mapping_from_tables(problem, tables, allocation.counts)
    values = problem.evaluation_context(context).evaluate(mapping)
    return Solution(
        mapping=mapping,
        objective=values.period,
        values=values,
        solver="theorem16-period-given-latency",
        optimal=True,
        stats={"n_grants": float(len(allocation.history))},
    )


def bicriteria_one_to_one_fully_hom(
    problem: ProblemInstance,
    thresholds: Thresholds,
    optimize: str = "latency",
) -> Solution:
    """Theorem 14: on fully homogeneous platforms all one-to-one mappings
    coincide; return the canonical mapping when it meets the thresholds."""
    if problem.platform.platform_class is not PlatformClass.FULLY_HOMOGENEOUS:
        raise SolverError("Theorem 14 requires a fully homogeneous platform")
    mapping = canonical_one_to_one_mapping(problem)
    values = problem.evaluate(mapping)
    if not values.meets(period=thresholds.period, latency=thresholds.latency):
        raise InfeasibleProblemError(
            "the (unique up to renaming) one-to-one mapping violates the "
            f"thresholds: period={values.period}, latency={values.latency}"
        )
    objective = values.latency if optimize == "latency" else values.period
    return Solution(
        mapping=mapping,
        objective=objective,
        values=values,
        solver="theorem14-canonical",
        optimal=True,
    )
