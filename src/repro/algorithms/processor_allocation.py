"""Algorithm 2: greedy processor allocation across concurrent applications.

The paper's Algorithm 2 distributes ``p`` identical processors among the
``A`` applications for any objective of the form ``min max_a W_a * X_a(q_a)``
where ``X_a(q)`` is the single-application optimum using at most ``q``
processors and is *non-increasing in q*:

1. give one processor to every application;
2. repeatedly give one more processor to an application maximizing the
   current weighted value, until all ``p`` processors are distributed.

The exchange proof of Theorem 3 shows the final distribution is optimal for
every intermediate processor count, provided each ``X_a`` is non-increasing.
The same driver serves period minimization (Theorem 3), the bi-criteria
variants (Theorem 16) and the uni-modal tri-criteria variants (Theorem 24)
-- only the per-application oracle changes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..core.exceptions import InfeasibleProblemError


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of the greedy allocation.

    ``counts[a]`` is the number of processors granted to application ``a``
    (all counts are >= 1 and sum to at most the processor budget);
    ``objective`` is the final ``max_a`` weighted value; ``history`` records
    which application received each extra processor together with the
    objective after the grant (useful for the benches' convergence plots).
    """

    counts: Tuple[int, ...]
    objective: float
    values: Tuple[float, ...]
    history: Tuple[Tuple[int, float], ...]

    @property
    def n_processors_used(self) -> int:
        """Total processors distributed."""
        return sum(self.counts)


def allocate_processors(
    n_apps: int,
    n_procs: int,
    weighted_value: Callable[[int, int], float],
    *,
    max_useful: Sequence[int] = (),
) -> AllocationResult:
    """Run Algorithm 2.

    Parameters
    ----------
    n_apps / n_procs:
        Application count ``A`` and processor budget ``p`` (``p >= A``
        because processor sharing is forbidden).
    weighted_value:
        Oracle ``(a, q) -> W_a * X_a(q)``; must be non-increasing in ``q``.
        ``math.inf`` signals that ``q`` processors are not enough to satisfy
        the application's thresholds (the greedy then naturally funnels
        processors towards infeasible applications first).
    max_useful:
        Optional per-application cap on useful processors (e.g. the stage
        count ``n_a``: extra processors beyond it can never help).  Once an
        application reaches its cap it stops receiving processors; the
        remaining budget goes to the others.

    Returns
    -------
    AllocationResult
        The greedy distribution; ``objective`` may be ``math.inf`` when even
        the full budget cannot satisfy some application (callers decide
        whether that is an error).
    """
    if n_apps <= 0:
        raise InfeasibleProblemError("allocation requires at least one application")
    if n_procs < n_apps:
        raise InfeasibleProblemError(
            f"need at least one processor per application "
            f"(A={n_apps}, p={n_procs})"
        )
    caps = list(max_useful) if max_useful else [n_procs] * n_apps
    if len(caps) != n_apps:
        raise ValueError("max_useful must have one entry per application")

    counts = [1] * n_apps
    values = [weighted_value(a, 1) for a in range(n_apps)]
    history: List[Tuple[int, float]] = []
    for _ in range(n_procs - n_apps):
        # Grant the next processor to the worst application that can still
        # make use of it.
        candidates = [a for a in range(n_apps) if counts[a] < caps[a]]
        if not candidates:
            break
        a_star = max(candidates, key=lambda a: (values[a], -a))
        counts[a_star] += 1
        values[a_star] = weighted_value(a_star, counts[a_star])
        history.append((a_star, max(values)))
    return AllocationResult(
        counts=tuple(counts),
        objective=max(values),
        values=tuple(values),
        history=tuple(history),
    )
