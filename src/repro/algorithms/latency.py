"""Latency minimization (Theorems 8 and 12).

*One-to-one mappings on fully homogeneous platforms* (Theorem 8): all
one-to-one mappings are equivalent (identical processors, identical links),
so any canonical assignment is optimal.

*Interval mappings on communication homogeneous platforms* (Theorem 12):
with a single application, mapping the whole chain onto the fastest
processor dominates every split (splitting adds communications and cannot
speed up computation beyond the fastest processor).  With several concurrent
applications, keep the ``A`` fastest processors and assign applications to
processors one-to-one; the optimal value lies in the candidate set
``{ W_a * (delta_0/b_a + sum_k w_k^a / s_u + delta_n/b_a) }`` and a greedy
assignment identical in spirit to Algorithm 1 (processors from slowest to
fastest, each taking any feasible free application) tests feasibility of a
candidate.  Complexity ``O(A p log(A p))``.

Latency does not depend on the communication model (Equation (5)), so both
solvers apply to the overlap and no-overlap models alike.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..core.application import Application
from ..core.evaluation import whole_app_latency_on_processor
from ..core.exceptions import InfeasibleProblemError, SolverError
from ..core.mapping import Assignment, Mapping
from ..core.platform import Platform
from ..core.problem import ProblemInstance, Solution
from ..core.types import MappingRule, PlatformClass
from .binary_search import smallest_feasible
from .one_to_one_period import _app_bandwidth, _require_comm_homogeneous


def canonical_one_to_one_mapping(problem: ProblemInstance) -> Mapping:
    """The canonical one-to-one mapping: stages in application order onto
    processors ``0, 1, 2, ...`` at full speed.  On a fully homogeneous
    platform every one-to-one mapping achieves the same criteria values, so
    this mapping is optimal for latency (Theorem 8), and for any
    period/latency combination (Theorem 14)."""
    assignments: List[Assignment] = []
    next_proc = 0
    for a, app in enumerate(problem.apps):
        for k in range(app.n_stages):
            speed = problem.platform.processor(next_proc).max_speed
            assignments.append(
                Assignment(app=a, interval=(k, k), proc=next_proc, speed=speed)
            )
            next_proc += 1
    return Mapping.from_assignments(assignments)


def minimize_latency_one_to_one_fully_hom(problem: ProblemInstance) -> Solution:
    """Theorem 8: one-to-one latency minimization on fully homogeneous
    platforms -- all mappings are equivalent, return the canonical one."""
    if problem.platform.platform_class is not PlatformClass.FULLY_HOMOGENEOUS:
        raise SolverError(
            "Theorem 8 requires a fully homogeneous platform "
            "(the problem is NP-complete with heterogeneous processors, "
            "Theorem 9)"
        )
    if problem.n_stages_total > problem.platform.n_processors:
        raise InfeasibleProblemError(
            "one-to-one mapping requires p >= N "
            f"(p={problem.platform.n_processors}, N={problem.n_stages_total})"
        )
    mapping = canonical_one_to_one_mapping(problem)
    values = problem.evaluate(mapping)
    return Solution(
        mapping=mapping,
        objective=values.latency,
        values=values,
        solver="theorem8-canonical",
        optimal=True,
    )


def weighted_whole_app_latency(
    apps: Sequence[Application],
    platform: Platform,
    app_index: int,
    proc: int,
) -> float:
    """``W_a * L_a`` when application ``a`` runs entirely on processor
    ``proc`` at full speed (comm-homogeneous links)."""
    app = apps[app_index]
    bw = _app_bandwidth(platform, app_index)
    return app.weight * whole_app_latency_on_processor(
        app, platform.processor(proc).max_speed, bw, bw
    )


def greedy_app_assignment(
    apps: Sequence[Application],
    platform: Platform,
    latency: float,
) -> Optional[Mapping]:
    """Feasibility test for a candidate latency: keep the ``A`` fastest
    processors, scan them slowest first, give each any free application it
    can run entirely within the candidate weighted latency."""
    A = len(apps)
    if A > platform.n_processors:
        return None
    fastest = platform.fastest_processors(A)
    order = sorted(fastest, key=lambda u: (platform.processor(u).max_speed, u))
    free = set(range(A))
    chosen: Dict[int, int] = {}
    for u in order:
        picked: Optional[int] = None
        for a in sorted(free):
            if weighted_whole_app_latency(apps, platform, a, u) <= latency:
                picked = a
                break
        if picked is None:
            return None
        free.remove(picked)
        chosen[picked] = u
    return Mapping.from_assignments(
        Assignment(
            app=a,
            interval=(0, apps[a].n_stages - 1),
            proc=u,
            speed=platform.processor(u).max_speed,
        )
        for a, u in chosen.items()
    )


def latency_candidates(
    apps: Sequence[Application], platform: Platform
) -> List[float]:
    """The candidate latency set of Theorem 12 (size ``A * p``)."""
    return [
        weighted_whole_app_latency(apps, platform, a, u)
        for a in range(len(apps))
        for u in range(platform.n_processors)
    ]


def minimize_latency_interval(problem: ProblemInstance) -> Solution:
    """Theorem 12: optimal interval-mapping latency on communication
    homogeneous platforms (one whole application per processor)."""
    _require_comm_homogeneous(problem.platform, "Theorem 12")
    candidates = latency_candidates(problem.apps, problem.platform)
    result = smallest_feasible(
        candidates,
        lambda l: greedy_app_assignment(problem.apps, problem.platform, l),
    )
    if result.witness is None:
        raise InfeasibleProblemError(
            "greedy application assignment failed at every candidate latency"
        )
    mapping = result.witness
    values = problem.evaluate(mapping)
    return Solution(
        mapping=mapping,
        objective=values.latency,
        values=values,
        solver="theorem12-binary-search-greedy",
        optimal=True,
        stats={
            "n_candidates": float(len(set(candidates))),
            "n_feasibility_tests": float(result.n_tests),
        },
    )
