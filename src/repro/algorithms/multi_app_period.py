"""Period minimization for interval mappings on fully homogeneous platforms
(Theorem 3 = Algorithm 2 + the single-application DP oracle).

All processors are identical, so only the *number* of processors granted to
each application matters; the greedy allocation of Algorithm 2 distributes
them optimally because the single-application optimal period ``T_a(q)`` is
non-increasing in ``q``.  Without an energy criterion every enrolled
processor runs its fastest mode.

Complexity: each oracle table costs ``O(n_a^2 p)`` and the allocation
performs ``p - A`` constant-time grants, for a total of ``O(n_max^2 A p)``
-- polynomial, matching the paper's claim (the paper quotes ``O(n^3 p^2)``
with its coarser oracle bound).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..core.exceptions import InfeasibleProblemError, SolverError
from ..core.mapping import Assignment, Mapping
from ..core.problem import ProblemInstance, Solution
from ..core.types import MappingRule, PlatformClass
from .interval_period import SingleAppPeriodTable, single_app_period_table
from .processor_allocation import AllocationResult, allocate_processors


def _require_fully_homogeneous(problem: ProblemInstance, solver: str) -> None:
    if problem.platform.platform_class is not PlatformClass.FULLY_HOMOGENEOUS:
        raise SolverError(
            f"{solver} requires a fully homogeneous platform; "
            "the problem is NP-complete beyond it (Theorems 4-7) -- "
            "use the exact or heuristic solvers instead"
        )


def build_mapping_from_counts(
    problem: ProblemInstance,
    tables: Sequence[SingleAppPeriodTable],
    counts: Sequence[int],
) -> Mapping:
    """Materialize a mapping from per-application processor counts by
    reconstructing each application's optimal partition and assigning
    processor indices ``0, 1, 2, ...`` in order (identical processors, so
    the naming is irrelevant)."""
    assignments: List[Assignment] = []
    next_proc = 0
    speed = problem.platform.common_speed_set()[-1]
    for a, (table, q) in enumerate(zip(tables, counts)):
        for interval in table.reconstruct(q):
            assignments.append(
                Assignment(app=a, interval=interval, proc=next_proc, speed=speed)
            )
            next_proc += 1
    if next_proc > problem.platform.n_processors:
        raise InfeasibleProblemError(
            "reconstruction used more processors than available "
            f"({next_proc} > {problem.platform.n_processors})"
        )
    return Mapping.from_assignments(assignments)


def minimize_period_interval(
    problem: ProblemInstance, *, context=None
) -> Solution:
    """Theorem 3: optimal global weighted period for interval mappings on a
    fully homogeneous platform, with any number of concurrent applications.

    ``context`` optionally shares a prebuilt
    :class:`repro.kernel.EvaluationContext` for the final evaluation
    (defaults to the problem's cached context).

    Raises
    ------
    SolverError
        If the platform is not fully homogeneous.
    InfeasibleProblemError
        If there are fewer processors than applications.
    """
    _require_fully_homogeneous(problem, "Theorem 3")
    platform = problem.platform
    speed = platform.common_speed_set()[-1]
    bandwidth = platform.default_bandwidth
    p = platform.n_processors
    A = problem.n_apps

    max_per_app = p - (A - 1)  # every other application keeps >= 1 processor
    tables = [
        single_app_period_table(
            app, max_per_app, speed, bandwidth, problem.model
        )
        for app in problem.apps
    ]

    def weighted_value(a: int, q: int) -> float:
        return problem.apps[a].weight * tables[a].period(q)

    allocation = allocate_processors(
        A,
        p,
        weighted_value,
        max_useful=[t.max_procs for t in tables],
    )
    mapping = build_mapping_from_counts(problem, tables, allocation.counts)
    values = problem.evaluation_context(context).evaluate(mapping)
    return Solution(
        mapping=mapping,
        objective=values.period,
        values=values,
        solver="theorem3-allocation-dp",
        optimal=True,
        stats={
            "n_grants": float(len(allocation.history)),
            "n_procs_used": float(allocation.n_processors_used),
        },
    )
