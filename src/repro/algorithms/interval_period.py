"""Single-application interval-mapping period oracle on identical processors.

The multi-application algorithm of Theorem 3 (and its bi-/tri-criteria
cousins of Theorems 16 and 24) consumes a *single-application oracle*: the
optimal period ``T_a(q)`` achievable when mapping application ``a`` onto at
most ``q`` identical processors of speed ``s`` with homogeneous links of
bandwidth ``b``.  The paper takes that oracle from [Benoit & Robert 2008];
we implement it as a dynamic program over stage prefixes:

``T(i, q) = min( T(i, q-1),
                 min_{0 <= j < i} max( T(j, q-1), cycle(stages j..i-1) ) )``

where ``cycle`` is the interval cycle-time under the requested communication
model.  ``T(i, q)`` is non-increasing in ``q`` (extra processors can always
be left unused), which is exactly the monotonicity the greedy allocation of
Algorithm 2 relies on.  Complexity ``O(n^2 q_max)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.application import Application
from ..core.evaluation import interval_cycle_time
from ..core.types import CommunicationModel, Interval
from ..kernel.vectorized import interval_cycle_matrix


@dataclass(frozen=True)
class SingleAppPeriodTable:
    """The oracle values ``T_a(q)`` together with reconstruction pointers.

    ``periods[q]`` is the optimal period using at most ``q`` processors
    (index 0 is a ``math.inf`` sentinel: an application cannot run on zero
    processors).  :meth:`reconstruct` rebuilds an optimal interval partition
    for a given processor count.
    """

    app: Application
    speed: float
    bandwidth: float
    model: CommunicationModel
    periods: Tuple[float, ...]
    #: ``parents[q][i]`` = start of the last interval in an optimal solution
    #: covering the first ``i`` stages with at most ``q`` processors, or -1
    #: when the optimum for ``(i, q)`` already uses at most ``q-1``.
    parents: Tuple[Tuple[int, ...], ...]

    @property
    def max_procs(self) -> int:
        """The largest processor count tabulated."""
        return len(self.periods) - 1

    def period(self, q: int) -> float:
        """Optimal period with at most ``q`` processors (clamped to the
        table size: more processors than stages never help)."""
        return self.periods[min(q, self.max_procs)]

    def reconstruct(self, q: int) -> List[Interval]:
        """An optimal interval partition for at most ``q`` processors."""
        q = min(q, self.max_procs)
        n = self.app.n_stages
        if q < 1 or not math.isfinite(self.periods[q]):
            raise ValueError(f"no feasible partition with {q} processors")
        intervals: List[Interval] = []
        i = n
        while i > 0:
            j = self.parents[q][i]
            while j < 0:
                # The optimum at (i, q) already uses fewer processors.
                q -= 1
                j = self.parents[q][i]
            intervals.append((j, i - 1))
            i = j
            q -= 1
        intervals.reverse()
        return intervals


def interval_cycle(
    app: Application,
    interval: Interval,
    speed: float,
    bandwidth: float,
    model: CommunicationModel,
) -> float:
    """Cycle-time of one interval under homogeneous links."""
    return interval_cycle_time(app, interval, speed, bandwidth, bandwidth, model)


def single_app_period_table(
    app: Application,
    max_procs: int,
    speed: float,
    bandwidth: float,
    model: CommunicationModel = CommunicationModel.OVERLAP,
) -> SingleAppPeriodTable:
    """Tabulate ``T_a(q)`` for ``q = 1 .. min(max_procs, n)``.

    More processors than stages are never useful for a single application,
    so the table is clamped at ``n`` columns.
    """
    n = app.n_stages
    q_max = max(1, min(max_procs, n))

    # cycle[j, i] = cycle-time of the interval covering stages j .. i-1,
    # tabulated in one vectorized pass (+inf on the unusable triangle).
    cycle = interval_cycle_matrix(app, speed, bandwidth, model)

    inf = math.inf
    # T[q][i]: optimal period of the first i stages with at most q procs.
    prev = np.full(n + 1, inf)
    prev[0] = 0.0  # q = 0
    periods: List[float] = [inf]
    parents: List[Tuple[int, ...]] = [tuple([-1] * (n + 1))]
    for q in range(1, q_max + 1):
        cur = np.empty(n + 1)
        cur[0] = 0.0
        par = [-1] * (n + 1)
        for i in range(1, n + 1):
            # Candidate j: last interval covers stages j .. i-1.  Taking
            # the first argmin reproduces the scalar loop's tie-breaking.
            candidates = np.maximum(prev[:i], cycle[:i, i])
            j = int(np.argmin(candidates))
            if candidates[j] < prev[i]:  # beats "use at most q-1 procs"
                cur[i] = candidates[j]
                par[i] = j
            else:
                cur[i] = prev[i]
        periods.append(float(cur[n]))
        parents.append(tuple(par))
        prev = cur
    return SingleAppPeriodTable(
        app=app,
        speed=speed,
        bandwidth=bandwidth,
        model=model,
        periods=tuple(periods),
        parents=tuple(parents),
    )
