"""Candidate-set binary search, the driver shared by several theorems.

Many of the paper's polynomial algorithms (Theorems 1, 12, 15) observe that
the optimal value of the objective necessarily belongs to a polynomial-size
set of *candidate values* (cycle-times of some stage on some processor,
single-processor latencies, ...).  The optimum is then located by a binary
search over the sorted candidates, testing feasibility of each probed value
with a greedy or dynamic-programming procedure.

:func:`smallest_feasible` implements the driver once for all of them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

W = TypeVar("W")


@dataclass
class BinarySearchResult(Generic[W]):
    """Outcome of a candidate-set binary search.

    ``value`` is the smallest feasible candidate (``math.inf`` when no
    candidate is feasible), ``witness`` the object returned by the
    feasibility test at that value, and ``n_tests`` the number of
    feasibility probes performed (``O(log |candidates|)``).
    """

    value: float
    witness: Optional[W]
    n_tests: int

    @property
    def feasible(self) -> bool:
        """True when some candidate passed the feasibility test."""
        return self.witness is not None


def smallest_feasible(
    candidates: Iterable[float],
    test: Callable[[float], Optional[W]],
) -> BinarySearchResult[W]:
    """Find the smallest candidate value accepted by ``test``.

    Parameters
    ----------
    candidates:
        The candidate objective values; deduplicated and sorted internally.
        Non-finite candidates are discarded.
    test:
        Feasibility oracle: returns a witness (e.g. a mapping) when the value
        is achievable, ``None`` otherwise.  Feasibility must be *monotone*:
        if ``test(x)`` succeeds then ``test(y)`` succeeds for every candidate
        ``y >= x`` -- all the paper's greedy/DP feasibility procedures have
        this property, which is what makes the binary search correct.

    Returns
    -------
    BinarySearchResult
        The smallest feasible value, its witness, and the probe count.
    """
    values: List[float] = sorted({c for c in candidates if math.isfinite(c)})
    lo, hi = 0, len(values) - 1
    best_value = math.inf
    best_witness: Optional[W] = None
    n_tests = 0
    while lo <= hi:
        mid = (lo + hi) // 2
        witness = test(values[mid])
        n_tests += 1
        if witness is not None:
            best_value = values[mid]
            best_witness = witness
            hi = mid - 1
        else:
            lo = mid + 1
    return BinarySearchResult(value=best_value, witness=best_witness, n_tests=n_tests)


def linear_smallest_feasible(
    candidates: Iterable[float],
    test: Callable[[float], Optional[W]],
) -> BinarySearchResult[W]:
    """Reference implementation scanning candidates in increasing order.

    Used by the test suite to confirm that feasibility is indeed monotone on
    the instances we generate (the binary search and the linear scan must
    agree); also convenient when the candidate set is tiny.
    """
    values: List[float] = sorted({c for c in candidates if math.isfinite(c)})
    n_tests = 0
    for v in values:
        witness = test(v)
        n_tests += 1
        if witness is not None:
            return BinarySearchResult(value=v, witness=witness, n_tests=n_tests)
    return BinarySearchResult(value=math.inf, witness=None, n_tests=n_tests)
