"""Tables 1 and 2 of the paper encoded as data: the complexity of every
(criteria, mapping rule, platform) cell, with the theorem establishing it
and the library solver implementing the polynomial cells.

The registry powers the auto-dispatching facade of
:mod:`repro.algorithms` and the table-reproduction benches
(``benchmarks/bench_table1_*`` / ``bench_table2_*``): every cell claimed
polynomial must have a solver whose optimality the tests verify against
brute force, and every cell claimed NP-complete must have a working
reduction and an exact/heuristic solver pair.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..core.platform import Platform
from ..core.problem import ProblemInstance
from ..core.types import Criterion, MappingRule, PlatformClass


class Complexity(enum.Enum):
    """Complexity status of a problem cell."""

    POLYNOMIAL = "polynomial"
    NP_COMPLETE = "NP-complete"
    NP_HARD = "NP-hard"


class PlatformCell(enum.Enum):
    """The platform columns of Tables 1 and 2."""

    #: Identical processors, identical links ("proc-hom / com-hom").
    PROC_HOM = "proc-hom"
    #: Heterogeneous processors, homogeneous pipelines, no communication.
    SPECIAL_APP = "special-app"
    #: Heterogeneous processors, homogeneous links ("proc-het / com-hom").
    PROC_HET_COM_HOM = "proc-het com-hom"
    #: Heterogeneous processors and links ("proc-het / com-het").
    PROC_HET_COM_HET = "proc-het com-het"


@dataclass(frozen=True)
class ComplexityEntry:
    """One cell of Table 1 or Table 2."""

    criteria: Tuple[Criterion, ...]
    rule: MappingRule
    cell: PlatformCell
    complexity: Complexity
    theorem: str
    solver: Optional[str] = None  # dotted name of the polynomial solver
    notes: str = ""
    #: Only meaningful for the tri-criteria rows: with uni-modal processors
    #: the fully homogeneous cell is polynomial (Theorems 23-24).
    multi_modal_only: bool = False


_P = Criterion.PERIOD
_L = Criterion.LATENCY
_E = Criterion.ENERGY
_O2O = MappingRule.ONE_TO_ONE
_INT = MappingRule.INTERVAL

#: Table 1 -- mono-criterion problems.
TABLE1: Tuple[ComplexityEntry, ...] = (
    # Period, one-to-one: polynomial up to comm-homogeneous links.
    ComplexityEntry((_P,), _O2O, PlatformCell.PROC_HOM, Complexity.POLYNOMIAL,
                    "Theorem 1", "repro.algorithms.minimize_period_one_to_one",
                    "binary search + greedy assignment"),
    ComplexityEntry((_P,), _O2O, PlatformCell.SPECIAL_APP, Complexity.POLYNOMIAL,
                    "Theorem 1", "repro.algorithms.minimize_period_one_to_one"),
    ComplexityEntry((_P,), _O2O, PlatformCell.PROC_HET_COM_HOM, Complexity.POLYNOMIAL,
                    "Theorem 1", "repro.algorithms.minimize_period_one_to_one"),
    ComplexityEntry((_P,), _O2O, PlatformCell.PROC_HET_COM_HET, Complexity.NP_COMPLETE,
                    "Theorem 2", None, "already hard for one application [3]"),
    # Period, interval.
    ComplexityEntry((_P,), _INT, PlatformCell.PROC_HOM, Complexity.POLYNOMIAL,
                    "Theorem 3", "repro.algorithms.minimize_period_interval",
                    "dynamic programming + greedy allocation"),
    ComplexityEntry((_P,), _INT, PlatformCell.SPECIAL_APP, Complexity.NP_COMPLETE,
                    "Theorems 5-7", None,
                    "polynomial for one application [4]; NP-complete with "
                    "several (3-PARTITION) -- the (*) entry"),
    ComplexityEntry((_P,), _INT, PlatformCell.PROC_HET_COM_HOM, Complexity.NP_COMPLETE,
                    "Theorem 4", None, "already hard for one application [3]"),
    ComplexityEntry((_P,), _INT, PlatformCell.PROC_HET_COM_HET, Complexity.NP_COMPLETE,
                    "Theorem 4", None),
    # Latency, one-to-one.
    ComplexityEntry((_L,), _O2O, PlatformCell.PROC_HOM, Complexity.POLYNOMIAL,
                    "Theorem 8", "repro.algorithms.minimize_latency_one_to_one_fully_hom",
                    "all mappings equivalent"),
    ComplexityEntry((_L,), _O2O, PlatformCell.SPECIAL_APP, Complexity.NP_COMPLETE,
                    "Theorems 9-11", None,
                    "polynomial for one application [5]; NP-complete with "
                    "several (3-PARTITION) -- the (*) entry"),
    ComplexityEntry((_L,), _O2O, PlatformCell.PROC_HET_COM_HOM, Complexity.NP_COMPLETE,
                    "Theorem 9", None),
    ComplexityEntry((_L,), _O2O, PlatformCell.PROC_HET_COM_HET, Complexity.NP_COMPLETE,
                    "Theorem 9", None),
    # Latency, interval: polynomial up to comm-homogeneous links.
    ComplexityEntry((_L,), _INT, PlatformCell.PROC_HOM, Complexity.POLYNOMIAL,
                    "Theorem 12", "repro.algorithms.minimize_latency_interval",
                    "binary search + greedy assignment"),
    ComplexityEntry((_L,), _INT, PlatformCell.SPECIAL_APP, Complexity.POLYNOMIAL,
                    "Theorem 12", "repro.algorithms.minimize_latency_interval"),
    ComplexityEntry((_L,), _INT, PlatformCell.PROC_HET_COM_HOM, Complexity.POLYNOMIAL,
                    "Theorem 12", "repro.algorithms.minimize_latency_interval"),
    ComplexityEntry((_L,), _INT, PlatformCell.PROC_HET_COM_HET, Complexity.NP_COMPLETE,
                    "Theorem 13", None, "already hard for one application [5]"),
)

#: Table 2 -- multi-criteria problems (multi-modal processors).
TABLE2: Tuple[ComplexityEntry, ...] = (
    # Period/latency (both rules share the row).
    ComplexityEntry((_P, _L), _O2O, PlatformCell.PROC_HOM, Complexity.POLYNOMIAL,
                    "Theorem 14", "repro.algorithms.bicriteria_one_to_one_fully_hom"),
    ComplexityEntry((_P, _L), _INT, PlatformCell.PROC_HOM, Complexity.POLYNOMIAL,
                    "Theorems 15-16",
                    "repro.algorithms.minimize_latency_given_period",
                    "dynamic programming; dual by binary search"),
    ComplexityEntry((_P, _L), _O2O, PlatformCell.SPECIAL_APP, Complexity.NP_COMPLETE,
                    "Theorem 17", None),
    ComplexityEntry((_P, _L), _INT, PlatformCell.SPECIAL_APP, Complexity.NP_COMPLETE,
                    "Theorem 17", None),
    ComplexityEntry((_P, _L), _O2O, PlatformCell.PROC_HET_COM_HOM, Complexity.NP_COMPLETE,
                    "Theorem 17", None),
    ComplexityEntry((_P, _L), _INT, PlatformCell.PROC_HET_COM_HOM, Complexity.NP_COMPLETE,
                    "Theorem 17", None),
    ComplexityEntry((_P, _L), _O2O, PlatformCell.PROC_HET_COM_HET, Complexity.NP_COMPLETE,
                    "Theorem 17", None),
    ComplexityEntry((_P, _L), _INT, PlatformCell.PROC_HET_COM_HET, Complexity.NP_COMPLETE,
                    "Theorem 17", None),
    # Period/energy, one-to-one: polynomial up to comm-homogeneous links.
    ComplexityEntry((_P, _E), _O2O, PlatformCell.PROC_HOM, Complexity.POLYNOMIAL,
                    "Theorem 19",
                    "repro.algorithms.minimize_energy_given_period_one_to_one",
                    "minimum weighted bipartite matching"),
    ComplexityEntry((_P, _E), _O2O, PlatformCell.SPECIAL_APP, Complexity.POLYNOMIAL,
                    "Theorem 19",
                    "repro.algorithms.minimize_energy_given_period_one_to_one"),
    ComplexityEntry((_P, _E), _O2O, PlatformCell.PROC_HET_COM_HOM, Complexity.POLYNOMIAL,
                    "Theorem 19",
                    "repro.algorithms.minimize_energy_given_period_one_to_one"),
    ComplexityEntry((_P, _E), _O2O, PlatformCell.PROC_HET_COM_HET, Complexity.NP_COMPLETE,
                    "Theorem 20", None),
    # Period/energy, interval.
    ComplexityEntry((_P, _E), _INT, PlatformCell.PROC_HOM, Complexity.POLYNOMIAL,
                    "Theorems 18, 21",
                    "repro.algorithms.minimize_energy_given_period_interval",
                    "dynamic programming"),
    ComplexityEntry((_P, _E), _INT, PlatformCell.SPECIAL_APP, Complexity.NP_COMPLETE,
                    "Theorem 22", None),
    ComplexityEntry((_P, _E), _INT, PlatformCell.PROC_HET_COM_HOM, Complexity.NP_COMPLETE,
                    "Theorem 22", None),
    ComplexityEntry((_P, _E), _INT, PlatformCell.PROC_HET_COM_HET, Complexity.NP_COMPLETE,
                    "Theorem 22", None),
    # Tri-criteria: NP-hard everywhere with multi-modal processors
    # (Theorems 26-27), polynomial on proc-hom with uni-modal processors
    # (Theorems 23-24).
    ComplexityEntry((_P, _L, _E), _O2O, PlatformCell.PROC_HOM, Complexity.NP_HARD,
                    "Theorem 26", None,
                    "multi-modal; uni-modal is polynomial (Theorem 23)",
                    multi_modal_only=True),
    ComplexityEntry((_P, _L, _E), _INT, PlatformCell.PROC_HOM, Complexity.NP_HARD,
                    "Theorem 27", None,
                    "multi-modal; uni-modal is polynomial (Theorem 24)",
                    multi_modal_only=True),
    ComplexityEntry((_P, _L, _E), _O2O, PlatformCell.SPECIAL_APP, Complexity.NP_COMPLETE,
                    "Theorem 25", None),
    ComplexityEntry((_P, _L, _E), _INT, PlatformCell.SPECIAL_APP, Complexity.NP_COMPLETE,
                    "Theorem 25", None),
    ComplexityEntry((_P, _L, _E), _O2O, PlatformCell.PROC_HET_COM_HOM, Complexity.NP_COMPLETE,
                    "Theorem 25", None),
    ComplexityEntry((_P, _L, _E), _INT, PlatformCell.PROC_HET_COM_HOM, Complexity.NP_COMPLETE,
                    "Theorem 25", None),
    ComplexityEntry((_P, _L, _E), _O2O, PlatformCell.PROC_HET_COM_HET, Complexity.NP_COMPLETE,
                    "Theorem 25", None),
    ComplexityEntry((_P, _L, _E), _INT, PlatformCell.PROC_HET_COM_HET, Complexity.NP_COMPLETE,
                    "Theorem 25", None),
)


def classify_platform_cell(problem: ProblemInstance) -> PlatformCell:
    """Map a problem instance onto its Table 1/Table 2 platform column."""
    cls = problem.platform.platform_class
    if cls is PlatformClass.FULLY_HOMOGENEOUS:
        return PlatformCell.PROC_HOM
    special = all(
        app.is_homogeneous and not app.has_communication
        for app in problem.apps
    )
    if cls is PlatformClass.COMM_HOMOGENEOUS:
        return PlatformCell.SPECIAL_APP if special else PlatformCell.PROC_HET_COM_HOM
    return PlatformCell.PROC_HET_COM_HET


def lookup(
    criteria: Sequence[Criterion],
    rule: MappingRule,
    cell: PlatformCell,
) -> ComplexityEntry:
    """The registry entry for a (criteria, rule, platform-cell) triple.

    Criteria order is normalized; the period/latency row is shared between
    the two rules in the paper's Table 2 but stored per rule here.
    """
    wanted = tuple(sorted(set(criteria), key=lambda c: c.value))
    for table in (TABLE1, TABLE2):
        for entry in table:
            have = tuple(sorted(set(entry.criteria), key=lambda c: c.value))
            if have == wanted and entry.rule is rule and entry.cell is cell:
                return entry
    raise KeyError(f"no registry entry for {criteria}, {rule}, {cell}")


def expected_complexity(
    problem: ProblemInstance, criteria: Sequence[Criterion]
) -> ComplexityEntry:
    """Registry entry matching a concrete problem instance."""
    return lookup(criteria, problem.rule, classify_platform_cell(problem))
