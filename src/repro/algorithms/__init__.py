"""Solvers for every cell of the paper's Tables 1 and 2.

Polynomial algorithms (each implementing one theorem):

========================================  =====================================
function                                  theorem / cell
========================================  =====================================
:func:`minimize_period_one_to_one`        Thm 1 -- period, one-to-one, com-hom
:func:`minimize_period_interval`          Thm 3 -- period, interval, proc-hom
:func:`minimize_latency_one_to_one_fully_hom`  Thm 8 -- latency, one-to-one
:func:`minimize_latency_interval`         Thm 12 -- latency, interval, com-hom
:func:`bicriteria_one_to_one_fully_hom`   Thm 14 -- period/latency, one-to-one
:func:`minimize_latency_given_period`     Thms 15-16 -- period/latency DP
:func:`minimize_period_given_latency`     Thms 15-16 -- dual (binary search)
:func:`minimize_energy_given_period_interval`  Thms 18, 21 -- energy DP
:func:`minimize_energy_given_period_one_to_one` Thm 19 -- matching
:func:`tricriteria.minimize_*`            Thms 23-24 -- uni-modal tri-criteria
========================================  =====================================

NP-hard cells are served by :mod:`repro.algorithms.exact` (brute force and
branch-and-bound) and :mod:`repro.algorithms.heuristics`;
:mod:`repro.algorithms.reductions` contains the hardness gadgets.
The generic entry points :func:`minimize_period` / :func:`minimize_latency`
dispatch on the problem's registry cell and, for NP-hard cells, fall back to
the requested method (``"exact"`` or ``"heuristic"``).
"""

from ..core.exceptions import SolverError
from ..core.problem import ProblemInstance, Solution
from ..core.types import Criterion, MappingRule, PlatformClass
from . import exact, heuristics, reductions
from .bicriteria_period_latency import (
    LatencyTable,
    bicriteria_one_to_one_fully_hom,
    minimize_latency_given_period,
    minimize_period_given_latency,
    single_app_latency_table,
    single_app_min_period_given_latency,
    single_app_period_candidates,
)
from .binary_search import BinarySearchResult, linear_smallest_feasible, smallest_feasible
from .energy_interval import (
    EnergyTable,
    minimize_energy_given_period_interval,
    single_app_energy_table,
)
from .energy_matching import minimize_energy_given_period_one_to_one
from .interval_period import SingleAppPeriodTable, single_app_period_table
from .latency import (
    canonical_one_to_one_mapping,
    minimize_latency_interval,
    minimize_latency_one_to_one_fully_hom,
)
from .multi_app_period import minimize_period_interval
from .one_to_one_period import greedy_assignment, minimize_period_one_to_one
from .processor_allocation import AllocationResult, allocate_processors
from .registry import (
    Complexity,
    ComplexityEntry,
    PlatformCell,
    TABLE1,
    TABLE2,
    classify_platform_cell,
    expected_complexity,
    lookup,
)
from .tricriteria import (
    minimize_energy_tri,
    minimize_latency_tri,
    minimize_period_tri,
    tricriteria_one_to_one,
)


def minimize_period(
    problem: ProblemInstance, method: str = "auto", *, budget=None
) -> Solution:
    """Minimize the global weighted period.

    ``method="auto"`` dispatches to the paper's polynomial algorithm when
    the instance sits in a polynomial cell (Theorems 1, 3) and raises
    :class:`~repro.core.exceptions.SolverError` otherwise;
    ``method="exact"`` forces branch-and-bound; ``method="heuristic"``
    runs the constructive greedy followed by hill climbing.  ``budget``
    optionally passes a cooperative budget meter (see
    :class:`repro.strategies.SolveBudget`) into the exact/heuristic
    loops; the polynomial algorithms ignore it.
    """
    if method == "exact":
        return exact.exact_minimize(problem, Criterion.PERIOD, budget=budget)
    if method == "heuristic":
        start = (
            heuristics.greedy_one_to_one_period(problem)
            if problem.rule is MappingRule.ONE_TO_ONE
            else heuristics.greedy_interval_period(problem, budget=budget)
        )
        return heuristics.hill_climb(
            problem, start.mapping, Criterion.PERIOD, budget=budget
        )
    if method != "auto":
        raise ValueError(f"unknown method {method!r}")
    if problem.rule is MappingRule.ONE_TO_ONE:
        return minimize_period_one_to_one(problem)
    return minimize_period_interval(problem)


def minimize_latency(
    problem: ProblemInstance, method: str = "auto", *, budget=None
) -> Solution:
    """Minimize the global weighted latency (same dispatching contract as
    :func:`minimize_period`; polynomial cells are Theorems 8 and 12)."""
    if method == "exact":
        return exact.exact_minimize(problem, Criterion.LATENCY, budget=budget)
    if method == "heuristic":
        start = (
            heuristics.greedy_one_to_one_period(problem)
            if problem.rule is MappingRule.ONE_TO_ONE
            else heuristics.greedy_interval_period(problem, budget=budget)
        )
        return heuristics.hill_climb(
            problem, start.mapping, Criterion.LATENCY, budget=budget
        )
    if method != "auto":
        raise ValueError(f"unknown method {method!r}")
    if problem.rule is MappingRule.ONE_TO_ONE:
        return minimize_latency_one_to_one_fully_hom(problem)
    return minimize_latency_interval(problem)


__all__ = [
    "AllocationResult",
    "BinarySearchResult",
    "Complexity",
    "ComplexityEntry",
    "EnergyTable",
    "LatencyTable",
    "PlatformCell",
    "SingleAppPeriodTable",
    "TABLE1",
    "TABLE2",
    "allocate_processors",
    "bicriteria_one_to_one_fully_hom",
    "canonical_one_to_one_mapping",
    "classify_platform_cell",
    "exact",
    "expected_complexity",
    "greedy_assignment",
    "heuristics",
    "linear_smallest_feasible",
    "lookup",
    "minimize_energy_given_period_interval",
    "minimize_energy_given_period_one_to_one",
    "minimize_energy_tri",
    "minimize_latency",
    "minimize_latency_given_period",
    "minimize_latency_interval",
    "minimize_latency_one_to_one_fully_hom",
    "minimize_latency_tri",
    "minimize_period",
    "minimize_period_given_latency",
    "minimize_period_interval",
    "minimize_period_one_to_one",
    "minimize_period_tri",
    "reductions",
    "single_app_energy_table",
    "single_app_latency_table",
    "single_app_min_period_given_latency",
    "single_app_period_candidates",
    "single_app_period_table",
    "smallest_feasible",
    "tricriteria_one_to_one",
]
