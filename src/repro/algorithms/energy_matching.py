"""Period/energy optimization for one-to-one mappings via bipartite matching
(Theorem 19).

On communication homogeneous platforms, choosing the processor *and the
mode* of every stage decomposes into independent stage-processor costs: the
cheapest way for processor ``P_u`` to host stage ``S_k^a`` within the
application's period bound is its slowest mode meeting the bound, with
energy ``E_stat(u) + s^alpha`` (``inf`` when even the fastest mode misses
the bound).  Minimizing the total energy over one-to-one mappings is then a
minimum-weight bipartite matching between stages and processors, solved in
polynomial time by the Hungarian algorithm of :mod:`repro.matching`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..core.application import Application
from ..core.energy import EnergyModel
from ..core.evaluation import stage_cycle_time
from ..core.exceptions import InfeasibleProblemError
from ..core.mapping import Assignment, Mapping
from ..core.objectives import Thresholds, meets_threshold
from ..core.platform import Platform
from ..core.problem import ProblemInstance, Solution
from ..core.types import CommunicationModel
from ..matching import solve_assignment
from .one_to_one_period import _app_bandwidth, _require_comm_homogeneous

#: Stage identifier: (application index, stage index).
StageId = Tuple[int, int]


def cheapest_stage_mode(
    app: Application,
    app_index: int,
    stage: int,
    platform: Platform,
    proc: int,
    period_bound: float,
    model: CommunicationModel,
    energy_model: EnergyModel,
) -> Tuple[float, Optional[float]]:
    """``(energy, speed)`` of the cheapest mode of ``proc`` that executes the
    stage within the (unweighted) period bound; ``(inf, None)`` if none."""
    processor = platform.processor(proc)
    bw = _app_bandwidth(platform, app_index)
    for s in processor.speeds:  # ascending: slowest feasible = cheapest
        if meets_threshold(
            stage_cycle_time(app, stage, s, bw, model), period_bound
        ):
            return energy_model.processor_energy(processor, s), s
    return math.inf, None


def build_cost_matrix(
    problem: ProblemInstance, thresholds: Thresholds
) -> Tuple[List[StageId], List[List[float]], List[List[Optional[float]]]]:
    """The stages-by-processors energy matrix of Theorem 19.

    Returns the stage order, the cost matrix and the matching speed choices.
    """
    stages: List[StageId] = [
        (a, k) for a, app in enumerate(problem.apps) for k in range(app.n_stages)
    ]
    p = problem.platform.n_processors
    costs: List[List[float]] = []
    speeds: List[List[Optional[float]]] = []
    for a, k in stages:
        bound = thresholds.period_bound_for_app(problem.apps[a], a)
        row_c: List[float] = []
        row_s: List[Optional[float]] = []
        for u in range(p):
            energy, speed = cheapest_stage_mode(
                problem.apps[a],
                a,
                k,
                problem.platform,
                u,
                bound,
                problem.model,
                problem.energy_model,
            )
            row_c.append(energy)
            row_s.append(speed)
        costs.append(row_c)
        speeds.append(row_s)
    return stages, costs, speeds


def minimize_energy_given_period_one_to_one(
    problem: ProblemInstance, thresholds: Thresholds
) -> Solution:
    """Theorem 19: minimum-energy one-to-one mapping under per-application
    period bounds, on communication homogeneous platforms.

    Complexity: building the matrix costs ``O(N p m_max)`` and the Hungarian
    algorithm ``O(N^2 p)`` -- polynomial, as the theorem requires (the paper
    quotes the Hopcroft-Karp bound ``O((np)^{3/2})`` for its matching
    oracle; any polynomial matching preserves the result).
    """
    _require_comm_homogeneous(problem.platform, "Theorem 19")
    if problem.n_stages_total > problem.platform.n_processors:
        raise InfeasibleProblemError(
            "one-to-one mapping requires p >= N "
            f"(p={problem.platform.n_processors}, N={problem.n_stages_total})"
        )
    stages, costs, speeds = build_cost_matrix(problem, thresholds)
    result = solve_assignment(costs)
    if result is None:
        raise InfeasibleProblemError(
            "no one-to-one mapping meets the period thresholds"
        )
    assignments = []
    for i, (a, k) in enumerate(stages):
        u = result.row_to_col[i]
        speed = speeds[i][u]
        assert speed is not None
        assignments.append(Assignment(app=a, interval=(k, k), proc=u, speed=speed))
    mapping = Mapping.from_assignments(assignments)
    values = problem.evaluate(mapping)
    return Solution(
        mapping=mapping,
        objective=values.energy,
        values=values,
        solver="theorem19-hungarian",
        optimal=True,
        stats={"matching_cost": result.total_cost},
    )
