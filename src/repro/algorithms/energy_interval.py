"""Period/energy optimization for interval mappings on fully homogeneous
platforms (Theorems 18 and 21).

*Single application* (Theorem 18): a dynamic program over stage prefixes
computes the minimum energy of an interval mapping meeting a period bound.
For one interval, the cheapest feasible configuration picks the *slowest
mode whose cycle-time meets the bound* (dynamic energy is increasing in
speed); the DP then splits prefixes::

    E(i, k) = min( E(i, k-1),
                   min_{j < i} E(j, k-1) + E_one(j .. i-1) )

where ``E_one`` is ``E_stat + s^alpha`` for the cheapest feasible mode
(``inf`` when even the fastest mode misses the bound).

*Several applications* (Theorem 21): the per-application tables ``E_a(q)``
are combined by a second dynamic program over applications,
``E(a, k) = min_q E_a(q) + E(a-1, k-q)``, distributing at most ``p``
processors.

Both DPs work for the overlap and no-overlap models (only the cycle-time
formula changes) and support per-application period bounds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.application import Application
from ..core.energy import EnergyModel
from ..core.exceptions import InfeasibleProblemError, SolverError
from ..core.mapping import Assignment, Mapping
from ..core.objectives import Thresholds, meets_threshold
from ..core.problem import ProblemInstance, Solution
from ..core.types import CommunicationModel, Interval, PlatformClass
from ..kernel.vectorized import interval_energy_table
from .interval_period import interval_cycle


@dataclass(frozen=True)
class EnergyTable:
    """Min-energy DP results for one application under a period bound.

    ``energies[q]`` is the minimum energy with at most ``q`` processors
    (``inf`` when infeasible); :meth:`reconstruct` returns the optimal
    partition together with the chosen speed of each interval.
    """

    app: Application
    period_bound: float
    energies: Tuple[float, ...]
    parents: Tuple[Tuple[int, ...], ...]
    #: ``segment_speed[j][i]`` = cheapest feasible mode for stages
    #: ``j .. i-1`` (0.0 when infeasible).
    segment_speed: Tuple[Tuple[float, ...], ...]

    @property
    def max_procs(self) -> int:
        """The largest processor count tabulated."""
        return len(self.energies) - 1

    def energy(self, q: int) -> float:
        """Minimum energy with at most ``q`` processors."""
        return self.energies[min(q, self.max_procs)]

    def reconstruct(self, q: int) -> List[Tuple[Interval, float]]:
        """Optimal ``(interval, speed)`` list for at most ``q`` processors."""
        q = min(q, self.max_procs)
        n = self.app.n_stages
        if q < 1 or not math.isfinite(self.energies[q]):
            raise InfeasibleProblemError(
                f"period bound {self.period_bound} unreachable with {q} processors"
            )
        placements: List[Tuple[Interval, float]] = []
        i = n
        while i > 0:
            j = self.parents[q][i]
            while j < 0:
                q -= 1
                j = self.parents[q][i]
            placements.append(((j, i - 1), self.segment_speed[j][i]))
            i = j
            q -= 1
        placements.reverse()
        return placements


def cheapest_feasible_speed(
    app: Application,
    interval: Interval,
    speed_set: Sequence[float],
    bandwidth: float,
    model: CommunicationModel,
    period_bound: float,
) -> Optional[float]:
    """The slowest mode whose interval cycle-time meets the period bound
    (modes are scanned in increasing speed order), or ``None``."""
    for s in speed_set:
        if meets_threshold(
            interval_cycle(app, interval, s, bandwidth, model), period_bound
        ):
            return s
    return None


def single_app_energy_table(
    app: Application,
    max_procs: int,
    speed_set: Sequence[float],
    static_energy: float,
    bandwidth: float,
    model: CommunicationModel,
    period_bound: float,
    energy_model: EnergyModel,
) -> EnergyTable:
    """Theorem 18 DP: tabulate the minimum energy under a period bound for
    ``q = 1 .. min(max_procs, n)`` processors.  ``O(n^2 (q_max + modes))``."""
    n = app.n_stages
    q_max = max(1, min(max_procs, n))
    inf = math.inf

    # Cheapest feasible mode of every interval, tabulated vectorized
    # (+inf energy / 0.0 speed where even the fastest mode misses).
    seg_energy, seg_speed = interval_energy_table(
        app,
        speed_set,
        static_energy,
        bandwidth,
        model,
        period_bound,
        energy_model,
    )

    prev = np.full(n + 1, inf)
    prev[0] = 0.0  # q = 0
    energies: List[float] = [inf]
    parents: List[Tuple[int, ...]] = [tuple([-1] * (n + 1))]
    for q in range(1, q_max + 1):
        cur = prev.copy()
        par = [-1] * (n + 1)
        for i in range(1, n + 1):
            # Infeasible combinations are +inf and can never win the
            # strict comparison; first argmin = scalar tie-breaking.
            candidates = prev[:i] + seg_energy[:i, i]
            j = int(np.argmin(candidates))
            if candidates[j] < prev[i]:
                cur[i] = candidates[j]
                par[i] = j
        energies.append(float(cur[n]))
        parents.append(tuple(par))
        prev = cur
    return EnergyTable(
        app=app,
        period_bound=period_bound,
        energies=tuple(energies),
        parents=tuple(parents),
        segment_speed=tuple(tuple(row) for row in seg_speed.tolist()),
    )


def _require_fully_homogeneous(problem: ProblemInstance, solver: str) -> None:
    if problem.platform.platform_class is not PlatformClass.FULLY_HOMOGENEOUS:
        raise SolverError(
            f"{solver} requires a fully homogeneous platform "
            "(the problem is NP-complete beyond it, Theorem 22)"
        )


def minimize_energy_given_period_interval(
    problem: ProblemInstance, thresholds: Thresholds, *, context=None
) -> Solution:
    """Theorem 21: minimize the total energy of an interval mapping subject
    to a period bound per application, on a fully homogeneous platform.

    Runs the Theorem 18 DP per application, then combines the tables with a
    processor-budget DP over applications (``O(A p^2)`` after the per-app
    tables).  Every application must be mapped; ``InfeasibleProblemError``
    is raised when the bounds are unreachable with ``p`` processors.
    ``context`` optionally shares a prebuilt
    :class:`repro.kernel.EvaluationContext` for the final evaluation.
    """
    _require_fully_homogeneous(problem, "Theorem 21")
    platform = problem.platform
    speed_set = platform.common_speed_set()
    static_energy = platform.processors[0].static_energy
    bandwidth = platform.default_bandwidth
    p, A = platform.n_processors, problem.n_apps
    max_per_app = p - (A - 1)

    tables = [
        single_app_energy_table(
            app,
            max_per_app,
            speed_set,
            static_energy,
            bandwidth,
            problem.model,
            thresholds.period_bound_for_app(app, a),
            problem.energy_model,
        )
        for a, app in enumerate(problem.apps)
    ]

    inf = math.inf
    # G[a][k]: min energy for applications 0..a using at most k processors.
    G: List[List[float]] = [[inf] * (p + 1) for _ in range(A)]
    choice: List[List[int]] = [[-1] * (p + 1) for _ in range(A)]
    for k in range(1, p + 1):
        G[0][k] = tables[0].energy(k)
        choice[0][k] = min(k, tables[0].max_procs)
    for a in range(1, A):
        for k in range(a + 1, p + 1):
            best, best_q = inf, -1
            for q in range(1, k - a + 1):
                ea = tables[a].energy(q)
                rest = G[a - 1][k - q]
                if math.isfinite(ea) and math.isfinite(rest) and ea + rest < best:
                    best = ea + rest
                    best_q = q
            G[a][k] = best
            choice[a][k] = best_q
    total = G[A - 1][p]
    if not math.isfinite(total):
        raise InfeasibleProblemError(
            "period thresholds unreachable with the available processors"
        )

    counts: List[int] = [0] * A
    k = p
    for a in range(A - 1, -1, -1):
        counts[a] = choice[a][k]
        k -= counts[a]

    assignments: List[Assignment] = []
    next_proc = 0
    for a, (table, q) in enumerate(zip(tables, counts)):
        for interval, speed in table.reconstruct(q):
            assignments.append(
                Assignment(app=a, interval=interval, proc=next_proc, speed=speed)
            )
            next_proc += 1
    mapping = Mapping.from_assignments(assignments)
    values = problem.evaluation_context(context).evaluate(mapping)
    return Solution(
        mapping=mapping,
        objective=values.energy,
        values=values,
        solver="theorem21-energy-dp",
        optimal=True,
        stats={"n_procs_used": float(next_proc)},
    )
