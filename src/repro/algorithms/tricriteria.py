"""Tri-criteria period/latency/energy optimization with *uni-modal*
processors on fully homogeneous platforms (Theorems 23 and 24).

With a single mode, every enrolled processor consumes the same energy
``e0 = E_stat + s^alpha``, so an energy budget simply caps the number of
enrolled processors at ``K = floor(E / e0)``.  The three threshold variants
then reduce to the bi-criteria machinery of Theorem 15/16:

* minimize period under latency bounds and an energy budget: Algorithm 2
  restricted to ``K`` processors with the period-given-latency oracle;
* minimize latency under period bounds and an energy budget: Algorithm 2
  restricted to ``K`` processors with the latency-given-period oracle;
* minimize energy under period and latency bounds: for each application,
  find the least processor count meeting both bounds; the minimum energy is
  ``e0 * sum_a q_a`` (or infeasible when ``sum_a q_a > p``).

The one-to-one variant (Theorem 23) is trivial: all one-to-one mappings
coincide on a fully homogeneous platform.

With *multi-modal* processors the tri-criteria problem is NP-hard even for
one application without communications (Theorems 26-27); the solvers below
refuse multi-modal platforms and point to the exact/heuristic solvers.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..core.exceptions import InfeasibleProblemError, SolverError
from ..core.mapping import Assignment, Mapping
from ..core.objectives import Thresholds, meets_threshold
from ..core.problem import ProblemInstance, Solution
from ..core.types import PlatformClass
from .bicriteria_period_latency import (
    LatencyTable,
    single_app_latency_table,
    single_app_min_period_given_latency,
)
from .latency import canonical_one_to_one_mapping
from .processor_allocation import allocate_processors


def _require_fully_hom_uni_modal(problem: ProblemInstance, solver: str) -> None:
    if problem.platform.platform_class is not PlatformClass.FULLY_HOMOGENEOUS:
        raise SolverError(
            f"{solver} requires a fully homogeneous platform "
            "(tri-criteria is NP-complete beyond it, Theorem 25)"
        )
    if not problem.platform.is_uni_modal:
        raise SolverError(
            f"{solver} requires uni-modal processors: with multiple modes "
            "the tri-criteria problem is NP-hard even for a single "
            "application (Theorems 26-27); use "
            "repro.algorithms.exact or repro.algorithms.heuristics"
        )


def processor_budget_from_energy(
    problem: ProblemInstance, energy_budget: Optional[float]
) -> int:
    """The largest processor count affordable within the energy budget:
    ``K = min(p, floor(E / e0))`` with ``e0 = E_stat + s^alpha``."""
    p = problem.platform.n_processors
    if energy_budget is None:
        return p
    proc = problem.platform.processors[0]
    e0 = problem.energy_model.processor_energy(proc, proc.speeds[0])
    if e0 <= 0:
        return p
    # Tiny relative slack absorbs float round-off in E / e0.
    k = int(math.floor(energy_budget / e0 * (1 + 1e-12)))
    return min(p, k)


def minimize_period_tri(
    problem: ProblemInstance, thresholds: Thresholds
) -> Solution:
    """Theorem 24: minimize the global weighted period under per-application
    latency bounds and a global energy budget (interval mappings)."""
    _require_fully_hom_uni_modal(problem, "Theorem 24 (period | latency, energy)")
    platform = problem.platform
    speed = platform.common_speed_set()[0]
    bandwidth = platform.default_bandwidth
    A = problem.n_apps
    K = processor_budget_from_energy(problem, thresholds.energy)
    if K < A:
        raise InfeasibleProblemError(
            f"energy budget allows only {K} processors for {A} applications"
        )
    max_per_app = K - (A - 1)

    cache = {}

    def solve_app(a: int, q: int):
        key = (a, min(q, problem.apps[a].n_stages))
        if key not in cache:
            cache[key] = single_app_min_period_given_latency(
                problem.apps[a],
                key[1],
                speed,
                bandwidth,
                problem.model,
                thresholds.latency_bound_for_app(problem.apps[a], a),
            )
        return cache[key]

    def weighted_value(a: int, q: int) -> float:
        return problem.apps[a].weight * solve_app(a, q)[0]

    allocation = allocate_processors(
        A,
        K,
        weighted_value,
        max_useful=[min(app.n_stages, max_per_app) for app in problem.apps],
    )
    if not math.isfinite(allocation.objective):
        raise InfeasibleProblemError(
            "latency bounds unreachable within the energy budget"
        )
    mapping = _mapping_from_latency_tables(
        problem,
        [solve_app(a, allocation.counts[a])[1] for a in range(A)],
        allocation.counts,
        speed,
    )
    values = problem.evaluate(mapping)
    return Solution(
        mapping=mapping,
        objective=values.period,
        values=values,
        solver="theorem24-period",
        optimal=True,
        stats={"processor_budget": float(K)},
    )


def minimize_latency_tri(
    problem: ProblemInstance, thresholds: Thresholds
) -> Solution:
    """Theorem 24: minimize the global weighted latency under per-application
    period bounds and a global energy budget (interval mappings)."""
    _require_fully_hom_uni_modal(problem, "Theorem 24 (latency | period, energy)")
    platform = problem.platform
    speed = platform.common_speed_set()[0]
    bandwidth = platform.default_bandwidth
    A = problem.n_apps
    K = processor_budget_from_energy(problem, thresholds.energy)
    if K < A:
        raise InfeasibleProblemError(
            f"energy budget allows only {K} processors for {A} applications"
        )
    max_per_app = K - (A - 1)

    tables = [
        single_app_latency_table(
            app,
            max_per_app,
            speed,
            bandwidth,
            problem.model,
            thresholds.period_bound_for_app(app, a),
        )
        for a, app in enumerate(problem.apps)
    ]

    def weighted_value(a: int, q: int) -> float:
        return problem.apps[a].weight * tables[a].latency(q)

    allocation = allocate_processors(
        A, K, weighted_value, max_useful=[t.max_procs for t in tables]
    )
    if not math.isfinite(allocation.objective):
        raise InfeasibleProblemError(
            "period bounds unreachable within the energy budget"
        )
    mapping = _mapping_from_latency_tables(
        problem, tables, allocation.counts, speed
    )
    values = problem.evaluate(mapping)
    return Solution(
        mapping=mapping,
        objective=values.latency,
        values=values,
        solver="theorem24-latency",
        optimal=True,
        stats={"processor_budget": float(K)},
    )


def minimize_energy_tri(
    problem: ProblemInstance, thresholds: Thresholds
) -> Solution:
    """Theorem 24: minimize the energy under per-application period *and*
    latency bounds (interval mappings): each application independently takes
    the least processor count meeting both bounds."""
    _require_fully_hom_uni_modal(problem, "Theorem 24 (energy | period, latency)")
    platform = problem.platform
    speed = platform.common_speed_set()[0]
    bandwidth = platform.default_bandwidth
    p, A = platform.n_processors, problem.n_apps

    counts: List[int] = []
    tables: List[LatencyTable] = []
    for a, app in enumerate(problem.apps):
        period_bound = thresholds.period_bound_for_app(app, a)
        latency_bound = thresholds.latency_bound_for_app(app, a)
        table = single_app_latency_table(
            app, app.n_stages, speed, bandwidth, problem.model, period_bound
        )
        q_needed = None
        for q in range(1, table.max_procs + 1):
            if meets_threshold(table.latency(q), latency_bound):
                q_needed = q
                break
        if q_needed is None:
            raise InfeasibleProblemError(
                f"application {a}: period and latency bounds are jointly "
                "unreachable on this platform"
            )
        counts.append(q_needed)
        tables.append(table)
    if sum(counts) > p:
        raise InfeasibleProblemError(
            f"bounds need {sum(counts)} processors but only {p} are available"
        )
    mapping = _mapping_from_latency_tables(problem, tables, counts, speed)
    values = problem.evaluate(mapping)
    return Solution(
        mapping=mapping,
        objective=values.energy,
        values=values,
        solver="theorem24-energy",
        optimal=True,
        stats={"n_procs_used": float(sum(counts))},
    )


def tricriteria_one_to_one(
    problem: ProblemInstance, thresholds: Thresholds
) -> Solution:
    """Theorem 23: one-to-one tri-criteria on fully homogeneous uni-modal
    platforms -- the canonical mapping is the unique candidate (all
    one-to-one mappings coincide); check it against all three thresholds."""
    _require_fully_hom_uni_modal(problem, "Theorem 23")
    if problem.n_stages_total > problem.platform.n_processors:
        raise InfeasibleProblemError(
            "one-to-one mapping requires p >= N "
            f"(p={problem.platform.n_processors}, N={problem.n_stages_total})"
        )
    mapping = canonical_one_to_one_mapping(problem)
    values = problem.evaluate(mapping)
    if not values.meets(
        period=thresholds.period,
        latency=thresholds.latency,
        energy=thresholds.energy,
    ):
        raise InfeasibleProblemError(
            "the canonical one-to-one mapping violates the thresholds: "
            f"period={values.period}, latency={values.latency}, "
            f"energy={values.energy}"
        )
    return Solution(
        mapping=mapping,
        objective=values.energy,
        values=values,
        solver="theorem23-canonical",
        optimal=True,
    )


def _mapping_from_latency_tables(
    problem: ProblemInstance,
    tables: Sequence[LatencyTable],
    counts: Sequence[int],
    speed: float,
) -> Mapping:
    assignments: List[Assignment] = []
    next_proc = 0
    for a, (table, q) in enumerate(zip(tables, counts)):
        for interval in table.reconstruct(q):
            assignments.append(
                Assignment(app=a, interval=interval, proc=next_proc, speed=speed)
            )
            next_proc += 1
    return Mapping.from_assignments(assignments)
