"""HTTP client for the solve-service daemon (:mod:`repro.server`).

:class:`SolveClient` is a small, dependency-free (``urllib``) client:
submit instances, poll job status, wait for results, stream a fleet of
jobs as they finish.  Transient transport failures retry with
exponential backoff — and because the daemon deduplicates submissions by
content (instance + solver configuration), retrying a submit is
*idempotent*: a duplicate simply coalesces onto the original job's cell.

Quickstart::

    from repro.client import SolveClient

    client = SolveClient("http://127.0.0.1:8787")
    result = client.solve(problem, objective="period",
                          strategy="portfolio(greedy,local_search)")
    print(result.solution.objective, result.source)

    job_ids = client.submit_many(problems, objective="latency")
    for result in client.iter_results(job_ids):
        print(result.job_id, result.status)
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union
from urllib.parse import urljoin

from .core.exceptions import ReproError
from .core.problem import ProblemInstance, Solution
from .io import problem_to_dict, solution_from_dict
from .obs import spans as _obs_spans
from .strategies import SolveBudget, SolveTelemetry

#: Upper bound on a single honored ``Retry-After`` sleep; a daemon
#: estimate beyond this is treated as "come back much later", not an
#: instruction to block the caller for minutes.
_RETRY_AFTER_CAP = 30.0

#: Redirect hops followed per request.  The shard router answers result
#: fetches with a ``307`` to the owning shard (``--redirect-results``);
#: one hop is the norm, a few more are tolerated, loops are not.
_MAX_REDIRECTS = 5


class _NoRedirectHandler(urllib.request.HTTPRedirectHandler):
    """Disable urllib's implicit redirect following.

    The stock handler silently re-issues GETs (and mangles POSTs into
    GETs on 303) — the client follows redirects itself instead, for
    every method, preserving the body, so router redirects behave
    identically for submits and fetches.
    """

    def redirect_request(self, *args: Any, **kwargs: Any) -> None:
        return None


_OPENER = urllib.request.build_opener(_NoRedirectHandler)

__all__ = [
    "ClientError",
    "JobFailedError",
    "RemoteResult",
    "ServerUnavailableError",
    "SolveClient",
]


class ClientError(ReproError):
    """Base error of the solve client."""


class ServerUnavailableError(ClientError):
    """The daemon could not be reached (after retries)."""


class JobFailedError(ClientError):
    """A job finished with ``status="error"`` or was cancelled."""

    def __init__(self, message: str, payload: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.payload = payload or {}


@dataclass(frozen=True)
class RemoteResult:
    """Decoded outcome of one remote job.

    ``status`` is the solve status (``"ok"`` / ``"infeasible"`` /
    ``"error"``); ``source`` records how the daemon produced it
    (``"solved"``, ``"cache"`` or ``"coalesced"``).  ``raw`` keeps the
    full wire payload for anything not decoded here.
    """

    job_id: str
    status: str
    source: Optional[str]
    wall_time: float
    solution: Optional[Solution] = None
    telemetry: Optional[SolveTelemetry] = None
    error: Optional[str] = None
    raw: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """True when the job solved successfully."""
        return self.status == "ok"

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "RemoteResult":
        """Decode a ``GET /v1/jobs/{id}/result`` payload."""
        telemetry_raw = payload.get("telemetry")
        solution_raw = payload.get("solution")
        return cls(
            job_id=str(payload.get("id", "")),
            status=str(payload.get("status") or payload.get("state") or ""),
            source=payload.get("source"),
            wall_time=float(payload.get("wall_time") or 0.0),
            solution=(
                None if solution_raw is None else solution_from_dict(solution_raw)
            ),
            telemetry=(
                None
                if telemetry_raw is None
                else SolveTelemetry.from_dict(telemetry_raw)
            ),
            error=payload.get("error"),
            raw=payload,
        )


class SolveClient:
    """Client for a running solve-service daemon.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of the daemon (no trailing slash needed).
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Transport-level retries per request (connection refused/reset,
        HTTP 5xx, and 429 load-shedding).  Safe for submissions too:
        the daemon's content-addressed dedup coalesces an accidental
        duplicate.
    backoff:
        Initial retry delay, doubled per attempt up to ``max_backoff``.
        A ``429`` response's ``Retry-After`` hint overrides the
        exponential delay for that attempt (capped at 30s).
    tracing:
        When true (default), every submission carries a fresh
        distributed-trace id (``X-Repro-Trace-Id``) so the server-side
        span tree — router hop, queue wait, solver phases — is
        retrievable with :meth:`trace`.  The id comes back on the job
        view as ``"trace_id"``.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 10.0,
        retries: int = 3,
        backoff: float = 0.2,
        max_backoff: float = 2.0,
        tracing: bool = True,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.tracing = tracing

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        url = f"{self.base_url}{path}"
        body = None if payload is None else json.dumps(payload).encode()
        delay = self.backoff
        last_exc: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            try:
                with self._open_following_redirects(
                    url, method, body, headers
                ) as response:
                    return json.loads(response.read().decode() or "{}")
            except urllib.error.HTTPError as exc:
                if exc.code == 429 and attempt < self.retries:
                    # Shed by the daemon's bounded queue: honor its
                    # Retry-After hint instead of the exponential delay,
                    # then resubmit (dedup makes the retry idempotent).
                    last_exc = exc
                    time.sleep(min(self._retry_after(exc), _RETRY_AFTER_CAP))
                    continue
                detail = self._error_detail(exc)
                if exc.code >= 500 and attempt < self.retries:
                    last_exc = exc
                else:
                    raise ClientError(
                        f"{method} {path} failed with HTTP {exc.code}: {detail}"
                    ) from None
            except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
                last_exc = exc
            if attempt < self.retries:
                time.sleep(delay)
                delay = min(delay * 2, self.max_backoff)
        raise ServerUnavailableError(
            f"{method} {url} unreachable after {self.retries + 1} attempts: "
            f"{last_exc}"
        )

    def _open_following_redirects(
        self,
        url: str,
        method: str,
        body: Optional[bytes],
        headers: Optional[Dict[str, str]] = None,
    ):
        """Issue one request, following up to ``_MAX_REDIRECTS`` hops.

        ``307``/``308`` (and the legacy ``301``/``302``) re-issue the
        *same* method and body at the ``Location`` target — this is how
        the client transparently follows the shard router's
        redirect-to-owning-shard responses; ``303`` degrades to a GET
        per the RFC.
        """
        for _hop in range(_MAX_REDIRECTS + 1):
            request = urllib.request.Request(
                url,
                data=body,
                method=method,
                headers={"Content-Type": "application/json", **(headers or {})},
            )
            try:
                return _OPENER.open(request, timeout=self.timeout)
            except urllib.error.HTTPError as exc:
                location = exc.headers.get("Location") if exc.headers else None
                if exc.code in (301, 302, 303, 307, 308) and location:
                    exc.close()
                    url = urljoin(url, location)
                    if exc.code == 303:
                        method, body = "GET", None
                    continue
                raise
        raise ClientError(
            f"{method} {url}: more than {_MAX_REDIRECTS} redirects"
        )

    @staticmethod
    def _error_detail(exc: urllib.error.HTTPError) -> str:
        try:
            return json.loads(exc.read().decode()).get("error", str(exc))
        except Exception:
            return str(exc)

    def _retry_after(self, exc: urllib.error.HTTPError) -> float:
        """Extract the daemon's wait hint from a 429: the JSON body's
        float ``retry_after`` when present, else the integer-seconds
        ``Retry-After`` header, else the configured backoff."""
        try:
            payload = json.loads(exc.read().decode() or "{}")
            if payload.get("retry_after") is not None:
                return max(0.0, float(payload["retry_after"]))
        except Exception:
            pass
        try:
            return max(0.0, float(exc.headers.get("Retry-After")))
        except (AttributeError, TypeError, ValueError):
            return self.backoff

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """Daemon liveness, version and concurrency."""
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> Dict[str, Any]:
        """Queue/job/solver counters (``GET /v1/metrics``)."""
        return self._request("GET", "/v1/metrics")

    def trace(self, trace_id: str) -> Dict[str, Any]:
        """Recorded spans of one trace (``GET /v1/traces/{id}``).

        Against a router this returns the merged tree across shards;
        against a daemon, that daemon's spans.  Raises
        :class:`ClientError` (404) when the trace id is unknown.
        """
        return self._request("GET", f"/v1/traces/{trace_id}")

    def _trace_headers(self) -> Optional[Dict[str, str]]:
        """Fresh per-submission trace headers (``None`` when tracing is
        off).  The client's span id rides as the parent so every
        server-side span hangs off the ``client.submit`` root the first
        hop records from the send timestamp."""
        if not self.tracing or not _obs_spans.enabled():
            return None
        return {
            _obs_spans.TRACE_HEADER: _obs_spans.new_trace_id(),
            _obs_spans.PARENT_HEADER: _obs_spans.new_span_id(),
            _obs_spans.CLIENT_SEND_HEADER: repr(time.time()),
        }

    def submit(
        self,
        problem: ProblemInstance,
        *,
        objective: str = "period",
        method: Optional[str] = None,
        strategy: Optional[str] = None,
        budget: Union[SolveBudget, Dict[str, Any], None] = None,
        max_period: Optional[float] = None,
        max_latency: Optional[float] = None,
        max_energy: Optional[float] = None,
        priority: int = 0,
    ) -> Dict[str, Any]:
        """Submit one job; returns the job view (``"id"``, ``"state"``).

        ``method`` and ``strategy`` are mutually exclusive, exactly as
        in campaign solver entries; omitting both uses the registry
        dispatch.
        """
        solver: Dict[str, Any] = {"objective": objective}
        if strategy is not None:
            solver["strategy"] = strategy
        elif method is not None:
            solver["method"] = method
        if budget is not None:
            solver["budget"] = (
                budget.to_dict() if isinstance(budget, SolveBudget) else budget
            )
        for key, value in (
            ("max_period", max_period),
            ("max_latency", max_latency),
            ("max_energy", max_energy),
        ):
            if value is not None:
                solver[key] = value
        return self._request(
            "POST",
            "/v1/jobs",
            {
                "problem": problem_to_dict(problem),
                "solver": solver,
                "priority": priority,
            },
            headers=self._trace_headers(),
        )

    def job(self, job_id: str) -> Dict[str, Any]:
        """Status view of one job."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(
        self, *, state: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """List retained jobs, newest first."""
        query = []
        if state is not None:
            query.append(f"state={state}")
        if limit is not None:
            query.append(f"limit={limit}")
        suffix = f"?{'&'.join(query)}" if query else ""
        return self._request("GET", f"/v1/jobs{suffix}")["jobs"]

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; ``True`` when it was still cancellable."""
        return bool(
            self._request("DELETE", f"/v1/jobs/{job_id}").get("cancelled")
        )

    def result(self, job_id: str) -> RemoteResult:
        """Fetch and decode the result of a *finished* job."""
        return RemoteResult.from_payload(
            self._request("GET", f"/v1/jobs/{job_id}/result")
        )

    # ------------------------------------------------------------------
    # waiting / convenience
    # ------------------------------------------------------------------
    @staticmethod
    def _jittered(delay: float) -> float:
        """Uniform jitter in ``[delay/2, delay]`` — a fleet of waiters
        started together desynchronizes instead of polling the daemon
        (or the shard router) in lockstep."""
        return delay * (0.5 + 0.5 * random.random())

    def wait(
        self,
        job_id: str,
        *,
        timeout: Optional[float] = 60.0,
        poll_interval: float = 0.02,
        max_poll_interval: float = 2.0,
    ) -> RemoteResult:
        """Poll until the job finishes, then return its decoded result.

        Polling uses jittered exponential backoff: the delay doubles
        from ``poll_interval`` up to ``max_poll_interval`` (default cap
        2 s), and each sleep is jittered down by up to half.  A
        short job still resolves in milliseconds, while a thousand
        waiters on slow jobs send O(log) requests each instead of
        busy-polling.  Raises :class:`JobFailedError` when the job was
        cancelled, ``TimeoutError`` past ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = poll_interval
        while True:
            view = self.job(job_id)
            if view["state"] in ("done", "cancelled"):
                break
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} not finished within {timeout}s "
                    f"(state={view['state']})"
                )
            sleep = self._jittered(delay)
            if deadline is not None:
                sleep = min(sleep, max(0.0, deadline - time.monotonic()))
            time.sleep(sleep)
            delay = min(delay * 2, max_poll_interval)
        if view["state"] == "cancelled":
            raise JobFailedError(f"job {job_id} was cancelled", view)
        return self.result(job_id)

    def solve(
        self,
        problem: ProblemInstance,
        *,
        timeout: Optional[float] = 60.0,
        priority: int = 0,
        **solver_kwargs: Any,
    ) -> RemoteResult:
        """Submit one job and wait for its result.

        Raises :class:`JobFailedError` on an errored job; infeasible
        outcomes are returned (``result.status == "infeasible"``), like
        the batch service's item statuses.
        """
        view = self.submit(problem, priority=priority, **solver_kwargs)
        result = self.wait(view["id"], timeout=timeout)
        if result.status == "error":
            raise JobFailedError(
                f"job {result.job_id} failed: {result.error}", result.raw
            )
        return result

    def submit_many(
        self,
        problems: Sequence[ProblemInstance],
        *,
        priority: int = 0,
        **solver_kwargs: Any,
    ) -> List[str]:
        """Submit a fleet of jobs; returns their ids in order."""
        return [
            self.submit(p, priority=priority, **solver_kwargs)["id"]
            for p in problems
        ]

    # ------------------------------------------------------------------
    # anytime fronts
    # ------------------------------------------------------------------
    def submit_front(
        self,
        problem: ProblemInstance,
        *,
        method: Optional[str] = None,
        strategy: Optional[str] = None,
        budget: Union[SolveBudget, Dict[str, Any], None] = None,
        engine: Optional[str] = None,
        points: Optional[int] = None,
        priority: int = 0,
    ) -> Dict[str, Any]:
        """Submit an anytime period/energy front sweep
        (``POST /v1/fronts``); returns the front view (``"id"``,
        ``"state"``, ``"front"``, ``"hypervolume"``, ...).

        The optional solver template (``method``/``strategy``/``budget``/
        ``engine``) applies to every sweep cell; by default the daemon
        picks the per-cell dispatch that keeps the finished merge
        byte-identical to the offline exact front.  ``points`` caps the
        number of sweep cells.
        """
        solver: Dict[str, Any] = {}
        if strategy is not None:
            solver["strategy"] = strategy
        elif method is not None:
            solver["method"] = method
        if budget is not None:
            solver["budget"] = (
                budget.to_dict() if isinstance(budget, SolveBudget) else budget
            )
        if engine is not None:
            solver["engine"] = engine
        payload: Dict[str, Any] = {"problem": problem_to_dict(problem)}
        if solver:
            payload["solver"] = solver
        if points is not None:
            payload["points"] = points
        if priority:
            payload["priority"] = priority
        return self._request("POST", "/v1/fronts", payload)

    def front(self, front_id: str) -> Dict[str, Any]:
        """Front-so-far view of one sweep (``GET /v1/fronts/{id}``):
        merged front, hypervolume and done/total telemetry."""
        return self._request("GET", f"/v1/fronts/{front_id}")

    def iter_front(
        self,
        front_id: str,
        *,
        timeout: Optional[float] = 300.0,
        poll_interval: float = 0.02,
        max_poll_interval: float = 2.0,
    ) -> Iterator[Dict[str, Any]]:
        """Yield front views as the sweep refines, ending when done.

        Every yielded view improved on the previous one (more cells
        done, new points merged, or higher hypervolume); the final view
        has ``state == "done"`` and is always yielded, so consuming the
        iterator to exhaustion leaves you with the finished front.
        Polling backs off with the same jittered exponential schedule as
        :meth:`wait`; progress resets the delay.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = poll_interval
        last: Optional[tuple] = None
        while True:
            view = self.front(front_id)
            mark = (view["done"], view["points_merged"], view["hypervolume"])
            progressed = mark != last
            if progressed:
                last = mark
                yield view
            if view["state"] == "done":
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"front {front_id} not finished within {timeout}s "
                    f"({view['done']}/{view['total']} cells)"
                )
            if progressed:
                delay = poll_interval
            else:
                time.sleep(self._jittered(delay))
                delay = min(delay * 2, max_poll_interval)

    def iter_results(
        self,
        job_ids: Sequence[str],
        *,
        timeout: Optional[float] = 300.0,
        poll_interval: float = 0.02,
        max_poll_interval: float = 2.0,
    ) -> Iterator[RemoteResult]:
        """Yield each job's result as it finishes (completion order).

        Cancelled jobs yield a ``status="cancelled"`` result rather than
        raising, so one cancelled job does not abort iteration over a
        fleet.  Sweeps without progress back off with the same jittered
        exponential schedule as :meth:`wait` (cap
        ``max_poll_interval``); any finished job resets the delay.
        """
        pending = list(job_ids)
        deadline = None if timeout is None else time.monotonic() + timeout
        delay = poll_interval
        while pending:
            still_pending = []
            progressed = False
            for job_id in pending:
                view = self.job(job_id)
                if view["state"] == "done":
                    progressed = True
                    yield self.result(job_id)
                elif view["state"] == "cancelled":
                    progressed = True
                    yield RemoteResult(
                        job_id=job_id,
                        status="cancelled",
                        source=None,
                        wall_time=0.0,
                        raw=view,
                    )
                else:
                    still_pending.append(job_id)
            pending = still_pending
            if not pending:
                return
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"{len(pending)} job(s) not finished within {timeout}s"
                )
            if progressed:
                delay = poll_interval
            else:
                time.sleep(self._jittered(delay))
                delay = min(delay * 2, max_poll_interval)
