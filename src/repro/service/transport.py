"""Zero-copy instance transfer over ``multiprocessing.shared_memory``.

The process-pool solve path used to re-pickle every
:class:`~repro.core.problem.ProblemInstance` into its job payload; on
batches of anything but trivial instances the serialization cost ate the
parallelism (``BENCH_kernel.json`` recorded ~1.0x pool speedup).  This
module moves the numeric payload out of the job pipe:

* :class:`ShmBatch` (parent side) packs the array form of *every*
  instance of a batch (:func:`repro.io.problem_to_arrays`) into **one**
  shared-memory segment, created once per batch.  The per-instance
  *descriptors* — a small meta dict plus ``(offset, length)`` spans into
  the segment — ship once per worker inside the worker config; job
  payloads shrink to a bare index.
* :class:`ShmReader` (worker side) attaches the segment once and
  reconstructs instances as NumPy *views* over the shared buffer; the
  stage payloads are handed to the evaluation kernel uncopied
  (:func:`repro.kernel.context.attach_kernel_arrays`).

Lifecycle: the parent owns the segment and unlinks it in a ``finally``
around the pool run, so normal completion, a worker crash and a
``KeyboardInterrupt`` all clean up ``/dev/shm``.  Workers unregister
their attachment from the ``resource_tracker`` (they never own the
segment), avoiding both double-unlink races and leaked-segment warnings
at worker exit.

Transport selection lives in :func:`resolve_transport`: ``"auto"`` uses
shared memory when the platform supports it and the batch payload is
large enough to matter, and falls back to per-job pickling otherwise —
the two transports produce byte-identical results.
"""

from __future__ import annotations

import os
import secrets
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.problem import ProblemInstance
from ..io import problem_from_arrays, problem_to_arrays
from ..obs.spans import span as _obs_span

__all__ = [
    "SHM_AUTO_MIN_BYTES",
    "SHM_NAME_PREFIX",
    "ShmBatch",
    "ShmReader",
    "batch_payload_bytes",
    "resolve_transport",
    "shm_available",
]

#: Prefix of every segment this module creates; the test suite's
#: leak-check fixture scans ``/dev/shm`` for it.
SHM_NAME_PREFIX = "repro-shm-"

#: ``transport="auto"`` threshold: batches whose numeric payload is
#: smaller than this ship as plain pickles (a segment + attach round trip
#: is not worth a few hundred bytes).
SHM_AUTO_MIN_BYTES = 2048

#: Valid values of the ``transport=`` seam.
TRANSPORTS = ("auto", "shm", "pickle")

_shm_probe: Optional[bool] = None


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` works here (probed once).

    Creates and immediately unlinks a tiny segment on first call; any
    failure (missing ``/dev/shm``, sandboxed platform, unsupported OS)
    marks shared memory unavailable and ``"auto"`` falls back to pickle.
    """
    global _shm_probe
    if _shm_probe is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(
                name=f"{SHM_NAME_PREFIX}probe-{os.getpid()}-{secrets.token_hex(2)}",
                create=True,
                size=16,
            )
            probe.close()
            probe.unlink()
            _shm_probe = True
        except Exception:
            _shm_probe = False
    return _shm_probe


def batch_payload_bytes(problems: Sequence[ProblemInstance]) -> int:
    """Total numeric payload of a batch, in bytes (float64 elements x 8)."""
    total = 0
    for problem in problems:
        _meta, arrays = problem_to_arrays(problem)
        total += sum(a.size for a in arrays) * 8
    return total


def resolve_transport(
    transport: str,
    problems: Sequence[ProblemInstance],
    shared: Optional[ProblemInstance],
) -> str:
    """Resolve the ``transport=`` parameter to ``"shm"`` or ``"pickle"``.

    Parameters
    ----------
    transport:
        ``"auto"``, ``"shm"`` or ``"pickle"``.
    problems:
        The batch (used by the ``"auto"`` size threshold).
    shared:
        The repeat-solve shared instance, if all jobs target one object.
        Shared-instance batches always use the pickle-once initializer
        path — the instance already ships only once per worker, so a
        segment buys nothing.

    Returns
    -------
    str
        The effective transport.  ``"shm"`` requests degrade to
        ``"pickle"`` when shared memory is unavailable (the documented
        fallback) — callers can read the effective value off
        ``BatchResult.transport``.

    Raises
    ------
    ValueError
        On an unknown ``transport`` value.
    """
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    if shared is not None:
        return "pickle"
    if transport == "pickle":
        return "pickle"
    if not shm_available():
        return "pickle"
    if transport == "shm":
        return "shm"
    return (
        "shm"
        if batch_payload_bytes(problems) >= SHM_AUTO_MIN_BYTES
        else "pickle"
    )


class ShmBatch:
    """Parent-side handle of one batch's shared segment.

    Build with :meth:`pack`; hand :attr:`name` and :attr:`descriptors`
    to the workers; call :meth:`close_and_unlink` in a ``finally`` once
    the pool has drained (or died).
    """

    def __init__(self, shm, descriptors: List[Dict[str, Any]]) -> None:
        self._shm = shm
        self.descriptors = descriptors

    @property
    def name(self) -> str:
        """The segment name workers attach to."""
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Payload size actually written (descriptor spans, not the
        page-rounded segment size)."""
        return sum(
            length * 8
            for d in self.descriptors
            for _offset, length in d["spans"]
        )

    @classmethod
    def pack(cls, problems: Sequence[ProblemInstance]) -> "ShmBatch":
        """Copy every instance's numeric payload into one fresh segment.

        Returns the handle; raises whatever ``shared_memory`` raises
        when the platform cannot allocate (callers on the ``"auto"``
        path degrade to pickle).
        """
        with _obs_span(
            "transport.shm_pack", instances=len(problems)
        ) as pack_span:
            batch = cls._pack(problems)
            if pack_span.span_id is not None:
                pack_span.attrs["nbytes"] = batch.nbytes
            return batch

    @classmethod
    def _pack(cls, problems: Sequence[ProblemInstance]) -> "ShmBatch":
        from multiprocessing import shared_memory

        encoded: List[Tuple[Dict[str, Any], List[np.ndarray]]] = [
            problem_to_arrays(p) for p in problems
        ]
        total = sum(a.size for _m, arrays in encoded for a in arrays)
        shm = shared_memory.SharedMemory(
            name=f"{SHM_NAME_PREFIX}{os.getpid()}-{secrets.token_hex(4)}",
            create=True,
            size=max(total * 8, 8),
        )
        try:
            buf = np.ndarray((total,), dtype=np.float64, buffer=shm.buf)
            descriptors: List[Dict[str, Any]] = []
            offset = 0
            for meta, arrays in encoded:
                spans: List[Tuple[int, int]] = []
                for array in arrays:
                    n = array.size
                    buf[offset : offset + n] = array
                    spans.append((offset, n))
                    offset += n
                descriptors.append({"meta": meta, "spans": spans})
            del buf  # drop the memoryview before any close()
        except BaseException:
            shm.close()
            try:
                shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
            raise
        return cls(shm, descriptors)

    def close_and_unlink(self) -> None:
        """Release the parent's mapping and remove the segment
        (idempotent; a missing segment is not an error)."""
        try:
            self._shm.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass


class ShmReader:
    """Worker-side attachment to a batch segment.

    One per worker process, created at worker start; :meth:`decode`
    turns a descriptor into a :class:`ProblemInstance` whose stage
    payloads are views over the shared buffer, pre-attached to the
    evaluation kernel.
    """

    def __init__(self, name: str) -> None:
        from multiprocessing import shared_memory

        # Attaching re-registers the name with the (fork-shared)
        # resource tracker; that is an idempotent set-add, and the
        # parent's unlink unregisters it exactly once — no worker-side
        # unregister, which would race the parent and other workers.
        self._shm = shared_memory.SharedMemory(name=name)
        self._buf = np.ndarray(
            (self._shm.size // 8,), dtype=np.float64, buffer=self._shm.buf
        )

    def decode(self, descriptor: Dict[str, Any]) -> ProblemInstance:
        """Reconstruct one instance from its descriptor (zero-copy for
        the kernel-facing arrays)."""
        arrays = [
            self._buf[offset : offset + length]
            for offset, length in descriptor["spans"]
        ]
        return problem_from_arrays(
            descriptor["meta"], arrays, attach_kernel_views=True
        )

    def close(self) -> None:
        """Detach from the segment (never unlinks — the parent owns it).

        Only safe once every instance decoded from this reader is dead;
        the worker calls it on exit, after its last result is out.
        """
        self._buf = None
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - teardown race
            pass
