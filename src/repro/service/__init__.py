"""Batch solve service: many instances, one API, optional process pool.

The ROADMAP's north star is a system that serves *many* mapping problems
fast, not one at a time.  This package provides that serving layer:

* :func:`solve_one` -- strategy-aware dispatch of a single
  :class:`~repro.core.problem.ProblemInstance`: the legacy ``method=``
  strings alias the registered strategies of :mod:`repro.strategies`,
  and ``strategy=``/``budget=`` accept any registered name or composite
  spec (``"portfolio(greedy,annealing)"``) with a per-solve budget;
* :func:`solve_batch` -- fan a sequence of instances out over a
  work-stealing process pool (or solve sequentially) with auto-sized
  chunking, collecting per-instance :class:`BatchItem` records with
  timing, status and telemetry;
* :mod:`repro.service.transport` -- the zero-copy instance transport:
  one ``multiprocessing.shared_memory`` segment per batch, NumPy views
  worker-side, selected via ``solve_batch(...,
  transport="shm"|"pickle"|"auto")`` with a pickle fallback;
* :mod:`repro.service.pool` -- the shared-queue work-stealing executor
  with deterministic result ordering and worker-crash containment;
* the ``repro-pipelines solve-batch`` CLI subcommand built on top.

For a *persistent* front end — an HTTP daemon whose priority job queue
executes each job through this package and deduplicates identical
submissions against the campaign results cache — see
:mod:`repro.server` and its client :mod:`repro.client`.

Quickstart::

    from repro.generators import small_random_problem
    from repro.service import solve_batch

    problems = [small_random_problem(seed) for seed in range(100)]
    result = solve_batch(problems, objective="period", workers=4)
    print(result.summary())
    for item in result.items:
        print(item.index, item.status, item.wall_time, item.objective)
"""

from .batch import (
    BatchItem,
    BatchResult,
    dispatch_method,
    solve_batch,
    solve_one,
)
from .pool import PoolStats, run_work_stealing
from .transport import (
    ShmBatch,
    ShmReader,
    resolve_transport,
    shm_available,
)

__all__ = [
    "BatchItem",
    "BatchResult",
    "PoolStats",
    "ShmBatch",
    "ShmReader",
    "dispatch_method",
    "resolve_transport",
    "run_work_stealing",
    "shm_available",
    "solve_batch",
    "solve_one",
]
