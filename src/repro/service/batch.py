"""The batch-solve engine behind :mod:`repro.service`.

Design notes
------------
* Dispatch goes through the complexity registry
  (:mod:`repro.algorithms.registry`): an instance sitting in a cell that
  Tables 1-2 claim polynomial is solved by the paper's polynomial
  algorithm; NP-hard cells fall back to the requested ``method``
  (``"heuristic"`` by default, ``"exact"`` for branch-and-bound).
* Parallelism uses a *process* pool: the solvers are pure CPU-bound
  Python/NumPy, so threads would serialize on the GIL.  Problems and
  solutions are plain picklable dataclasses, which keeps the fan-out
  boilerplate-free.  ``workers=None`` or ``workers<=1`` solves inline.
* Failures never poison a batch: each instance yields a
  :class:`BatchItem` whose ``status`` is ``"ok"``, ``"infeasible"``
  (:class:`~repro.core.exceptions.InfeasibleProblemError`) or ``"error"``
  (anything else, with the message preserved), plus its wall-clock time.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import InfeasibleProblemError
from ..core.objectives import Thresholds
from ..core.problem import ProblemInstance, Solution
from ..core.types import Criterion

__all__ = [
    "BatchItem",
    "BatchResult",
    "dispatch_method",
    "solve_batch",
    "solve_one",
]

#: Objectives accepted by :func:`solve_one` / :func:`solve_batch`.
_OBJECTIVES = ("period", "latency", "energy")


def dispatch_method(problem: ProblemInstance, objective: str) -> str:
    """The concrete method the registry prescribes for an instance.

    Parameters
    ----------
    problem:
        The instance whose Table 1/2 cell is classified.
    objective:
        ``"period"``, ``"latency"`` or ``"energy"``.  The energy
        objective is period-constrained (Theorems 18-21), so its cell is
        looked up with both criteria.

    Returns
    -------
    str
        ``"auto"`` when the cell is polynomial for the given objective
        (the paper's algorithm applies), otherwise ``"heuristic"``.
    """
    from ..algorithms.registry import (
        Complexity,
        classify_platform_cell,
        lookup,
    )

    criteria: Tuple[Criterion, ...]
    if objective == "energy":
        criteria = (Criterion.PERIOD, Criterion.ENERGY)
    else:
        criteria = (Criterion(objective),)
    try:
        entry = lookup(criteria, problem.rule, classify_platform_cell(problem))
    except KeyError:
        return "heuristic"
    if entry.complexity is Complexity.POLYNOMIAL and entry.solver:
        return "auto"
    return "heuristic"


def _solve_energy(
    problem: ProblemInstance, method: str, thresholds: Thresholds
) -> Solution:
    """Energy minimization under a period bound, per the registry cell."""
    from .. import algorithms
    from ..core.types import MappingRule

    if method == "exact":
        return algorithms.exact.exact_minimize(
            problem, Criterion.ENERGY, thresholds
        )
    if method == "heuristic":
        start = (
            algorithms.heuristics.greedy_one_to_one_period(problem)
            if problem.rule is MappingRule.ONE_TO_ONE
            else algorithms.heuristics.greedy_interval_period(problem)
        )
        return algorithms.heuristics.greedy_mode_downgrade(
            problem, start.mapping, thresholds
        )
    if problem.rule is MappingRule.ONE_TO_ONE:
        return algorithms.minimize_energy_given_period_one_to_one(
            problem, thresholds
        )
    return algorithms.minimize_energy_given_period_interval(
        problem, thresholds
    )


def solve_one(
    problem: ProblemInstance,
    objective: str = "period",
    method: str = "registry",
    thresholds: Optional[Thresholds] = None,
) -> Solution:
    """Solve a single instance.

    Parameters
    ----------
    problem:
        The instance to solve.
    objective:
        ``"period"``, ``"latency"`` or ``"energy"`` (energy requires a
        period bound in ``thresholds``).
    method:
        ``"registry"`` (default) consults :func:`dispatch_method` and uses
        the polynomial solver when the cell allows it, the heuristics
        otherwise; ``"auto"``, ``"exact"`` and ``"heuristic"`` force the
        corresponding :mod:`repro.algorithms` path.
    thresholds:
        Optional bounds on the non-optimized criteria (required for the
        energy objective: Section 3.5's energy is only meaningful under a
        period constraint).

    Returns
    -------
    Solution
        The solver's mapping, objective value and full criteria.

    Raises
    ------
    ValueError
        On an unknown objective, or an energy objective without a
        period threshold.
    InfeasibleProblemError
        When no mapping satisfies the constraints.
    """
    from .. import algorithms

    if objective not in _OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; expected one of {_OBJECTIVES}"
        )
    if method == "registry":
        method = dispatch_method(problem, objective)
    if objective == "energy":
        if thresholds is None or not thresholds.constrains(Criterion.PERIOD):
            raise ValueError(
                "the energy objective requires a period threshold "
                "(the paper's 'server problem', Theorems 18-21)"
            )
        return _solve_energy(problem, method, thresholds)
    fn = (
        algorithms.minimize_period
        if objective == "period"
        else algorithms.minimize_latency
    )
    return fn(problem, method=method)


@dataclass(frozen=True)
class BatchItem:
    """Outcome of one instance inside a batch.

    ``status`` is ``"ok"`` (``solution`` is set), ``"infeasible"`` (no
    mapping satisfies the constraints) or ``"error"`` (``error`` holds the
    exception message).  ``wall_time`` is the per-instance solve time in
    seconds, measured in the worker that ran it.
    """

    index: int
    status: str
    wall_time: float
    solution: Optional[Solution] = None
    error: Optional[str] = None

    @property
    def objective(self) -> float:
        """The solved objective value (``math.inf`` when not solved)."""
        if self.solution is None:
            return math.inf
        return self.solution.objective


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a whole :func:`solve_batch` call."""

    items: Tuple[BatchItem, ...]
    objective: str
    workers: int
    #: End-to-end wall-clock of the batch (seconds), including pool setup.
    total_time: float
    stats: Dict[str, float] = field(default_factory=dict)

    @property
    def n_ok(self) -> int:
        """Number of successfully solved instances."""
        return sum(1 for x in self.items if x.status == "ok")

    @property
    def n_failed(self) -> int:
        """Number of instances that errored (not merely infeasible)."""
        return sum(1 for x in self.items if x.status == "error")

    @property
    def solve_time(self) -> float:
        """Total per-instance solve time (sum over workers; with ``w``
        workers a perfectly parallel batch has ``total_time ~=
        solve_time / w``)."""
        return sum(x.wall_time for x in self.items)

    def summary(self) -> str:
        """One-line, human-readable description of the batch outcome."""
        return (
            f"{self.n_ok}/{len(self.items)} ok "
            f"({self.n_failed} errors) objective={self.objective} "
            f"workers={self.workers} wall={self.total_time:.3f}s "
            f"cpu={self.solve_time:.3f}s"
        )


def _solve_indexed(
    args: Tuple[int, ProblemInstance, str, str, Optional[Thresholds]],
) -> BatchItem:
    """Worker-side wrapper: solve one indexed instance, catching failures
    into the item's status instead of crashing the pool."""
    index, problem, objective, method, thresholds = args
    t0 = time.perf_counter()
    try:
        solution = solve_one(
            problem, objective=objective, method=method, thresholds=thresholds
        )
        return BatchItem(
            index=index,
            status="ok",
            wall_time=time.perf_counter() - t0,
            solution=solution,
        )
    except InfeasibleProblemError as exc:
        return BatchItem(
            index=index,
            status="infeasible",
            wall_time=time.perf_counter() - t0,
            error=str(exc),
        )
    except Exception as exc:  # contained: one bad instance, one error item
        return BatchItem(
            index=index,
            status="error",
            wall_time=time.perf_counter() - t0,
            error=f"{type(exc).__name__}: {exc}",
        )


def solve_batch(
    problems: Sequence[ProblemInstance],
    objective: str = "period",
    method: str = "registry",
    *,
    workers: Optional[int] = None,
    thresholds: Optional[Thresholds] = None,
    chunksize: int = 1,
) -> BatchResult:
    """Solve many instances, optionally fanning out over a process pool.

    Parameters
    ----------
    problems:
        The instances; results keep their order (``items[i].index == i``).
    objective / method / thresholds:
        Per-instance solve parameters, as in :func:`solve_one`.
    workers:
        ``None`` or ``<= 1`` solves sequentially in-process; ``n >= 2``
        uses a ``ProcessPoolExecutor`` with ``n`` workers.
    chunksize:
        Work-unit granularity handed to ``Executor.map`` (raise it for
        very large batches of very small instances).

    Returns
    -------
    BatchResult
        Per-instance :class:`BatchItem` records plus batch-level timing.
    """
    if objective not in _OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; expected one of {_OBJECTIVES}"
        )
    jobs = [
        (i, problem, objective, method, thresholds)
        for i, problem in enumerate(problems)
    ]
    n_workers = 0 if workers is None else int(workers)
    t0 = time.perf_counter()
    if n_workers <= 1:
        items: List[BatchItem] = [_solve_indexed(job) for job in jobs]
        effective_workers = 1
    else:
        effective_workers = min(n_workers, max(1, len(jobs)))
        with ProcessPoolExecutor(max_workers=effective_workers) as pool:
            items = list(pool.map(_solve_indexed, jobs, chunksize=chunksize))
    total = time.perf_counter() - t0
    solve_time = sum(x.wall_time for x in items)
    return BatchResult(
        items=tuple(items),
        objective=objective,
        workers=effective_workers,
        total_time=total,
        stats={
            "n_instances": float(len(items)),
            "solve_time": solve_time,
            "parallel_efficiency": (
                solve_time / (total * effective_workers) if total > 0 else 0.0
            ),
        },
    )
