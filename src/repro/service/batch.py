"""The batch-solve engine behind :mod:`repro.service`.

Design notes
------------
* Dispatch goes through the solver-strategy layer
  (:mod:`repro.strategies`): the legacy ``method`` strings
  (``"registry"|"auto"|"exact"|"heuristic"``) are thin aliases of the
  registered strategies of the same name, and ``strategy=`` accepts any
  registered name or composite spec
  (``"portfolio(greedy,local_search,annealing)"``) plus an optional
  per-solve :class:`~repro.strategies.SolveBudget`.
* Parallelism uses a *process* pool: the solvers are pure CPU-bound
  Python/NumPy, so threads would serialize on the GIL.  Problems and
  solutions are plain picklable dataclasses, which keeps the fan-out
  boilerplate-free.  ``workers=None`` or ``workers<=1`` solves inline.
  Strategies cross the pool as their spec strings and are re-resolved
  worker-side.
* Execution is *work-stealing* (:mod:`repro.service.pool`): job chunks
  sit on one shared queue and workers pull whenever they run dry, so a
  straggler instance no longer serializes the tail the way a static
  ``Executor.map`` partition did.  Result ordering stays deterministic
  (re-ordered by index in the parent) and worker death is contained to
  ``status="error"`` items for the lost indices.
* Instance payloads cross the pool through a pluggable *transport*
  (:mod:`repro.service.transport`): ``transport="shm"`` packs every
  instance's numeric arrays into one ``multiprocessing.shared_memory``
  segment per batch and workers rebuild NumPy views without copying;
  ``"pickle"`` is the classic per-job pickle; ``"auto"`` (default)
  picks shm when available and worthwhile.  Both transports produce
  byte-identical solutions.
* The shared solve configuration (objective, method, thresholds,
  strategy spec, budget — plus the shm descriptors under the shm
  transport) is shipped *once per worker* instead of being re-pickled
  into every job; job payloads carry only ``(index, problem)`` — or a
  bare index under shm.  When every job solves the *same* instance (the
  repeat-solve pattern, ``solve_batch([problem] * n)``), the instance
  itself moves into the per-worker config too -- each worker receives
  it once, prebuilds its :class:`~repro.kernel.EvaluationContext`
  eagerly, and the jobs shrink to a bare index.
* Failures never poison a batch: each instance yields a
  :class:`BatchItem` whose ``status`` is ``"ok"``, ``"infeasible"``
  (:class:`~repro.core.exceptions.InfeasibleProblemError`) or ``"error"``
  (anything else, with the message preserved), plus its wall-clock time
  and a :class:`~repro.strategies.SolveTelemetry` record.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..algorithms.heuristics import local_search as _local_search
from ..core.exceptions import InfeasibleProblemError
from ..core.objectives import Thresholds
from ..core.problem import ProblemInstance, Solution
from ..core.types import Criterion
from ..obs import spans as _spans
from ..strategies import (
    BudgetMeter,
    SolveBudget,
    SolveTelemetry,
    SolverStrategy,
    dispatch_method,
    parse_strategy,
    solve_via_method,
)
from .pool import run_work_stealing
from .transport import ShmBatch, resolve_transport

__all__ = [
    "BatchItem",
    "BatchResult",
    "dispatch_method",
    "solve_batch",
    "solve_one",
]

#: Objectives accepted by :func:`solve_one` / :func:`solve_batch`.
_OBJECTIVES = ("period", "latency", "energy")

#: One strategy spec (string or instance) or a legacy ``method`` string.
StrategyLike = Union[str, SolverStrategy]


def solve_one(
    problem: ProblemInstance,
    objective: str = "period",
    method: str = "registry",
    thresholds: Optional[Thresholds] = None,
    *,
    strategy: Optional[StrategyLike] = None,
    budget: Optional[SolveBudget] = None,
    engine: Optional[str] = None,
) -> Solution:
    """Solve a single instance.

    Parameters
    ----------
    problem:
        The instance to solve.
    objective:
        ``"period"``, ``"latency"`` or ``"energy"`` (energy requires a
        period bound in ``thresholds``).
    method:
        ``"registry"`` (default) consults :func:`dispatch_method` and uses
        the polynomial solver when the cell allows it, the heuristics
        otherwise; ``"auto"``, ``"exact"`` and ``"heuristic"`` force the
        corresponding :mod:`repro.algorithms` path.  Ignored when
        ``strategy`` is given.
    thresholds:
        Optional bounds on the non-optimized criteria (required for the
        energy objective: Section 3.5's energy is only meaningful under a
        period constraint).
    strategy:
        A registered strategy name, a composite spec string
        (``"portfolio(greedy,annealing)"``) or a
        :class:`~repro.strategies.SolverStrategy` instance; overrides
        ``method``.
    budget:
        Per-solve :class:`~repro.strategies.SolveBudget` enforced
        cooperatively inside the heuristic/exact loops.
    engine:
        Neighborhood engine for the local-search heuristics inside the
        solve (any name from
        :func:`repro.algorithms.heuristics.local_search.engine_names`);
        ``None`` keeps the process default.  Applied as the
        process-default engine for the duration of the call.

    Returns
    -------
    Solution
        The solver's mapping, objective value and full criteria.

    Raises
    ------
    ValueError
        On an unknown objective, or an energy objective without a
        period threshold.
    InfeasibleProblemError
        When no mapping satisfies the constraints.
    StrategyError
        When a strategy spec cannot be resolved or the strategy failed
        outside its declared capabilities.
    """
    if objective not in _OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; expected one of {_OBJECTIVES}"
        )
    with _local_search.using_engine(engine):
        if strategy is not None:
            result = parse_strategy(strategy).run(
                problem, objective, thresholds=thresholds, budget=budget
            )
            return result.raise_for_status()
        meter = budget.meter() if budget is not None else None
        return solve_via_method(problem, objective, method, thresholds, meter)


@dataclass(frozen=True)
class BatchItem:
    """Outcome of one instance inside a batch.

    ``status`` is ``"ok"`` (``solution`` is set), ``"infeasible"`` (no
    mapping satisfies the constraints) or ``"error"`` (``error`` holds the
    exception message).  ``wall_time`` is the per-instance solve time in
    seconds, measured in the worker that ran it.  ``telemetry`` carries
    the structured :class:`~repro.strategies.SolveTelemetry` record
    (strategy spec, budget consumption, per-member portfolio outcomes).
    ``spans`` carries the solve's trace spans (plain dicts, see
    :mod:`repro.obs.spans`) when the batch ran under an active trace —
    recorded in the worker process and shipped back on the item so the
    submitting process (e.g. the daemon) can ingest them into its own
    ring buffer; empty when untraced.
    """

    index: int
    status: str
    wall_time: float
    solution: Optional[Solution] = None
    error: Optional[str] = None
    telemetry: Optional[SolveTelemetry] = None
    spans: Tuple[Dict[str, Any], ...] = ()

    @property
    def objective(self) -> float:
        """The solved objective value (``math.inf`` when not solved)."""
        if self.solution is None:
            return math.inf
        return self.solution.objective


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a whole :func:`solve_batch` call."""

    items: Tuple[BatchItem, ...]
    objective: str
    workers: int
    #: End-to-end wall-clock of the batch (seconds), including pool setup.
    total_time: float
    stats: Dict[str, float] = field(default_factory=dict)
    #: Effective instance transport: ``"inline"`` (sequential),
    #: ``"pickle"`` or ``"shm"`` — the *resolved* value, after any
    #: ``"auto"`` selection or shared-memory fallback.
    transport: str = "inline"

    @property
    def n_ok(self) -> int:
        """Number of successfully solved instances."""
        return sum(1 for x in self.items if x.status == "ok")

    @property
    def n_failed(self) -> int:
        """Number of instances that errored (not merely infeasible)."""
        return sum(1 for x in self.items if x.status == "error")

    @property
    def solve_time(self) -> float:
        """Total per-instance solve time (sum over workers; with ``w``
        workers a perfectly parallel batch has ``total_time ~=
        solve_time / w``)."""
        return sum(x.wall_time for x in self.items)

    def summary(self) -> str:
        """One-line, human-readable description of the batch outcome."""
        return (
            f"{self.n_ok}/{len(self.items)} ok "
            f"({self.n_failed} errors) objective={self.objective} "
            f"workers={self.workers} transport={self.transport} "
            f"wall={self.total_time:.3f}s cpu={self.solve_time:.3f}s"
        )


#: Per-worker solve configuration, installed once by :func:`_init_worker`
#: (via the pool initializer) instead of travelling inside every job.
_WORKER_CONFIG: Dict[str, object] = {}


def _init_worker(config: Dict[str, object]) -> None:
    """Pool initializer: install the shared solve configuration and,
    when all jobs target one instance, prebuild its evaluation context
    so every solve in this worker starts from warm kernel tables.

    A requested neighborhood ``engine`` becomes this worker process's
    default; for ``"compiled"`` the JIT warmup (and, with a shared
    instance, the plan build) happens here, in the initializer, so the
    first solve never pays the compile latency."""
    _WORKER_CONFIG.clear()
    _WORKER_CONFIG.update(config)
    trace = config.get("trace")
    if trace is not None:
        # The whole worker lifetime belongs to this batch's trace; spans
        # recorded here are drained back to the parent on each item.
        _spans.set_ambient_trace(trace[0], trace[1])
    engine = config.get("engine")
    if engine is not None:
        _local_search.DEFAULT_ENGINE = _local_search._resolve_engine(engine)
    shared = config.get("problem")
    if shared is not None:
        shared.evaluation_context()
    if engine == "compiled":
        from ..kernel import compiled

        if shared is not None:
            compiled.compile_for(shared)
        else:
            compiled.warmup()


def _solve_indexed(
    args: Tuple[int, Optional[ProblemInstance]],
) -> BatchItem:
    """Worker-side wrapper around :func:`_solve_job`: job payloads carry
    only ``(index, problem)`` -- or ``(index, None)`` when the instance
    was shipped through the initializer."""
    index, problem = args
    config = _WORKER_CONFIG
    if problem is None:
        problem = config["problem"]
    return _solve_job(
        index,
        problem,
        config["objective"],
        config["method"],
        config["thresholds"],
        config["strategy"],
        config["budget"],
    )


def _solve_job(
    index: int,
    problem: ProblemInstance,
    objective: str,
    method: str,
    thresholds: Optional[Thresholds],
    strategy: Optional[StrategyLike],
    budget: Optional[SolveBudget],
) -> BatchItem:
    """Solve one indexed instance, catching failures into the item's
    status instead of crashing the pool."""
    trace_id = _spans.current_trace_id()
    if strategy is not None:
        t0 = time.perf_counter()
        with _spans.span(
            "solve.run", strategy=str(strategy), index=index
        ) as solve_span:
            result = parse_strategy(strategy).run(
                problem, objective, thresholds=thresholds, budget=budget
            )
        telemetry = result.telemetry
        if solve_span.span_id is not None and telemetry is not None:
            telemetry = replace(
                telemetry, trace_id=trace_id, span_id=solve_span.span_id
            )
        return BatchItem(
            index=index,
            status=result.status,
            wall_time=time.perf_counter() - t0,
            solution=result.solution,
            error=result.telemetry.error,
            telemetry=telemetry,
            spans=_take_trace_spans(trace_id),
        )
    meter = BudgetMeter(budget)
    t0 = time.perf_counter()
    solution: Optional[Solution] = None
    status = "ok"
    error: Optional[str] = None
    with _spans.span("solve.run", method=method, index=index) as solve_span:
        try:
            # The meter is threaded into the solver loops only when a
            # budget was requested, keeping the legacy hot path
            # overhead-free.
            solution = solve_via_method(
                problem,
                objective,
                method,
                thresholds,
                meter if budget is not None else None,
            )
        except InfeasibleProblemError as exc:
            status, error = "infeasible", str(exc)
        except Exception as exc:  # contained: one bad instance, one error
            status, error = "error", f"{type(exc).__name__}: {exc}"
    wall = time.perf_counter() - t0
    return BatchItem(
        index=index,
        status=status,
        wall_time=wall,
        solution=solution,
        error=error,
        telemetry=SolveTelemetry(
            strategy=method,
            status=status,
            wall_time=wall,
            evaluations=meter.n_evaluations,
            budget_exhausted=meter.exhausted,
            objective=None if solution is None else solution.objective,
            error=error,
            values=(
                None
                if solution is None
                else (
                    solution.values.period,
                    solution.values.latency,
                    solution.values.energy,
                )
            ),
            trace_id=trace_id,
            span_id=solve_span.span_id,
        ),
        spans=_take_trace_spans(trace_id),
    )


def _take_trace_spans(
    trace_id: Optional[str],
) -> Tuple[Dict[str, Any], ...]:
    """Drain this process's spans for ``trace_id`` onto a result item.

    The spans ride back to the submitting process attached to the
    :class:`BatchItem` (surviving the pool pickle boundary) instead of
    staying stranded in a worker's ring buffer."""
    if not trace_id:
        return ()
    return tuple(_spans.recorder().take(trace_id))


def _auto_chunksize(n_jobs: int, workers: int) -> int:
    """Default work-unit granularity: ~4 chunks per worker, so large
    batches of tiny instances stop paying per-item IPC overhead while
    stragglers still rebalance."""
    return max(1, n_jobs // (4 * workers))


def solve_batch(
    problems: Sequence[ProblemInstance],
    objective: str = "period",
    method: str = "registry",
    *,
    workers: Optional[int] = None,
    thresholds: Optional[Thresholds] = None,
    chunksize: Optional[int] = None,
    strategy: Optional[StrategyLike] = None,
    budget: Optional[SolveBudget] = None,
    transport: str = "auto",
    engine: Optional[str] = None,
) -> BatchResult:
    """Solve many instances, optionally fanning out over a process pool.

    Parameters
    ----------
    problems:
        The instances; results keep their order (``items[i].index == i``)
        regardless of which worker solved what.
    objective / method / thresholds / strategy / budget:
        Per-instance solve parameters, as in :func:`solve_one`.  The
        budget applies *per solve*, not to the whole batch.
    engine:
        Neighborhood engine for the local-search heuristics (any name
        from :func:`repro.algorithms.heuristics.local_search.engine_names`,
        or ``None`` for the process default).  Sequential batches apply
        it for the duration of the call; pooled batches install it as
        each worker's default in the pool initializer, where the
        ``"compiled"`` engine also performs its JIT warmup (and, for
        repeat-solve batches, prebuilds the shared instance's plan) so
        no job pays the compile latency.
    workers:
        ``None`` or ``<= 1`` solves sequentially in-process; ``n >= 2``
        fans out over ``n`` work-stealing worker processes
        (:mod:`repro.service.pool`).
    chunksize:
        Work-unit granularity: jobs per task-queue entry.  ``None``
        (default) auto-sizes to ``max(1, len(problems) // (4 *
        workers))``; pass an explicit value to override (``1`` =
        per-job stealing, maximal balance, maximal queue traffic).
    transport:
        How instance payloads reach the workers — ``"shm"`` (one
        shared-memory segment per batch, zero-copy NumPy views
        worker-side), ``"pickle"`` (per-job pickling) or ``"auto"``
        (default: shm when available and the batch payload clears
        :data:`~repro.service.transport.SHM_AUTO_MIN_BYTES`).  ``"shm"``
        degrades to ``"pickle"`` when shared memory is unavailable; the
        resolved value is reported on ``BatchResult.transport``.  Both
        transports produce byte-identical solutions.

    Returns
    -------
    BatchResult
        Per-instance :class:`BatchItem` records plus batch-level timing
        and transport accounting (``stats["bytes_pickled_per_job"]``).
    """
    if objective not in _OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; expected one of {_OBJECTIVES}"
        )
    if strategy is not None and isinstance(strategy, str):
        parse_strategy(strategy)  # fail fast on a bad spec, pre-pool
    if engine is not None:
        _local_search._resolve_engine(engine)  # fail fast, pre-pool
    problems = list(problems)
    # Repeat-solve pattern: one instance solved many times travels to
    # each worker once (initializer) instead of once per job.
    shared = (
        problems[0]
        if problems and all(p is problems[0] for p in problems[1:])
        else None
    )
    n_workers = 0 if workers is None else int(workers)
    t0 = time.perf_counter()
    extra_stats: Dict[str, float] = {}
    if n_workers <= 1:
        with _local_search.using_engine(engine):
            items: List[BatchItem] = [
                _solve_job(
                    i, problem, objective, method, thresholds, strategy, budget
                )
                for i, problem in enumerate(problems)
            ]
        effective_workers = 1
        effective_transport = "inline"
    else:
        effective_transport = resolve_transport(transport, problems, shared)
        active_trace = _spans.current_trace_id()
        config: Dict[str, object] = {
            "objective": objective,
            "method": method,
            "thresholds": thresholds,
            "strategy": strategy,
            "budget": budget,
            "problem": shared,
            "engine": engine,
            # Trace context crosses the pool inside the per-worker
            # config; workers re-establish it in the initializer.
            "trace": (
                None
                if active_trace is None
                else (active_trace, _spans.current_parent_id())
            ),
        }
        shm_batch = None
        if effective_transport == "shm":
            try:
                shm_batch = ShmBatch.pack(problems)
            except Exception:
                # Allocation failed (full /dev/shm, exotic platform):
                # the documented degradation is per-job pickling.
                effective_transport = "pickle"
            else:
                config["shm_descriptors"] = shm_batch.descriptors
        try:
            jobs = [
                (
                    i,
                    problem
                    if shared is None and effective_transport != "shm"
                    else None,
                )
                for i, problem in enumerate(problems)
            ]
            effective_workers = min(n_workers, max(1, len(jobs)))
            effective_chunksize = (
                chunksize
                if chunksize is not None
                else _auto_chunksize(len(jobs), effective_workers)
            )
            items, pool_stats = run_work_stealing(
                jobs,
                config,
                effective_workers,
                effective_chunksize,
                shm_name=None if shm_batch is None else shm_batch.name,
            )
        finally:
            # One finally covers normal completion, worker crashes and
            # KeyboardInterrupt: the parent owns the segment and always
            # unlinks it.
            if shm_batch is not None:
                shm_batch.close_and_unlink()
        extra_stats = {
            "bytes_job_payload": float(pool_stats.bytes_jobs),
            "bytes_pickled_per_job": (
                pool_stats.bytes_jobs / len(jobs) if jobs else 0.0
            ),
            "bytes_worker_config": float(pool_stats.bytes_config),
            "n_chunks": float(pool_stats.n_chunks),
            "n_crashed_workers": float(pool_stats.n_crashed),
        }
        if shm_batch is not None:
            extra_stats["bytes_shm_segment"] = float(shm_batch.nbytes)
    total = time.perf_counter() - t0
    solve_time = sum(x.wall_time for x in items)
    return BatchResult(
        items=tuple(items),
        objective=objective,
        workers=effective_workers,
        total_time=total,
        stats={
            "n_instances": float(len(items)),
            "solve_time": solve_time,
            "parallel_efficiency": (
                solve_time / (total * effective_workers) if total > 0 else 0.0
            ),
            **extra_stats,
        },
        transport=effective_transport,
    )
