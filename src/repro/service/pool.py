"""Work-stealing process pool for :func:`repro.service.solve_batch`.

``ProcessPoolExecutor.map`` hands each worker a *static* slice of the
batch up front; one straggler chunk (a budgeted NP-hard cell racing a
portfolio) serializes the whole tail while the other workers idle.  This
module replaces it with the classic shared-queue shape:

* the parent pre-pickles the batch into *chunks* (the existing
  ``chunksize`` granularity) and puts them on one shared task queue;
* ``n`` plain :class:`multiprocessing.Process` workers pull chunks
  whenever they run dry — stragglers steal nothing from anyone, idle
  workers steal the remaining chunks;
* results stream back over a shared result queue and are re-ordered by
  index in the parent, so the caller-visible ordering is deterministic
  regardless of which worker solved what.

Raw processes (not an ``Executor``) because a shared task queue cannot
cross the ``initargs`` pickle boundary — queues are inherited, not
pickled.  Chunks are pickled *once, by the parent* (``pickle.dumps``
before enqueue), which is also what makes the transport benchmarks
honest: :class:`PoolStats` reports exactly the bytes that crossed the
job pipe, with no double serialization.

Failure containment extends PR 3's per-item guarantee to worker death:
a chunk lost to a crashed worker (segfault, ``os._exit``, OOM kill)
surfaces as ``status="error"`` items for the missing indices — the
surviving workers keep draining the queue and the batch still returns
every index exactly once.
"""

from __future__ import annotations

import os
import pickle
import queue
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp

from .transport import ShmReader

__all__ = ["PoolStats", "run_work_stealing"]

#: Empty bytes on the task queue = "no more chunks, exit now".  One is
#: enqueued per worker, after all chunks.
_SENTINEL = b""

#: Parent-side poll interval while waiting on the result queue; each
#: timeout is used to re-check worker liveness.
_POLL_SECONDS = 0.2


@dataclass(frozen=True)
class PoolStats:
    """Transport accounting for one pool run.

    ``bytes_jobs`` is the total pickled size of every job chunk that
    crossed the task queue (the per-job figure reported by the
    benchmarks is ``bytes_jobs / n_jobs``); ``bytes_config`` is the
    per-worker configuration shipped once per process (config dict,
    plus shm descriptors under the shm transport).  ``n_crashed``
    counts workers that exited with a nonzero code.
    """

    bytes_jobs: int
    bytes_config: int
    n_chunks: int
    n_crashed: int


def _pool_worker(task_q, result_q, config: Dict[str, Any], shm_name) -> None:
    """Worker loop: attach (shm transport), drain chunks until the
    sentinel, stream one :class:`~repro.service.batch.BatchItem` per
    index back to the parent."""
    # Lazy import: batch.py imports this module at the top level; the
    # worker only runs post-fork, when both modules are fully loaded.
    from ..obs.spans import recorder as _span_recorder
    from .batch import _init_worker, _solve_indexed, _solve_job

    # Label this process's spans so a merged trace shows which pool
    # worker ran each solve (the trace context itself is installed by
    # ``_init_worker`` from ``config["trace"]``).
    _span_recorder().configure(proc="pool-%d" % os.getpid())
    _init_worker(config)
    crash_on = config.get("_crash_on_index")
    exit_after = config.get("_exit_after_index")
    descriptors = config.get("shm_descriptors")
    reader = ShmReader(shm_name) if shm_name is not None else None
    try:
        while True:
            blob = task_q.get()
            if blob == _SENTINEL:
                break
            chunk = pickle.loads(blob)
            for index, payload in chunk:
                if crash_on is not None and index == crash_on:
                    # Test seam: die *hard* (no cleanup, like a segfault
                    # or OOM kill) so crash containment is exercised for
                    # real.  See tests/service/test_transport.py.
                    os._exit(13)
                if reader is not None:
                    item = _solve_job(
                        index,
                        reader.decode(descriptors[index]),
                        config["objective"],
                        config["method"],
                        config["thresholds"],
                        config["strategy"],
                        config["budget"],
                    )
                else:
                    item = _solve_indexed((index, payload))
                result_q.put(item)
            if exit_after is not None and any(
                index == exit_after for index, _ in chunk
            ):
                # Test seam: die *between* chunks, results flushed —
                # the `maxtasksperchild`-style churn shape (a worker
                # recycled after finishing its unit of work).  Unlike
                # `_crash_on_index`, nothing is lost: the queue keeps
                # the remaining chunks for the surviving workers.
                result_q.close()
                result_q.join_thread()
                os._exit(9)
    except KeyboardInterrupt:  # pragma: no cover - parent handles teardown
        pass
    finally:
        if reader is not None:
            reader.close()


def run_work_stealing(
    jobs: Sequence[Tuple[int, Any]],
    config: Dict[str, Any],
    n_workers: int,
    chunksize: int,
    shm_name: Optional[str] = None,
) -> Tuple[List[Any], PoolStats]:
    """Run a batch through the work-stealing pool.

    Parameters
    ----------
    jobs:
        ``(index, payload)`` pairs; ``payload`` is a problem instance
        under the pickle transport and ``None`` under shm (the worker
        decodes ``config["shm_descriptors"][index]``) or the
        shared-instance path.
    config:
        The per-worker solve configuration (see ``_init_worker``),
        shipped once per process.
    n_workers:
        Number of worker processes to fork.
    chunksize:
        Work-unit granularity: jobs per queue entry.
    shm_name:
        Shared-memory segment name for workers to attach, or ``None``
        for the pickle / shared-instance transports.

    Returns
    -------
    (items, stats)
        ``items`` index-ordered, exactly one per job — indices lost to
        a crashed worker come back as ``status="error"`` items — plus
        the :class:`PoolStats` transport accounting.
    """
    from .batch import BatchItem

    n_jobs = len(jobs)
    chunks = [
        pickle.dumps(jobs[i : i + chunksize], protocol=pickle.HIGHEST_PROTOCOL)
        for i in range(0, n_jobs, chunksize)
    ]
    bytes_config = len(
        pickle.dumps(config, protocol=pickle.HIGHEST_PROTOCOL)
    ) * n_workers

    ctx = mp.get_context()
    task_q = ctx.Queue()
    result_q = ctx.Queue()
    for blob in chunks:
        task_q.put(blob)
    for _ in range(n_workers):
        task_q.put(_SENTINEL)

    procs = [
        ctx.Process(
            target=_pool_worker,
            args=(task_q, result_q, config, shm_name),
            daemon=True,
        )
        for _ in range(n_workers)
    ]
    results: Dict[int, Any] = {}
    try:
        for proc in procs:
            proc.start()
        while len(results) < n_jobs:
            try:
                item = result_q.get(timeout=_POLL_SECONDS)
                results[item.index] = item
            except queue.Empty:
                if all(proc.exitcode is not None for proc in procs):
                    # Every worker is gone; whatever is still in flight
                    # in the queue feeder drains below, then missing
                    # indices are filled in as crash errors.
                    break
        deadline = time.monotonic() + 1.0
        while len(results) < n_jobs and time.monotonic() < deadline:
            try:
                item = result_q.get(timeout=_POLL_SECONDS)
                results[item.index] = item
            except queue.Empty:
                break
        # Workers exit on their own via the sentinels; join them before
        # the teardown below so a normal completion is not miscounted
        # as a crash by terminate().
        for proc in procs:
            proc.join(timeout=5.0)
        n_crashed = sum(
            1 for proc in procs if proc.exitcode not in (0, None)
        )
    finally:
        for proc in procs:
            if proc.exitcode is None:
                proc.terminate()
        for proc in procs:
            proc.join(timeout=5.0)
        # Unblock interpreter shutdown even with unread queue buffers
        # (KeyboardInterrupt mid-batch leaves chunks on the task queue).
        for q in (task_q, result_q):
            q.close()
            q.cancel_join_thread()

    items: List[Any] = []
    for index, _payload in jobs:
        if index in results:
            items.append(results[index])
        else:
            items.append(
                BatchItem(
                    index=index,
                    status="error",
                    wall_time=0.0,
                    error=(
                        "worker process died before returning this result "
                        f"({n_crashed} worker(s) crashed)"
                    ),
                )
            )
    stats = PoolStats(
        bytes_jobs=sum(len(blob) for blob in chunks),
        bytes_config=bytes_config,
        n_chunks=len(chunks),
        n_crashed=n_crashed,
    )
    return items, stats
