"""General mappings and why the paper forbids them (Section 3.3).

The paper restricts to one-to-one and interval mappings and justifies it
theoretically: with *general* mappings (a processor may execute any set of
stages, consecutive or not), even the simplest mono-criterion problem --
period minimization for ONE application on homogeneous uni-modal processors
with no communication -- is already NP-hard, by a "straightforward
reduction from 2-partition".

This module makes that argument executable:

* :func:`min_period_general_mapping` -- exact solvers for the general-
  mapping period problem without communications, where the period is simply
  the maximum processor load divided by the speed (multiprocessor
  scheduling / makespan): a pseudo-polynomial DP for two processors and a
  branch-and-bound for more;
* :class:`GeneralMappingPeriodReduction` -- the 2-PARTITION gadget: works
  ``a_1..a_n`` on two unit-speed processors, target period ``S/2``;
* :func:`best_interval_period_no_comm` -- the interval-rule optimum on the
  same instance, to quantify what the interval restriction costs (for the
  ablation bench): interval mappings can only cut the chain, general
  mappings can balance arbitrary subsets.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from ..core.application import Application
from ..core.types import CommunicationModel
from .replication import ReplicatedMapping  # noqa: F401  (re-export sibling)


def _loads_from_assignment(
    works: Sequence[float], assignment: Sequence[int], p: int
) -> List[float]:
    loads = [0.0] * p
    for w, u in zip(works, assignment):
        loads[u] += w
    return loads


def min_period_general_mapping(
    works: Sequence[float],
    n_processors: int,
    speed: float = 1.0,
) -> Tuple[float, Tuple[int, ...]]:
    """Exact minimum period over *general* mappings, no communications.

    The period is ``max_u (sum of works on P_u) / speed``; minimizing it is
    multiprocessor scheduling (NP-hard).  Exact branch-and-bound with
    largest-first ordering and symmetric-processor pruning; practical for a
    few dozen stages.

    Returns ``(period, stage_to_processor)``.
    """
    n = len(works)
    if n == 0:
        raise ValueError("need at least one stage")
    if n_processors <= 0:
        raise ValueError("need at least one processor")
    order = sorted(range(n), key=lambda i: -works[i])
    total = sum(works)
    best_period = total / speed  # everything on one processor
    best_assignment = [0] * n

    loads = [0.0] * n_processors
    current = [0] * n

    def backtrack(pos: int) -> None:
        nonlocal best_period, best_assignment
        if pos == n:
            period = max(loads) / speed
            if period < best_period:
                best_period = period
                best_assignment = list(current)
            return
        i = order[pos]
        w = works[i]
        seen_loads = set()
        for u in range(n_processors):
            if loads[u] in seen_loads:
                continue  # identical processors: symmetric branch
            seen_loads.add(loads[u])
            if (loads[u] + w) / speed >= best_period:
                continue
            loads[u] += w
            current[i] = u
            backtrack(pos + 1)
            loads[u] -= w
        # Lower-bound prune: remaining work cannot lift max below the mean.
        return

    backtrack(0)
    return best_period, tuple(best_assignment)


def best_interval_period_no_comm(
    works: Sequence[float],
    n_processors: int,
    speed: float = 1.0,
) -> float:
    """The interval-rule optimum on the same instance (chain partition into
    at most ``p`` consecutive pieces, minimize the largest piece), via the
    polynomial DP -- the quantity general mappings are compared against."""
    from ..algorithms.interval_period import single_app_period_table

    app = Application.from_lists(
        list(works), [0.0] * len(works), input_data_size=0.0
    )
    table = single_app_period_table(
        app,
        n_processors,
        speed,
        1.0,
        CommunicationModel.OVERLAP,
    )
    return table.period(n_processors)


@dataclass(frozen=True)
class GeneralMappingPeriodReduction:
    """The Section 3.3 gadget: 2-PARTITION -> general-mapping period.

    Two identical unit-speed processors, one application whose stage works
    are the 2-PARTITION values; a general mapping of period ``S/2`` exists
    iff the values admit a balanced partition.
    """

    values: Tuple[int, ...]
    target_period: float

    @classmethod
    def build(cls, values: Sequence[int]) -> "GeneralMappingPeriodReduction":
        """Construct the gadget."""
        vals = tuple(int(v) for v in values)
        if not vals or any(v <= 0 for v in vals):
            raise ValueError("2-PARTITION values must be positive integers")
        return cls(values=vals, target_period=sum(vals) / 2.0)

    def decide(self) -> bool:
        """Is the target period reachable?  (Exact general-mapping solve.)"""
        period, _ = min_period_general_mapping(self.values, 2)
        return period <= self.target_period + 1e-9

    def partition_from_assignment(
        self, assignment: Sequence[int]
    ) -> FrozenSet[int]:
        """Backward transfer: the stages on processor 0."""
        return frozenset(i for i, u in enumerate(assignment) if u == 0)

    def assignment_from_partition(
        self, subset: FrozenSet[int]
    ) -> Tuple[int, ...]:
        """Forward transfer: subset stages on processor 0, rest on 1."""
        return tuple(0 if i in subset else 1 for i in range(len(self.values)))

    def interval_rule_period(self) -> float:
        """What the interval restriction achieves on the same instance
        (>= the general optimum; the gap is the price of tractability)."""
        return best_interval_period_no_comm(self.values, 2)
