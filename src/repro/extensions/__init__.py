"""Extensions beyond the paper's core results.

The paper's conclusion (Section 6) names two continuations; both are
implemented here:

* :mod:`replication` -- "a stage could be mapped onto several processors,
  each in charge of different data sets, in order to improve the period, as
  was investigated in [4]": round-robin replicated interval mappings, their
  period/latency/energy evaluation, a replication-aware period DP, and
  simulator support;
* :mod:`general_mappings` -- the Section 3.3 argument that *general*
  mappings (a processor may execute any set of stages) make even the
  simplest mono-criterion problem NP-hard, "straightforward reduction from
  2-partition": the reduction as an executable gadget plus exact solvers
  for the general-mapping period problem.
"""

from .general_mappings import (
    GeneralMappingPeriodReduction,
    min_period_general_mapping,
)
from .replication import (
    ReplicatedAssignment,
    ReplicatedMapping,
    evaluate_replicated,
    replicated_period_table,
    simulate_replicated,
)

__all__ = [
    "GeneralMappingPeriodReduction",
    "ReplicatedAssignment",
    "ReplicatedMapping",
    "evaluate_replicated",
    "min_period_general_mapping",
    "replicated_period_table",
    "simulate_replicated",
]
